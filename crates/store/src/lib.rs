//! # tix-store
//!
//! The XML database substrate of the TIX reproduction.
//!
//! The SIGMOD 2003 paper ran inside the TIMBER native XML database; this
//! crate is our stand-in. It provides:
//!
//! * a **region-encoded node store** — every node carries
//!   `(start, end, level)` where `start` is its preorder number and `end`
//!   the preorder number of its last descendant, so
//!   *ancestor(a, d) ⇔ a.start < d.start ∧ d.start ≤ a.end*. This is the
//!   invariant every stack-based algorithm in `tix-exec` (structural join,
//!   TermJoin, Pick) relies on;
//! * a **tag index** (tag → element list in document order), the access path
//!   for pattern-tree leaves;
//! * **parent pointers** and an O(1) **child-count index** (the auxiliary
//!   index that distinguishes *Enhanced TermJoin* from plain TermJoin in the
//!   paper's Tables 2–4), plus a deliberately navigation-based
//!   [`Store::count_children_by_navigation`] that models the paper's "a data
//!   access to the database is performed and some navigation is needed";
//! * text storage in a per-document byte arena with `alltext()`-style
//!   subtree text extraction (Fig. 9 of the paper).
//!
//! ```
//! use tix_store::{NodeRef, Store};
//!
//! let mut store = Store::new();
//! let doc = store.load_str("articles.xml", "<article><p>search engine</p></article>").unwrap();
//! let root = store.doc(doc).root();
//! let node = NodeRef::new(doc, root);
//! assert_eq!(store.tag_name(node), Some("article"));
//! assert_eq!(store.text_content(node), "search engine");
//! ```

mod document;
pub mod faultio;
mod interner;
mod node;
pub mod persist;
mod snapshot;
mod stats;
mod store;

pub use document::{DocData, LoadError};
pub use interner::{Interner, Symbol};
pub use node::{DocId, NodeIdx, NodeKind, NodeRec, NodeRef};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_MIN_VERSION, SNAPSHOT_VERSION};
pub use stats::StoreStats;
pub use store::{FrozenStore, RemoveError, Store};
