//! Crash-safe file replacement and checksummed snapshot framing.
//!
//! Two durability layers live here, shared by every snapshot format in the
//! workspace (store, index, and whatever grows next):
//!
//! * [`atomic_write`] — the **atomicity protocol**. A snapshot is written
//!   to a sibling temp file, flushed, `sync_all`-ed, renamed over the
//!   destination, and the parent directory is fsynced. At no point does a
//!   partially written file occupy the final path: a crash (or injected
//!   fault) at any byte offset leaves the previously committed file
//!   untouched, and the temp file is removed on every error path.
//!
//! * [`SealWriter`] / [`SealReader`] / [`write_section`] / [`read_section`]
//!   — the **corruption-detection framing** of the v2 snapshot formats.
//!   Each logical section is length-prefixed and followed by its own
//!   CRC-32; the whole file ends with a trailing CRC-32 over every
//!   preceding byte (the *seal*, see
//!   [`tix_invariants::try_snapshot_sealed`]). A loader reads sections
//!   into bounded buffers and verifies their checksums before any
//!   structural parsing, so a flipped bit surfaces as typed corruption —
//!   never as a wrong-but-plausible corpus.

use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tix_invariants::Crc32;

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp name (cross-process collisions are covered by the
/// pid component).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path_for(path: &Path) -> PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    path.with_file_name(format!(".{name}.tmp.{pid}.{n}"))
}

/// Write a file **atomically and durably**: `write` streams into a temp
/// file in the destination's directory; only after a successful flush and
/// `sync_all` is the temp file renamed over `path`, and the parent
/// directory is fsynced so the rename itself survives a crash. If `write`
/// (or any step after it) fails, the temp file is removed and the
/// previously committed file at `path` is left exactly as it was.
///
/// The error type is the closure's own — any `io::Error` raised by the
/// protocol steps is converted through `From`, so snapshot writers can
/// pass their typed error straight through.
pub fn atomic_write<E, F>(path: impl AsRef<Path>, write: F) -> Result<(), E>
where
    E: From<io::Error>,
    F: FnOnce(&mut BufWriter<File>) -> Result<(), E>,
{
    let path = path.as_ref();
    let tmp = temp_path_for(path);
    let result = write_via_temp(path, &tmp, write);
    if result.is_err() {
        // Never leave a half-written temp file to poison later runs.
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn write_via_temp<E, F>(path: &Path, tmp: &Path, write: F) -> Result<(), E>
where
    E: From<io::Error>,
    F: FnOnce(&mut BufWriter<File>) -> Result<(), E>,
{
    // lint:allow(no-bare-file-create): this IS the atomic_write
    // implementation — the file created here is a sibling temp renamed
    // over the destination only after a full fsync.
    let file = File::create(tmp)?;
    let mut w = BufWriter::new(file);
    write(&mut w)?;
    w.flush()?;
    let file = w.into_inner().map_err(|e| E::from(e.into_error()))?;
    file.sync_all()?;
    fs::rename(tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Fsync the directory containing `path` so a rename is durable across a
/// crash. Directory fds are a unix concept; elsewhere the rename itself is
/// the best available barrier.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        let dir = parent.unwrap_or_else(|| Path::new("."));
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

// ---- checksummed section framing -------------------------------------------

/// Framing failure while writing or reading a checksummed section. Each
/// snapshot format maps these onto its own error enum.
#[derive(Debug)]
pub enum SectionError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A section payload does not fit the u32 length prefix.
    TooLarge,
    /// The stream ended inside a section payload.
    Truncated,
    /// The section's stored CRC-32 does not match its bytes.
    ChecksumMismatch,
}

impl From<io::Error> for SectionError {
    fn from(e: io::Error) -> Self {
        SectionError::Io(e)
    }
}

/// A [`Write`] adapter keeping a running CRC-32 of everything written —
/// the whole-file digest that becomes the trailing seal.
#[derive(Debug)]
pub struct SealWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> SealWriter<W> {
    /// Wrap `inner`, starting with an empty digest.
    pub fn new(inner: W) -> Self {
        SealWriter {
            inner,
            crc: Crc32::new(),
        }
    }

    /// The digest of every byte written so far.
    pub fn digest(&self) -> u32 {
        self.crc.finish()
    }

    /// Finish: write the trailing little-endian seal (the current digest)
    /// to the underlying writer — undigested, since it *is* the digest —
    /// and hand the writer back.
    pub fn write_seal(mut self) -> io::Result<W> {
        let seal = self.digest();
        self.inner.write_all(&seal.to_le_bytes())?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for SealWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        // `n <= buf.len()` by the Write contract, so get() always hits.
        self.crc.update(buf.get(..n).unwrap_or(buf));
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A [`Read`] adapter keeping a running CRC-32 of everything read, plus
/// raw (undigested) access for consuming the trailing seal itself.
#[derive(Debug)]
pub struct SealReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> SealReader<R> {
    /// Wrap `inner`, starting with an empty digest.
    pub fn new(inner: R) -> Self {
        SealReader {
            inner,
            crc: Crc32::new(),
        }
    }

    /// Absorb bytes the caller already consumed from the raw stream
    /// (magic + version header) so the digest covers the whole file.
    pub fn seed(&mut self, bytes: &[u8]) {
        self.crc.update(bytes);
    }

    /// The digest of every byte read (or seeded) so far.
    pub fn digest(&self) -> u32 {
        self.crc.finish()
    }

    /// Read the trailing 4-byte seal **without** digesting it, and verify
    /// it against the digest of everything before it. Also requires the
    /// stream to end right after the seal — trailing garbage means the
    /// file is not the image the writer sealed.
    pub fn verify_seal(mut self) -> Result<(), SectionError> {
        let expected = self.digest();
        let mut tail = [0u8; 4];
        self.inner
            .read_exact(&mut tail)
            .map_err(|_| SectionError::Truncated)?;
        if u32::from_le_bytes(tail) != expected {
            return Err(SectionError::ChecksumMismatch);
        }
        let mut probe = [0u8; 1];
        loop {
            match self.inner.read(&mut probe) {
                Ok(0) => return Ok(()),
                Ok(_) => return Err(SectionError::ChecksumMismatch),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SectionError::Io(e)),
            }
        }
    }
}

impl<R: Read> Read for SealReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(buf.get(..n).unwrap_or(buf));
        Ok(n)
    }
}

/// Write one framed section — `u32` payload length, the payload, then the
/// payload's CRC-32 — and clear `payload` for reuse.
pub fn write_section(w: &mut impl Write, payload: &mut Vec<u8>) -> Result<(), SectionError> {
    let len = u32::try_from(payload.len()).map_err(|_| SectionError::TooLarge)?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&tix_invariants::crc32(payload).to_le_bytes())?;
    payload.clear();
    Ok(())
}

/// Read one framed section into a bounded buffer and verify its CRC-32
/// **before** the caller parses a single structural byte. A corrupt length
/// prefix cannot over-read (the read is capped at the declared length and
/// a short section is `Truncated`) and cannot force a huge up-front
/// allocation (the buffer grows only as bytes actually arrive).
pub fn read_section(r: &mut impl Read) -> Result<Vec<u8>, SectionError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)
        .map_err(|_| SectionError::Truncated)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut payload = Vec::new();
    let read = r.by_ref().take(len as u64).read_to_end(&mut payload)?;
    if read != len {
        return Err(SectionError::Truncated);
    }
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)
        .map_err(|_| SectionError::Truncated)?;
    if u32::from_le_bytes(crc_buf) != tix_invariants::crc32(&payload) {
        return Err(SectionError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tix-persist-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_commits_on_success() {
        let path = tmp_dir("commit").join("out.bin");
        atomic_write::<io::Error, _>(&path, |w| w.write_all(b"hello")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        // Overwrite replaces atomically.
        atomic_write::<io::Error, _>(&path, |w| w.write_all(b"world")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"world");
    }

    #[test]
    fn atomic_write_failure_preserves_old_file_and_removes_temp() {
        let dir = tmp_dir("fail");
        let path = dir.join("out.bin");
        atomic_write::<io::Error, _>(&path, |w| w.write_all(b"committed")).unwrap();
        let err = atomic_write::<io::Error, _>(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("injected"))
        });
        assert!(err.is_err());
        assert_eq!(fs::read(&path).unwrap(), b"committed");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn atomic_write_failure_with_no_prior_file_leaves_nothing() {
        let dir = tmp_dir("fresh-fail");
        let path = dir.join("never.bin");
        let err = atomic_write::<io::Error, _>(&path, |_| {
            Err::<(), io::Error>(io::Error::other("injected"))
        });
        assert!(err.is_err());
        assert!(!path.exists());
    }

    #[test]
    fn section_roundtrip_and_seal() {
        let mut w = SealWriter::new(Vec::new());
        w.write_all(b"MAGIC\x02").unwrap();
        let mut payload = b"section one".to_vec();
        write_section(&mut w, &mut payload).unwrap();
        assert!(payload.is_empty(), "payload buffer is cleared for reuse");
        payload.extend_from_slice(b"two");
        write_section(&mut w, &mut payload).unwrap();
        let bytes = w.write_seal().unwrap();

        // Reading it back verifies every layer, including the seeded
        // digest path a snapshot loader uses after consuming the header.
        let mut r = SealReader::new(bytes.get(6..).unwrap());
        r.seed(b"MAGIC\x02");
        assert_eq!(read_section(&mut r).unwrap(), b"section one");
        assert_eq!(read_section(&mut r).unwrap(), b"two");
        r.verify_seal().unwrap();
    }

    #[test]
    fn seal_reader_rejects_flips_truncation_and_trailing_garbage() {
        let mut w = SealWriter::new(Vec::new());
        w.write_all(b"M\x02").unwrap();
        let mut p = b"payload bytes".to_vec();
        write_section(&mut w, &mut p).unwrap();
        let bytes = w.write_seal().unwrap();

        let check = |bytes: &[u8]| -> Result<(), SectionError> {
            let mut r = SealReader::new(bytes);
            let mut head = [0u8; 2];
            r.read_exact(&mut head).map_err(SectionError::Io)?;
            read_section(&mut r)?;
            r.verify_seal()
        };
        assert!(check(&bytes).is_ok());
        // Flip any byte after the header: rejected.
        for i in 2..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(check(&bad).is_err(), "flip at {i} accepted");
        }
        // Truncate anywhere: rejected.
        for cut in 2..bytes.len() {
            assert!(
                check(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Trailing garbage after the seal: rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(check(&extended).is_err());
    }

    #[test]
    fn unique_temp_names() {
        let a = temp_path_for(Path::new("/x/snap.bin"));
        let b = temp_path_for(Path::new("/x/snap.bin"));
        assert_ne!(a, b);
        assert_eq!(a.parent(), Some(Path::new("/x")));
    }
}
