//! Node identity and the region-encoded node record.

use std::fmt;

use crate::interner::Symbol;

/// Identifies a document within a [`crate::Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Index of a node within its document.
///
/// Nodes are stored in preorder, so a `NodeIdx` doubles as the node's
/// *start key*: comparing `NodeIdx`es compares document positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The underlying preorder number.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Array index into the document's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A node address that is unique across the whole store.
///
/// Ordering is `(doc, node)` — i.e. global document order — which is the
/// order posting lists and element lists are kept in, and the order the
/// stack-based merge algorithms require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    /// The containing document.
    pub doc: DocId,
    /// The node within the document.
    pub node: NodeIdx,
}

impl NodeRef {
    /// Build a reference from its parts.
    pub fn new(doc: DocId, node: NodeIdx) -> Self {
        NodeRef { doc, node }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.doc, self.node)
    }
}

/// What a stored node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An element; `tag` is meaningful.
    Element,
    /// A text node; `payload` indexes the document's text table.
    Text,
}

/// Sentinel parent value for the document root.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// The fixed-size record stored per node.
///
/// `start` is implicit (a node's index in the node table *is* its preorder
/// number), keeping the record at 16 bytes + tag/kind packing. The record
/// stores:
///
/// * `end` — preorder number of the node's last descendant (== own index
///   for leaves), giving the region encoding together with the index;
/// * `parent` — parent's preorder number ([`NO_PARENT`] for the root);
/// * `level` — depth (root = 0), needed for parent-child structural joins;
/// * `tag` — interned tag name (elements) — unused for text nodes;
/// * `payload` — for elements the **child count** (element + text children),
///   maintained at load time as the Enhanced-TermJoin index; for text nodes
///   the index into the document's text-range table.
#[derive(Debug, Clone, Copy)]
pub struct NodeRec {
    pub(crate) end: u32,
    pub(crate) parent: u32,
    pub(crate) level: u16,
    pub(crate) kind: NodeKind,
    pub(crate) tag: Symbol,
    pub(crate) payload: u32,
}

impl NodeRec {
    /// Preorder number of this node's last descendant.
    pub fn end(&self) -> NodeIdx {
        NodeIdx(self.end)
    }

    /// Depth below the document root (root = 0).
    pub fn level(&self) -> u16 {
        self.level
    }

    /// Element or text.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Interned tag (elements only; garbage for text nodes).
    pub fn tag(&self) -> Symbol {
        self.tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noderef_orders_by_doc_then_node() {
        let a = NodeRef::new(DocId(0), NodeIdx(9));
        let b = NodeRef::new(DocId(1), NodeIdx(0));
        let c = NodeRef::new(DocId(1), NodeIdx(4));
        assert!(a < b && b < c);
    }

    #[test]
    fn display_forms() {
        let n = NodeRef::new(DocId(2), NodeIdx(17));
        assert_eq!(n.to_string(), "d2#17");
    }

    #[test]
    fn record_size_is_compact() {
        // 18M nodes at full scale must stay cache- and memory-friendly.
        assert!(std::mem::size_of::<NodeRec>() <= 24);
    }
}
