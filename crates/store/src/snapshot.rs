//! Binary snapshot persistence for the store.
//!
//! The paper's database (TIMBER) is disk-resident; ours is in-memory, but
//! re-parsing a multi-hundred-megabyte corpus on every start would make
//! the system unusable as a database. A snapshot serializes the loaded
//! store — node tables, text arenas, attributes, interners — into a
//! length-prefixed little-endian binary format that loads back with no
//! re-parsing and no re-numbering (node ids are stable across
//! save/load, so saved query results stay valid).
//!
//! Format **v2** (current) wraps every logical unit in the checksummed
//! section framing of [`crate::persist`] and seals the whole file with a
//! trailing CRC-32, so a flipped bit is rejected as [`SnapshotError::Corrupt`]
//! before any structural parsing:
//!
//! ```text
//! magic "TIXSNAP" + version u8 (= 2)
//! header section  : u32 len, payload, u32 crc32(payload)
//!     payload = tag interner, attr-name interner, u32 doc count
//! doc section     : one per document, same framing
//!     payload = name, nodes, texts, text_bytes, attrs, attr_bytes
//! seal            : u32 crc32(all preceding bytes)
//! ```
//!
//! Format **v1** (still loadable) is the same payload encoding streamed
//! directly after the header with no checksums:
//!
//! ```text
//! magic "TIXSNAP" + version u8 (= 1)
//! tag interner      : u32 count, then (u32 len, bytes)*
//! attr-name interner: same
//! documents         : u32 count, then per document
//!     name          : u32 len, bytes
//!     nodes         : u32 count, then (end u32, parent u32, level u16,
//!                     kind u8, tag u32, payload u32)*
//!     texts         : u32 count, then (off u32, len u32)*
//!     text_bytes    : u32 len, bytes
//!     attrs         : u32 count, then (node u32, name u32, off u32, len u32)*
//!     attr_bytes    : u32 len, bytes
//! ```

use std::io::{self, Read, Write};

use crate::document::{AttrRec, DocData};
use crate::interner::{Interner, Symbol};
use crate::node::{NodeKind, NodeRec};
use crate::persist::{read_section, write_section, SealReader, SealWriter, SectionError};
use crate::store::{FromPartsError, Store};

/// Leading magic of every store snapshot, any version.
pub const SNAPSHOT_MAGIC: &[u8; 7] = b"TIXSNAP";
/// Snapshot version written by [`Store::save_snapshot`].
pub const SNAPSHOT_VERSION: u8 = 2;
/// Oldest version [`Store::load_snapshot`] still accepts.
pub const SNAPSHOT_MIN_VERSION: u8 = 1;

const MAGIC: &[u8; 7] = SNAPSHOT_MAGIC;

/// Errors raised while reading or writing a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a TIX snapshot.
    BadMagic,
    /// The snapshot version is not supported by this build.
    UnsupportedVersion(u8),
    /// Structural or checksum corruption.
    Corrupt(&'static str),
    /// Two documents in the snapshot share a registered name. Kept
    /// distinct from [`SnapshotError::Corrupt`] so loaders (and the WAL
    /// replay path, which funnels through the same name registry) can
    /// report the offending name.
    DuplicateName(String),
    /// A collection is too large for the u32 length prefixes of the
    /// on-disk format; the snapshot is refused rather than truncated.
    TooLarge(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a TIX snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::DuplicateName(name) => {
                write!(f, "corrupt snapshot: duplicate document name {name:?}")
            }
            SnapshotError::TooLarge(what) => {
                write!(f, "snapshot not written: {what} exceeds format limit")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn from_parts_err(e: FromPartsError) -> SnapshotError {
    match e {
        FromPartsError::DuplicateName(name) => SnapshotError::DuplicateName(name),
        FromPartsError::TagOutOfRange => SnapshotError::Corrupt("tag symbol out of range"),
    }
}

fn section_err(e: SectionError) -> SnapshotError {
    match e {
        SectionError::Io(e) => SnapshotError::Io(e),
        SectionError::TooLarge => SnapshotError::TooLarge("section"),
        SectionError::Truncated => SnapshotError::Corrupt("truncated section"),
        SectionError::ChecksumMismatch => SnapshotError::Corrupt("section checksum mismatch"),
    }
}

// ---- primitive writers/readers ---------------------------------------------

fn w_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn w_u16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write a collection length as u32, refusing (rather than silently
/// truncating) anything that does not fit.
fn w_count(w: &mut impl Write, n: usize, what: &'static str) -> Result<(), SnapshotError> {
    let v = u32::try_from(n).map_err(|_| SnapshotError::TooLarge(what))?;
    w_u32(w, v)?;
    Ok(())
}

fn w_bytes(w: &mut impl Write, b: &[u8], what: &'static str) -> Result<(), SnapshotError> {
    w_count(w, b.len(), what)?;
    w.write_all(b)?;
    Ok(())
}

/// Cap on speculative pre-allocation while reading untrusted snapshot
/// bytes: a corrupt length prefix must not cause a huge up-front
/// allocation, so reads reserve at most this much and grow on demand.
const PREALLOC_CAP: usize = 1 << 20;

fn r_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(u8::from_le_bytes(buf))
}

fn r_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn r_string(r: &mut impl Read) -> Result<String, SnapshotError> {
    let len = r_u32(r)? as usize;
    let mut buf = Vec::with_capacity(len.min(PREALLOC_CAP));
    let read = r.by_ref().take(len as u64).read_to_end(&mut buf)?;
    if read != len {
        return Err(SnapshotError::Corrupt("truncated string"));
    }
    String::from_utf8(buf).map_err(|_| SnapshotError::Corrupt("non-UTF-8 string"))
}

fn w_interner(w: &mut impl Write, interner: &Interner) -> Result<(), SnapshotError> {
    w_count(w, interner.len(), "interner")?;
    for (_, name) in interner.iter() {
        w_bytes(w, name.as_bytes(), "interned string")?;
    }
    Ok(())
}

fn r_interner(r: &mut impl Read) -> Result<Interner, SnapshotError> {
    let count = r_u32(r)?;
    let mut interner = Interner::new();
    for _ in 0..count {
        interner.intern(&r_string(r)?);
    }
    Ok(interner)
}

// ---- shared per-document encoding (identical in v1 and v2) -----------------

fn write_doc(w: &mut impl Write, doc: &DocData) -> Result<(), SnapshotError> {
    w_bytes(w, doc.name.as_bytes(), "document name")?;
    w_count(w, doc.nodes.len(), "node table")?;
    for rec in &doc.nodes {
        w_u32(w, rec.end)?;
        w_u32(w, rec.parent)?;
        w_u16(w, rec.level)?;
        w_u8(
            w,
            match rec.kind {
                NodeKind::Element => 0,
                NodeKind::Text => 1,
            },
        )?;
        w_u32(w, rec.tag.as_u32())?;
        w_u32(w, rec.payload)?;
    }
    w_count(w, doc.texts.len(), "text table")?;
    for &(off, len) in &doc.texts {
        w_u32(w, off)?;
        w_u32(w, len)?;
    }
    w_bytes(w, doc.text_bytes.as_bytes(), "text arena")?;
    w_count(w, doc.attrs.len(), "attribute table")?;
    for attr in &doc.attrs {
        w_u32(w, attr.node)?;
        w_u32(w, attr.name.as_u32())?;
        w_u32(w, attr.value_start)?;
        w_u32(w, attr.value_len)?;
    }
    w_bytes(w, doc.attr_bytes.as_bytes(), "attribute arena")?;
    Ok(())
}

fn read_doc(
    r: &mut impl Read,
    tags: &Interner,
    attr_names: &Interner,
) -> Result<DocData, SnapshotError> {
    let name = r_string(r)?;
    let node_count = r_u32(r)? as usize;
    let mut nodes = Vec::with_capacity(node_count.min(PREALLOC_CAP));
    for _ in 0..node_count {
        let end = r_u32(r)?;
        let parent = r_u32(r)?;
        let level = r_u16(r)?;
        let kind = match r_u8(r)? {
            0 => NodeKind::Element,
            1 => NodeKind::Text,
            _ => return Err(SnapshotError::Corrupt("unknown node kind")),
        };
        let tag_raw = r_u32(r)?;
        if kind == NodeKind::Element && tag_raw as usize >= tags.len() {
            return Err(SnapshotError::Corrupt("tag symbol out of range"));
        }
        let payload = r_u32(r)?;
        nodes.push(NodeRec {
            end,
            parent,
            level,
            kind,
            tag: Symbol::from_u32(tag_raw),
            payload,
        });
    }
    // The region encoding of untrusted snapshot bytes must satisfy
    // the paper's well-formedness conditions (laminar containment,
    // level discipline) before navigation is allowed to trust it.
    tix_invariants::try_regions_well_formed(nodes.len() as u32, |i| {
        // lint:allow(no-slice-index): i < nodes.len() by the try_ contract
        let rec = &nodes[i as usize];
        tix_invariants::Region {
            end: rec.end,
            parent: rec.parent,
            level: u32::from(rec.level),
        }
    })
    .map_err(|_| SnapshotError::Corrupt("malformed region encoding"))?;
    let text_count = r_u32(r)? as usize;
    let mut texts = Vec::with_capacity(text_count.min(PREALLOC_CAP));
    for _ in 0..text_count {
        texts.push((r_u32(r)?, r_u32(r)?));
    }
    let text_bytes = r_string(r)?;
    for &(off, len) in &texts {
        if (off as usize + len as usize) > text_bytes.len() {
            return Err(SnapshotError::Corrupt("text range out of bounds"));
        }
    }
    let attr_count = r_u32(r)? as usize;
    let mut attrs = Vec::with_capacity(attr_count.min(PREALLOC_CAP));
    for _ in 0..attr_count {
        attrs.push(AttrRec {
            node: r_u32(r)?,
            name: Symbol::from_u32(r_u32(r)?),
            value_start: r_u32(r)?,
            value_len: r_u32(r)?,
        });
    }
    let attr_bytes = r_string(r)?;
    for attr in &attrs {
        if (attr.value_start as usize + attr.value_len as usize) > attr_bytes.len() {
            return Err(SnapshotError::Corrupt("attribute range out of bounds"));
        }
        if attr.name.as_u32() as usize >= attr_names.len() {
            return Err(SnapshotError::Corrupt("attribute symbol out of range"));
        }
    }
    Ok(DocData {
        name,
        nodes,
        texts,
        text_bytes,
        attrs,
        attr_bytes,
    })
}

// ---- store-level API --------------------------------------------------------

impl Store {
    /// Serialize the whole store into `w` in the current (v2, checksummed)
    /// format.
    pub fn save_snapshot(&self, w: impl Write) -> Result<(), SnapshotError> {
        let mut w = SealWriter::new(w);
        w.write_all(MAGIC)?;
        w_u8(&mut w, SNAPSHOT_VERSION)?;
        let mut payload = Vec::new();
        w_interner(&mut payload, self.tags_interner())?;
        w_interner(&mut payload, self.attr_names_interner())?;
        let docs = self.docs();
        w_count(&mut payload, docs.len(), "document table")?;
        write_section(&mut w, &mut payload).map_err(section_err)?;
        for doc in docs {
            write_doc(&mut payload, doc.as_ref())?;
            write_section(&mut w, &mut payload).map_err(section_err)?;
        }
        w.write_seal()?;
        Ok(())
    }

    /// Serialize in the legacy v1 (unchecksummed) format. Kept for
    /// backward-compatibility and structural-corruption tests; new code
    /// should use [`Store::save_snapshot`].
    #[doc(hidden)]
    pub fn save_snapshot_v1(&self, mut w: impl Write) -> Result<(), SnapshotError> {
        let w = &mut w;
        w.write_all(MAGIC)?;
        w_u8(w, 1)?;
        w_interner(w, self.tags_interner())?;
        w_interner(w, self.attr_names_interner())?;
        let docs = self.docs();
        w_count(w, docs.len(), "document table")?;
        for doc in docs {
            write_doc(w, doc.as_ref())?;
        }
        Ok(())
    }

    /// Load a store from a snapshot previously written by
    /// [`Store::save_snapshot`] (v2) or the legacy v1 writer. Node and
    /// document ids are identical to the saved store's.
    pub fn load_snapshot(mut r: impl Read) -> Result<Store, SnapshotError> {
        let r = &mut r;
        let mut magic = [0u8; 7];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r_u8(r)?;
        match version {
            1 => load_v1(r),
            SNAPSHOT_VERSION => load_v2(r),
            other => Err(SnapshotError::UnsupportedVersion(other)),
        }
    }
}

/// Legacy streaming loader: everything after the header is structural
/// bytes with no checksums.
fn load_v1(r: &mut impl Read) -> Result<Store, SnapshotError> {
    let tags = r_interner(r)?;
    let attr_names = r_interner(r)?;
    let doc_count = r_u32(r)?;
    let mut docs = Vec::with_capacity((doc_count as usize).min(PREALLOC_CAP));
    for _ in 0..doc_count {
        docs.push(read_doc(r, &tags, &attr_names)?);
    }
    Store::from_parts(tags, attr_names, docs).map_err(from_parts_err)
}

/// Checksummed loader: every section's CRC-32 is verified before its
/// bytes are parsed, and the trailing whole-file seal is verified last.
fn load_v2(r: &mut impl Read) -> Result<Store, SnapshotError> {
    let mut sealed = SealReader::new(r);
    sealed.seed(MAGIC);
    sealed.seed(&[SNAPSHOT_VERSION]);
    let header = read_section(&mut sealed).map_err(section_err)?;
    let hr = &mut header.as_slice();
    let tags = r_interner(hr)?;
    let attr_names = r_interner(hr)?;
    let doc_count = r_u32(hr)?;
    if !hr.is_empty() {
        return Err(SnapshotError::Corrupt("trailing bytes in header section"));
    }
    let mut docs = Vec::with_capacity((doc_count as usize).min(PREALLOC_CAP));
    for _ in 0..doc_count {
        let section = read_section(&mut sealed).map_err(section_err)?;
        let dr = &mut section.as_slice();
        docs.push(read_doc(dr, &tags, &attr_names)?);
        if !dr.is_empty() {
            return Err(SnapshotError::Corrupt("trailing bytes in document section"));
        }
    }
    sealed.verify_seal().map_err(section_err)?;
    Store::from_parts(tags, attr_names, docs).map_err(from_parts_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{DocId, NodeIdx, NodeRef};

    fn sample_store() -> Store {
        let mut store = Store::new();
        store
            .load_str(
                "a.xml",
                r#"<article id="1"><p>alpha beta</p><p a="x">gamma</p></article>"#,
            )
            .unwrap();
        store
            .load_str("b.xml", "<review><title>T</title></review>")
            .unwrap();
        store
    }

    fn roundtrip(store: &Store) -> Store {
        let mut buf = Vec::new();
        store.save_snapshot(&mut buf).unwrap();
        Store::load_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let loaded = roundtrip(&store);
        assert_eq!(store.stats(), loaded.stats());
        // Serialization of every document is byte-identical.
        for doc in store.doc_ids() {
            let root = NodeRef::new(doc, NodeIdx(0));
            assert_eq!(store.subtree_xml(root), loaded.subtree_xml(root));
        }
        // Names, attributes, and the tag index survive.
        assert_eq!(loaded.doc_by_name("a.xml"), Some(DocId(0)));
        assert_eq!(
            loaded.attribute(NodeRef::new(DocId(0), NodeIdx(0)), "id"),
            Some("1")
        );
        assert_eq!(store.elements_with_tag("p"), loaded.elements_with_tag("p"));
    }

    #[test]
    fn v1_snapshot_still_loads() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_snapshot_v1(&mut buf).unwrap();
        assert_eq!(buf[7], 1, "v1 writer stamps version 1");
        let loaded = Store::load_snapshot(buf.as_slice()).unwrap();
        assert_eq!(store.stats(), loaded.stats());
        for doc in store.doc_ids() {
            let root = NodeRef::new(doc, NodeIdx(0));
            assert_eq!(store.subtree_xml(root), loaded.subtree_xml(root));
        }
    }

    #[test]
    fn v2_snapshot_is_sealed() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_snapshot(&mut buf).unwrap();
        assert_eq!(buf[7], SNAPSHOT_VERSION);
        tix_invariants::try_snapshot_sealed(MAGIC, &buf).unwrap();
    }

    #[test]
    fn node_ids_are_stable() {
        let store = sample_store();
        let loaded = roundtrip(&store);
        let node = NodeRef::new(DocId(0), NodeIdx(3));
        assert_eq!(store.tag_name(node), loaded.tag_name(node));
        assert_eq!(store.text_content(node), loaded.text_content(node));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Store::load_snapshot(&b"NOTASNAP"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Store::load_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_snapshot(&mut buf).unwrap();
        buf[7] = 99; // version byte
        let err = Store::load_snapshot(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedVersion(99)));
    }

    #[test]
    fn oversized_count_refused_not_truncated() {
        let mut buf = Vec::new();
        let err = w_count(&mut buf, u32::MAX as usize + 1, "node table").unwrap_err();
        assert!(matches!(err, SnapshotError::TooLarge("node table")));
        assert!(buf.is_empty(), "nothing written for a refused count");
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = Store::new();
        let loaded = roundtrip(&store);
        assert_eq!(loaded.doc_count(), 0);
    }

    #[test]
    fn duplicate_document_name_is_a_typed_error() {
        // Hand-assemble a v1 snapshot carrying the same document twice:
        // structurally valid bytes, so the name registry — not the framing
        // — must catch it, with the offending name in the error.
        let mut store = Store::new();
        store.load_str("dup.xml", "<a>x</a>").unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        w_u8(&mut buf, 1).unwrap();
        w_interner(&mut buf, store.tags_interner()).unwrap();
        w_interner(&mut buf, store.attr_names_interner()).unwrap();
        w_count(&mut buf, 2, "document table").unwrap();
        let doc = store.docs()[0].as_ref();
        write_doc(&mut buf, doc).unwrap();
        write_doc(&mut buf, doc).unwrap();
        match Store::load_snapshot(buf.as_slice()) {
            Err(SnapshotError::DuplicateName(name)) => assert_eq!(name, "dup.xml"),
            other => panic!("expected DuplicateName, got {other:?}"),
        }
    }
}
