//! Fault-injection I/O wrappers for crash-safety and corruption testing.
//!
//! The durability claims of the persistence layer ([`crate::persist`]) are
//! only claims until something tries to break them. These adapters
//! simulate the real-world failure modes a snapshot write or read can
//! meet, deterministically:
//!
//! * [`FailingWriter`] — dies with a configurable [`io::ErrorKind`] after
//!   exactly N bytes (a crash / full disk mid-write), optionally delivers
//!   **short writes** (accepts one byte per call, exercising `write_all`
//!   retry loops), and optionally raises periodic
//!   [`io::ErrorKind::Interrupted`] storms (which correct callers must
//!   retry through).
//! * [`FailingReader`] — the same fail-after-N and interrupt-storm
//!   behavior on the read side.
//! * [`CorruptingReader`] — flips a single chosen bit at a chosen byte
//!   offset, the minimal corruption a checksummed format must detect.
//!
//! They live in the library (not a test module) so every crate's
//! integration tests — store, index, cli, server — can drive the same
//! sweeps against their own formats.

use std::io::{self, Read, Write};

/// A writer that injects failures: hard errors after a byte budget, short
/// writes, and `Interrupted` storms. See the module docs.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    written: u64,
    fail_after: u64,
    kind: io::ErrorKind,
    short_writes: bool,
    interrupt_every: u64,
    calls: u64,
}

impl<W: Write> FailingWriter<W> {
    /// Fail with [`io::ErrorKind::Other`] once `limit` bytes have been
    /// accepted; bytes up to the limit pass through to `inner`.
    pub fn fail_after(inner: W, limit: u64) -> Self {
        FailingWriter {
            inner,
            written: 0,
            fail_after: limit,
            kind: io::ErrorKind::Other,
            short_writes: false,
            interrupt_every: 0,
            calls: 0,
        }
    }

    /// A writer that never hard-fails (the byte budget is unlimited) —
    /// combine with [`FailingWriter::short`] or
    /// [`FailingWriter::interrupt_every`] to stress retry paths only.
    pub fn unlimited(inner: W) -> Self {
        FailingWriter::fail_after(inner, u64::MAX)
    }

    /// Use `kind` for the injected hard failure instead of `Other`.
    pub fn with_kind(mut self, kind: io::ErrorKind) -> Self {
        self.kind = kind;
        self
    }

    /// Deliver short writes: each call accepts at most one byte.
    pub fn short(mut self) -> Self {
        self.short_writes = true;
        self
    }

    /// Raise `ErrorKind::Interrupted` on every `n`-th write call (before
    /// consuming any bytes). `write_all` retries these, so a save through
    /// an interrupt storm must still succeed byte-for-byte.
    pub fn interrupt_every(mut self, n: u64) -> Self {
        self.interrupt_every = n;
        self
    }

    /// Total bytes accepted so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.calls += 1;
        if self.interrupt_every > 0 && self.calls.is_multiple_of(self.interrupt_every) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected interrupt",
            ));
        }
        if self.written >= self.fail_after {
            return Err(io::Error::new(self.kind, "injected write failure"));
        }
        let budget = self.fail_after - self.written;
        let mut take = buf.len().min(usize::try_from(budget).unwrap_or(usize::MAX));
        if self.short_writes {
            take = take.min(1);
        }
        let chunk = buf.get(..take).unwrap_or(buf);
        let n = self.inner.write(chunk)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that injects failures: hard errors after a byte budget, short
/// reads, and `Interrupted` storms — the read-side mirror of
/// [`FailingWriter`].
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    read: u64,
    fail_after: u64,
    kind: io::ErrorKind,
    short_reads: bool,
    interrupt_every: u64,
    calls: u64,
}

impl<R: Read> FailingReader<R> {
    /// Fail with [`io::ErrorKind::Other`] once `limit` bytes have been
    /// delivered.
    pub fn fail_after(inner: R, limit: u64) -> Self {
        FailingReader {
            inner,
            read: 0,
            fail_after: limit,
            kind: io::ErrorKind::Other,
            short_reads: false,
            interrupt_every: 0,
            calls: 0,
        }
    }

    /// A reader that never hard-fails; combine with
    /// [`FailingReader::short`] / [`FailingReader::interrupt_every`].
    pub fn unlimited(inner: R) -> Self {
        FailingReader::fail_after(inner, u64::MAX)
    }

    /// Use `kind` for the injected hard failure instead of `Other`.
    pub fn with_kind(mut self, kind: io::ErrorKind) -> Self {
        self.kind = kind;
        self
    }

    /// Deliver short reads: each call yields at most one byte.
    pub fn short(mut self) -> Self {
        self.short_reads = true;
        self
    }

    /// Raise `ErrorKind::Interrupted` on every `n`-th read call.
    pub fn interrupt_every(mut self, n: u64) -> Self {
        self.interrupt_every = n;
        self
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.calls += 1;
        if self.interrupt_every > 0 && self.calls.is_multiple_of(self.interrupt_every) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected interrupt",
            ));
        }
        if self.read >= self.fail_after {
            return Err(io::Error::new(self.kind, "injected read failure"));
        }
        let budget = self.fail_after - self.read;
        let mut take = buf.len().min(usize::try_from(budget).unwrap_or(usize::MAX));
        if self.short_reads {
            take = take.min(1);
        }
        let target = buf.get_mut(..take).unwrap_or_default();
        let n = self.inner.read(target)?;
        self.read += n as u64;
        Ok(n)
    }
}

/// A reader that flips one bit: byte `offset` of the stream has `1 << bit`
/// XORed in as it passes through. Everything else is delivered verbatim.
#[derive(Debug)]
pub struct CorruptingReader<R> {
    inner: R,
    offset: u64,
    mask: u8,
    pos: u64,
}

impl<R: Read> CorruptingReader<R> {
    /// Flip bit `bit` (0–7) of the byte at absolute stream `offset`.
    pub fn flip_bit(inner: R, offset: u64, bit: u8) -> Self {
        CorruptingReader {
            inner,
            offset,
            mask: 1u8.checked_shl(u32::from(bit)).unwrap_or(1),
            pos: 0,
        }
    }
}

impl<R: Read> Read for CorruptingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        let end = self.pos + n as u64;
        if self.offset >= self.pos && self.offset < end {
            let idx = usize::try_from(self.offset - self.pos).unwrap_or(0);
            if let Some(b) = buf.get_mut(idx) {
                *b ^= self.mask;
            }
        }
        self.pos = end;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_writer_fails_at_exact_offset() {
        for limit in [0u64, 1, 7, 20] {
            let mut out = Vec::new();
            let mut w = FailingWriter::fail_after(&mut out, limit);
            let err = w.write_all(&[0xAB; 21]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Other);
            assert_eq!(out.len() as u64, limit, "limit {limit}");
        }
        // Exactly at the budget, the full write succeeds.
        let mut out = Vec::new();
        let mut w = FailingWriter::fail_after(&mut out, 21);
        w.write_all(&[0xAB; 21]).unwrap();
        assert_eq!(out.len(), 21);
    }

    #[test]
    fn short_writes_and_interrupt_storms_are_survivable() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut out = Vec::new();
        let mut w = FailingWriter::unlimited(&mut out)
            .short()
            .interrupt_every(2);
        w.write_all(&payload).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn custom_error_kind() {
        let mut w = FailingWriter::fail_after(Vec::new(), 0).with_kind(io::ErrorKind::WriteZero);
        let err = w.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn failing_reader_fails_at_exact_offset() {
        let data = [0x5Au8; 16];
        let mut r = FailingReader::fail_after(data.as_slice(), 9);
        let mut buf = Vec::new();
        let err = r.read_to_end(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(buf.len(), 9);
    }

    #[test]
    fn short_reads_and_interrupts_still_deliver_everything() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut r = FailingReader::unlimited(data.as_slice())
            .short()
            .interrupt_every(3);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn corrupting_reader_flips_exactly_one_bit() {
        let data = vec![0u8; 32];
        for (offset, bit) in [(0u64, 0u8), (5, 3), (31, 7)] {
            let mut r = CorruptingReader::flip_bit(data.as_slice(), offset, bit);
            let mut buf = Vec::new();
            r.read_to_end(&mut buf).unwrap();
            let mut expected = data.clone();
            expected[usize::try_from(offset).unwrap()] ^= 1 << bit;
            assert_eq!(buf, expected, "offset {offset} bit {bit}");
        }
        // One-byte reads still hit the right offset.
        let mut r =
            FailingReader::unlimited(CorruptingReader::flip_bit(data.as_slice(), 7, 1)).short();
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf[7], 0b10);
    }
}
