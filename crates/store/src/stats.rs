//! Database-wide statistics, used by the experiment harness to report the
//! shape of the loaded corpus alongside each table (the paper reports
//! "18 million XML elements with a total size of 500 MB").

use std::fmt;

use crate::node::NodeKind;
use crate::store::Store;

/// Summary statistics over every loaded document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of loaded documents.
    pub documents: usize,
    /// Element nodes across all documents.
    pub elements: usize,
    /// Text nodes across all documents.
    pub text_nodes: usize,
    /// Total bytes of character data.
    pub text_bytes: usize,
    /// Deepest nesting level observed (root = 0).
    pub max_depth: u16,
    /// Sum of every node's nesting level — `level_sum / total_nodes()` is
    /// the average depth, the ancestor-expansion factor the query planner
    /// charges materializing baselines (Comp1, Generalized Meet) for.
    pub level_sum: u64,
    /// Distinct tag names.
    pub distinct_tags: usize,
}

impl StoreStats {
    pub(crate) fn gather(store: &Store) -> Self {
        let mut stats = StoreStats {
            documents: store.doc_count(),
            elements: 0,
            text_nodes: 0,
            text_bytes: 0,
            max_depth: 0,
            level_sum: 0,
            distinct_tags: 0,
        };
        let mut seen_tags = std::collections::HashSet::new();
        for doc in store.docs() {
            stats.text_bytes += doc.text_bytes.len();
            for rec in &doc.nodes {
                stats.max_depth = stats.max_depth.max(rec.level());
                stats.level_sum += u64::from(rec.level());
                match rec.kind() {
                    NodeKind::Element => {
                        stats.elements += 1;
                        seen_tags.insert(rec.tag());
                    }
                    NodeKind::Text => stats.text_nodes += 1,
                }
            }
        }
        stats.distinct_tags = seen_tags.len();
        stats
    }

    /// Total stored nodes.
    pub fn total_nodes(&self) -> usize {
        self.elements + self.text_nodes
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} docs, {} elements, {} text nodes ({} bytes of text), \
             {} distinct tags, max depth {}",
            self.documents,
            self.elements,
            self.text_nodes,
            self.text_bytes,
            self.distinct_tags,
            self.max_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_counts() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a>hi<b><c/>yo</b></a>").unwrap();
        store.load_str("b.xml", "<x/>").unwrap();
        let stats = store.stats();
        assert_eq!(stats.documents, 2);
        assert_eq!(stats.elements, 4); // a, b, c, x
        assert_eq!(stats.text_nodes, 2);
        assert_eq!(stats.text_bytes, 4);
        assert_eq!(stats.max_depth, 2);
        // a=0, hi=1, b=1, c=2, yo=2, x=0.
        assert_eq!(stats.level_sum, 6);
        assert_eq!(stats.distinct_tags, 4);
        assert_eq!(stats.total_nodes(), 6);
    }

    #[test]
    fn display_is_readable() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a/>").unwrap();
        let text = store.stats().to_string();
        assert!(text.contains("1 docs"));
        assert!(text.contains("1 elements"));
    }
}
