//! Per-document storage: the preorder node table, text arena, and
//! attribute table.

use std::fmt;

use tix_xml::{Event, Reader};

use crate::interner::{Interner, Symbol};
use crate::node::{NodeIdx, NodeKind, NodeRec, NO_PARENT};

/// Errors raised while loading a document into the store.
#[derive(Debug)]
pub enum LoadError {
    /// The underlying XML was not well-formed.
    Xml(tix_xml::Error),
    /// More than `u32::MAX - 1` nodes in one document.
    TooManyNodes,
    /// Deeper than `u16::MAX` levels.
    TooDeep,
    /// A document with this name is already loaded.
    DuplicateName(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Xml(e) => write!(f, "XML parse error: {e}"),
            LoadError::TooManyNodes => write!(f, "document exceeds node-count limit"),
            LoadError::TooDeep => write!(f, "document exceeds depth limit"),
            LoadError::DuplicateName(name) => {
                write!(f, "a document named {name:?} is already loaded")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tix_xml::Error> for LoadError {
    fn from(e: tix_xml::Error) -> Self {
        LoadError::Xml(e)
    }
}

/// An attribute record: `node` is the owning element's preorder number,
/// `name` the interned attribute name, and `(value_start, value_len)` a
/// range in the document's attribute-value arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AttrRec {
    pub(crate) node: u32,
    pub(crate) name: Symbol,
    pub(crate) value_start: u32,
    pub(crate) value_len: u32,
}

/// One loaded document: node table in preorder, text arena, attributes.
///
/// Comments, processing instructions, and whitespace-only text runs are
/// dropped at load time — they are not addressable by the algebra and carry
/// no scoring-relevant text.
#[derive(Debug, Clone, Default)]
pub struct DocData {
    pub(crate) name: String,
    pub(crate) nodes: Vec<NodeRec>,
    /// Text node payloads index into this: `(offset, len)` into `text_bytes`.
    pub(crate) texts: Vec<(u32, u32)>,
    pub(crate) text_bytes: String,
    /// Sorted by `node` (naturally, since attributes are emitted at `Start`).
    pub(crate) attrs: Vec<AttrRec>,
    pub(crate) attr_bytes: String,
}

impl DocData {
    /// The document's registered name (e.g. `"articles.xml"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stored nodes (elements + text nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a document with no stored nodes (cannot happen for
    /// successfully loaded documents, which have at least a root element).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The document element. Always node 0: comments and PIs before the
    /// root are not stored.
    pub fn root(&self) -> NodeIdx {
        NodeIdx(0)
    }

    /// The node record at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn node(&self, idx: NodeIdx) -> &NodeRec {
        // lint:allow(no-slice-index): documented contract; indexes come from iterating 0..len
        &self.nodes[idx.index()]
    }

    /// Text payload of a text node (empty string for elements).
    pub fn text(&self, idx: NodeIdx) -> &str {
        let rec = self.node(idx);
        match rec.kind {
            NodeKind::Text => {
                // Payload slots and byte ranges are built by load() and
                // validated on snapshot load; tolerate corruption anyway.
                let Some(&(off, len)) = self.texts.get(rec.payload as usize) else {
                    return "";
                };
                self.text_bytes
                    .get(off as usize..(off as usize + len as usize))
                    .unwrap_or("")
            }
            NodeKind::Element => "",
        }
    }

    /// Attribute values for `a`, defensively empty on a corrupt range.
    fn attr_value(&self, a: &AttrRec) -> &str {
        self.attr_bytes
            .get(a.value_start as usize..(a.value_start as usize + a.value_len as usize))
            .unwrap_or("")
    }

    /// Attribute `name` of element `idx`, if present.
    pub(crate) fn attribute(&self, idx: NodeIdx, name: Symbol) -> Option<&str> {
        let start = self.attrs.partition_point(|a| a.node < idx.as_u32());
        self.attrs
            .get(start..)
            .unwrap_or(&[])
            .iter()
            .take_while(|a| a.node == idx.as_u32())
            .find(|a| a.name == name)
            .map(|a| self.attr_value(a))
    }

    /// All attributes of element `idx` as `(name symbol, value)` pairs.
    pub(crate) fn attributes(&self, idx: NodeIdx) -> impl Iterator<Item = (Symbol, &str)> {
        let start = self.attrs.partition_point(|a| a.node < idx.as_u32());
        self.attrs
            .get(start..)
            .unwrap_or(&[])
            .iter()
            .take_while(move |a| a.node == idx.as_u32())
            .map(|a| (a.name, self.attr_value(a)))
    }

    /// Parse `xml` into a node table. `tags` and `attr_names` are the
    /// store-wide interners.
    pub(crate) fn load(
        name: &str,
        xml: &str,
        tags: &mut Interner,
        attr_names: &mut Interner,
    ) -> Result<Self, LoadError> {
        let mut doc = DocData {
            name: name.to_string(),
            ..DocData::default()
        };
        let mut reader = Reader::new(xml);
        // Stack of open element node indexes.
        let mut open: Vec<u32> = Vec::new();
        loop {
            match reader.next_event()? {
                Event::Start { tag, attributes } => {
                    let idx =
                        doc.push_node(NodeKind::Element, tags.intern(&tag), open.last().copied())?;
                    for attr in &attributes {
                        let value_start = doc.attr_bytes.len() as u32;
                        doc.attr_bytes.push_str(&attr.value);
                        doc.attrs.push(AttrRec {
                            node: idx,
                            name: attr_names.intern(&attr.name),
                            value_start,
                            value_len: attr.value.len() as u32,
                        });
                    }
                    open.push(idx);
                }
                Event::End { .. } => {
                    // The reader rejects unbalanced close tags, so the
                    // stack cannot underflow; skip defensively if it ever
                    // did rather than panicking on malformed input.
                    let Some(idx) = open.pop() else { continue };
                    // All descendants have been pushed; the last node pushed
                    // is this element's last descendant.
                    let last = (doc.nodes.len() - 1) as u32;
                    if let Some(rec) = doc.nodes.get_mut(idx as usize) {
                        rec.end = last;
                    }
                }
                Event::Text(text) => {
                    // Inter-element (whitespace-only) text carries no
                    // queryable content; dropping it keeps child counts and
                    // node numbering meaningful for document-centric data.
                    if text.trim().is_empty() {
                        continue;
                    }
                    let slot = doc.texts.len() as u32;
                    let off = doc.text_bytes.len() as u32;
                    doc.text_bytes.push_str(&text);
                    doc.texts.push((off, text.len() as u32));
                    let idx =
                        doc.push_node(NodeKind::Text, Symbol::from_u32(0), open.last().copied())?;
                    if let Some(rec) = doc.nodes.get_mut(idx as usize) {
                        rec.payload = slot;
                        rec.end = idx;
                    }
                }
                Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
                Event::Eof => break,
            }
        }
        Ok(doc)
    }

    /// Append a node record, maintaining the parent's child count.
    fn push_node(
        &mut self,
        kind: NodeKind,
        tag: Symbol,
        parent: Option<u32>,
    ) -> Result<u32, LoadError> {
        let idx = self.nodes.len();
        if idx >= (u32::MAX - 1) as usize {
            return Err(LoadError::TooManyNodes);
        }
        let level = match parent {
            Some(p) => {
                // Parents come off the open-element stack, whose entries
                // were minted by this function, so the index is valid.
                // lint:allow(no-slice-index): open-stack entries are valid node indexes
                let parent_rec = &mut self.nodes[p as usize];
                // Elements use `payload` as their child count.
                parent_rec.payload += 1;
                parent_rec.level.checked_add(1).ok_or(LoadError::TooDeep)?
            }
            None => 0,
        };
        self.nodes.push(NodeRec {
            end: idx as u32, // provisional; fixed at Event::End for elements
            parent: parent.unwrap_or(NO_PARENT),
            level,
            kind,
            tag,
            payload: 0,
        });
        Ok(idx as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(xml: &str) -> (DocData, Interner, Interner) {
        let mut tags = Interner::new();
        let mut attr_names = Interner::new();
        let doc = DocData::load("t.xml", xml, &mut tags, &mut attr_names).unwrap();
        (doc, tags, attr_names)
    }

    #[test]
    fn preorder_numbering() {
        let (doc, tags, _) = load("<a><b>x</b><c/></a>");
        // Preorder: a=0, b=1, text=2, c=3.
        assert_eq!(doc.len(), 4);
        assert_eq!(tags.resolve(doc.node(NodeIdx(0)).tag()), "a");
        assert_eq!(tags.resolve(doc.node(NodeIdx(1)).tag()), "b");
        assert_eq!(doc.node(NodeIdx(2)).kind(), NodeKind::Text);
        assert_eq!(tags.resolve(doc.node(NodeIdx(3)).tag()), "c");
    }

    #[test]
    fn region_encoding_end_keys() {
        let (doc, _, _) = load("<a><b>x</b><c/></a>");
        assert_eq!(doc.node(NodeIdx(0)).end(), NodeIdx(3)); // a spans all
        assert_eq!(doc.node(NodeIdx(1)).end(), NodeIdx(2)); // b spans its text
        assert_eq!(doc.node(NodeIdx(2)).end(), NodeIdx(2)); // text is a leaf
        assert_eq!(doc.node(NodeIdx(3)).end(), NodeIdx(3)); // c is a leaf
    }

    #[test]
    fn levels() {
        let (doc, _, _) = load("<a><b><c/></b></a>");
        assert_eq!(doc.node(NodeIdx(0)).level(), 0);
        assert_eq!(doc.node(NodeIdx(1)).level(), 1);
        assert_eq!(doc.node(NodeIdx(2)).level(), 2);
    }

    #[test]
    fn child_counts_maintained() {
        let (doc, _, _) = load("<a><b>x</b><c/><d>y z</d></a>");
        // a has children b, c, d = 3; b has 1 (text); d has 1 (text run).
        assert_eq!(doc.node(NodeIdx(0)).payload, 3);
        assert_eq!(doc.node(NodeIdx(1)).payload, 1);
    }

    #[test]
    fn text_stored_and_retrievable() {
        let (doc, _, _) = load("<a>hello <b>world</b></a>");
        assert_eq!(doc.text(NodeIdx(1)), "hello ");
        assert_eq!(doc.text(NodeIdx(3)), "world");
        assert_eq!(doc.text(NodeIdx(0)), ""); // element
    }

    #[test]
    fn attributes_stored() {
        let (doc, _, attr_names) = load(r#"<a x="1"><b y="2" z="3"/></a>"#);
        let x = attr_names.get("x").unwrap();
        let y = attr_names.get("y").unwrap();
        let z = attr_names.get("z").unwrap();
        assert_eq!(doc.attribute(NodeIdx(0), x), Some("1"));
        assert_eq!(doc.attribute(NodeIdx(1), y), Some("2"));
        assert_eq!(doc.attribute(NodeIdx(1), z), Some("3"));
        assert_eq!(doc.attribute(NodeIdx(0), y), None);
    }

    #[test]
    fn comments_not_stored() {
        let (doc, _, _) = load("<a><!-- hi --><b/></a>");
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn whitespace_only_text_not_stored() {
        let (doc, _, _) = load("<a>\n  <b>x</b>\n  <c/>\n</a>");
        // a, b, "x", c — the indentation runs are gone.
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.node(NodeIdx(0)).payload, 2); // child count unpolluted
    }

    #[test]
    fn malformed_is_error() {
        let mut tags = Interner::new();
        let mut attr_names = Interner::new();
        assert!(matches!(
            DocData::load("bad.xml", "<a><b></a>", &mut tags, &mut attr_names),
            Err(LoadError::Xml(_))
        ));
    }
}
