//! String interning for tag and attribute names.
//!
//! The INEX-scale corpus has millions of elements but only a few hundred
//! distinct tag names, so nodes store a 4-byte [`Symbol`] and resolve it
//! through the store's interner.

use std::collections::HashMap;

/// An interned string. Symbols are only meaningful relative to the
/// [`Interner`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense integer value of this symbol (0-based, contiguous).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Reconstruct a symbol from its dense integer value.
    ///
    /// The caller is responsible for the value having come from the same
    /// interner; `resolve` panics otherwise.
    pub fn from_u32(value: u32) -> Self {
        Symbol(value)
    }
}

/// A bidirectional string ↔ [`Symbol`] map.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: HashMap<String, Symbol>,
    names: Vec<String>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// Look up `name` without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        // lint:allow(no-slice-index): documented panic contract above
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, name)| (Symbol(i as u32), name.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = Interner::new();
        let a1 = interner.intern("article");
        let a2 = interner.intern("article");
        assert_eq!(a1, a2);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        assert_ne!(a, b);
        assert_eq!(interner.resolve(a), "a");
        assert_eq!(interner.resolve(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = Interner::new();
        assert_eq!(interner.get("x"), None);
        let x = interner.intern("x");
        assert_eq!(interner.get("x"), Some(x));
    }

    #[test]
    fn symbols_are_dense() {
        let mut interner = Interner::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(interner.intern(name).as_u32(), i as u32);
        }
    }

    #[test]
    fn iter_in_order() {
        let mut interner = Interner::new();
        interner.intern("x");
        interner.intern("y");
        let names: Vec<_> = interner.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["x", "y"]);
    }
}
