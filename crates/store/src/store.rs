//! The store: loaded documents, interners, and the navigation / index API
//! used by every layer above.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::document::{DocData, LoadError};
use crate::interner::{Interner, Symbol};
use crate::node::{DocId, NodeIdx, NodeKind, NodeRef, NO_PARENT};
use crate::stats::StoreStats;

/// Errors raised by [`Store::remove_document`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoveError {
    /// No document is registered under this name.
    NotFound(String),
}

impl fmt::Display for RemoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoveError::NotFound(name) => write!(f, "no document named {name:?}"),
        }
    }
}

impl std::error::Error for RemoveError {}

/// Why [`Store::from_parts`] refused to assemble a store from snapshot
/// parts. Snapshot bytes are untrusted input, so both conditions are
/// loader errors rather than panics.
#[derive(Debug)]
pub(crate) enum FromPartsError {
    /// Two documents share a registered name.
    DuplicateName(String),
    /// A node references a tag symbol past the interner's table.
    TagOutOfRange,
}

/// An in-memory XML database: documents, tag index, navigation.
///
/// Documents are held behind [`Arc`]s: loaded document data is immutable
/// (mutations add or remove whole documents), so a copy-on-write
/// [`Store::freeze`] can capture the document table by reference-count
/// bumps alone — the epoch snapshot a non-blocking checkpoint folds from
/// while writers keep mutating the live store.
///
/// See the crate docs for the role this plays in the reproduction.
#[derive(Debug, Default)]
pub struct Store {
    docs: Vec<Arc<DocData>>,
    by_name: HashMap<String, DocId>,
    tags: Interner,
    attr_names: Interner,
    /// Tag index: `tag_elements[tag.as_u32()]` lists every element with that
    /// tag, in global document order. This is the pattern-tree leaf access
    /// path (the equivalent of TIMBER's element index).
    tag_elements: Vec<Vec<NodeRef>>,
}

impl Store {
    /// Create an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Parse and load `xml` under `name`.
    pub fn load_str(&mut self, name: &str, xml: &str) -> Result<DocId, LoadError> {
        if self.by_name.contains_key(name) {
            return Err(LoadError::DuplicateName(name.to_string()));
        }
        let doc = DocData::load(name, xml, &mut self.tags, &mut self.attr_names)?;
        let id = DocId(self.docs.len() as u32);
        // Extend the tag index with this document's elements, preserving
        // global document order (docs are appended in load order).
        self.tag_elements.resize(self.tags.len(), Vec::new());
        for (i, rec) in doc.nodes.iter().enumerate() {
            if rec.kind == NodeKind::Element {
                // lint:allow(no-slice-index): resized to tags.len() above
                self.tag_elements[rec.tag.as_u32() as usize]
                    .push(NodeRef::new(id, NodeIdx(i as u32)));
            }
        }
        self.by_name.insert(name.to_string(), id);
        self.docs.push(Arc::new(doc));
        Ok(id)
    }

    /// Remove the document registered under `name`, returning the id it
    /// occupied.
    ///
    /// Document ids are dense: every document after the removed one shifts
    /// down by one, so outstanding [`NodeRef`]s (and index postings) are
    /// invalidated by a removal. Callers maintaining derived structures —
    /// the inverted index, caches keyed on node identity — must remap or
    /// rebuild them in the same mutation step; `tix::Database` does exactly
    /// that for its index.
    pub fn remove_document(&mut self, name: &str) -> Result<DocId, RemoveError> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| RemoveError::NotFound(name.to_string()))?;
        self.docs.remove(id.0 as usize);
        self.reindex();
        Ok(id)
    }

    /// Rebuild the name map and tag index from the document table (after a
    /// removal renumbers document ids). The interners are left as-is: a
    /// symbol that no longer occurs simply has an empty element list, which
    /// keeps every surviving symbol stable.
    fn reindex(&mut self) {
        self.by_name.clear();
        for list in &mut self.tag_elements {
            list.clear();
        }
        self.tag_elements.resize(self.tags.len(), Vec::new());
        for (d, doc) in self.docs.iter().enumerate() {
            let id = DocId(d as u32);
            self.by_name.insert(doc.name.clone(), id);
            for (i, rec) in doc.nodes.iter().enumerate() {
                if rec.kind == NodeKind::Element {
                    // lint:allow(no-slice-index): resized to tags.len() above
                    self.tag_elements[rec.tag.as_u32() as usize]
                        .push(NodeRef::new(id, NodeIdx(i as u32)));
                }
            }
        }
    }

    // ---- documents -------------------------------------------------------

    /// Number of loaded documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// The document data for `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this store.
    pub fn doc(&self, id: DocId) -> &DocData {
        // lint:allow(no-slice-index): documented panic contract above
        &self.docs[id.0 as usize]
    }

    /// Look up a document by registered name.
    pub fn doc_by_name(&self, name: &str) -> Option<DocId> {
        self.by_name.get(name).copied()
    }

    /// Iterate over all loaded document ids.
    pub fn doc_ids(&self) -> impl Iterator<Item = DocId> {
        (0..self.docs.len() as u32).map(DocId)
    }

    /// Total stored nodes across all documents.
    pub fn node_count(&self) -> usize {
        self.docs.iter().map(|doc| doc.len()).sum()
    }

    // ---- node basics ------------------------------------------------------

    /// Kind of `node`.
    pub fn kind(&self, node: NodeRef) -> NodeKind {
        self.doc(node.doc).node(node.node).kind()
    }

    /// Tag name of `node` if it is an element.
    pub fn tag_name(&self, node: NodeRef) -> Option<&str> {
        let rec = self.doc(node.doc).node(node.node);
        match rec.kind() {
            NodeKind::Element => Some(self.tags.resolve(rec.tag())),
            NodeKind::Text => None,
        }
    }

    /// Interned tag symbol of `node` if it is an element.
    pub fn tag_symbol(&self, node: NodeRef) -> Option<Symbol> {
        let rec = self.doc(node.doc).node(node.node);
        match rec.kind() {
            NodeKind::Element => Some(rec.tag()),
            NodeKind::Text => None,
        }
    }

    /// Text payload of a text node (empty for elements).
    pub fn text(&self, node: NodeRef) -> &str {
        self.doc(node.doc).text(node.node)
    }

    /// Attribute value by name.
    pub fn attribute(&self, node: NodeRef, name: &str) -> Option<&str> {
        let sym = self.attr_names.get(name)?;
        self.doc(node.doc).attribute(node.node, sym)
    }

    /// All attributes of `node` as `(name, value)` pairs.
    pub fn attributes(&self, node: NodeRef) -> impl Iterator<Item = (&str, &str)> {
        self.doc(node.doc)
            .attributes(node.node)
            .map(|(sym, value)| (self.attr_names.resolve(sym), value))
    }

    /// End key (preorder number of the last descendant) of `node`.
    pub fn end_key(&self, node: NodeRef) -> NodeIdx {
        self.doc(node.doc).node(node.node).end()
    }

    /// Depth of `node` below its document root (root = 0).
    pub fn level(&self, node: NodeRef) -> u16 {
        self.doc(node.doc).node(node.node).level()
    }

    /// Number of nodes in the subtree rooted at `node` (including itself).
    pub fn subtree_size(&self, node: NodeRef) -> usize {
        let rec = self.doc(node.doc).node(node.node);
        (rec.end - node.node.as_u32()) as usize + 1
    }

    // ---- navigation --------------------------------------------------------

    /// Parent of `node`, or `None` for a document root.
    pub fn parent(&self, node: NodeRef) -> Option<NodeRef> {
        let rec = self.doc(node.doc).node(node.node);
        if rec.parent == NO_PARENT {
            None
        } else {
            Some(NodeRef::new(node.doc, NodeIdx(rec.parent)))
        }
    }

    /// Iterate `node`'s ancestors from parent up to the document root.
    pub fn ancestors(&self, node: NodeRef) -> Ancestors<'_> {
        Ancestors {
            store: self,
            next: self.parent(node),
        }
    }

    /// True when `anc` is a proper ancestor of `desc`.
    ///
    /// This is the region-encoding containment test the stack algorithms
    /// rely on: `anc.start < desc.start ∧ desc.start ≤ anc.end`.
    pub fn is_ancestor(&self, anc: NodeRef, desc: NodeRef) -> bool {
        anc.doc == desc.doc
            && anc.node < desc.node
            && desc.node.as_u32() <= self.doc(anc.doc).node(anc.node).end
    }

    /// True when `anc` is `desc` or a proper ancestor of it (the paper's
    /// `ad*` / `descendant-or-self` relationship).
    pub fn is_self_or_ancestor(&self, anc: NodeRef, desc: NodeRef) -> bool {
        anc == desc || self.is_ancestor(anc, desc)
    }

    /// True when `parent` is the parent of `child`.
    pub fn is_parent(&self, parent: NodeRef, child: NodeRef) -> bool {
        self.parent(child) == Some(parent)
    }

    /// Iterate the direct children of `node` in document order.
    ///
    /// Uses the region encoding: the first child is at `node + 1`, and each
    /// next child follows its predecessor's end key.
    pub fn children(&self, node: NodeRef) -> Children<'_> {
        let rec = self.doc(node.doc).node(node.node);
        let first = node.node.as_u32() + 1;
        Children {
            store: self,
            doc: node.doc,
            next: if first <= rec.end { Some(first) } else { None },
            last: rec.end,
        }
    }

    /// O(1) child count from the child-count index (the *Enhanced TermJoin*
    /// access path — see Tables 2–4 of the paper).
    pub fn child_count(&self, node: NodeRef) -> u32 {
        let rec = self.doc(node.doc).node(node.node);
        match rec.kind() {
            NodeKind::Element => rec.payload,
            NodeKind::Text => 0,
        }
    }

    /// Child count computed by navigating the stored subtree, touching every
    /// descendant record.
    ///
    /// This deliberately models what the paper describes for plain TermJoin
    /// under complex scoring: "a data access to the database is performed
    /// and some navigation is needed to get the number of children". The
    /// speed gap between this and [`Store::child_count`] is what the
    /// Enhanced TermJoin rows in Tables 2–4 measure.
    pub fn count_children_by_navigation(&self, node: NodeRef) -> u32 {
        let doc = self.doc(node.doc);
        let rec = doc.node(node.node);
        let child_level = rec.level + 1;
        let mut count = 0u32;
        for i in node.node.as_u32() + 1..=rec.end {
            if doc.node(NodeIdx(i)).level == child_level {
                count += 1;
            }
        }
        count
    }

    /// Iterate `node` and its whole subtree in document order (preorder).
    pub fn descendants_or_self(&self, node: NodeRef) -> impl Iterator<Item = NodeRef> + '_ {
        let end = self.doc(node.doc).node(node.node).end;
        let doc = node.doc;
        (node.node.as_u32()..=end).map(move |i| NodeRef::new(doc, NodeIdx(i)))
    }

    /// Concatenated text of every text node in `node`'s subtree — the
    /// paper's `alltext()` (Fig. 9).
    pub fn text_content(&self, node: NodeRef) -> String {
        let doc = self.doc(node.doc);
        let rec = doc.node(node.node);
        let mut out = String::new();
        for i in node.node.as_u32()..=rec.end {
            if doc.node(NodeIdx(i)).kind == NodeKind::Text {
                out.push_str(doc.text(NodeIdx(i)));
            }
        }
        out
    }

    // ---- indexes -----------------------------------------------------------

    /// The interned symbol for `tag`, if any element uses it.
    pub fn tag(&self, tag: &str) -> Option<Symbol> {
        self.tags.get(tag)
    }

    /// Resolve a tag symbol to its name.
    pub fn tag_str(&self, sym: Symbol) -> &str {
        self.tags.resolve(sym)
    }

    /// Every element with tag `tag`, in global document order (the tag
    /// index / element list).
    pub fn elements_with_tag(&self, tag: &str) -> &[NodeRef] {
        match self.tags.get(tag) {
            Some(sym) => self
                .tag_elements
                .get(sym.as_u32() as usize)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
            None => &[],
        }
    }

    /// Iterate over **all** elements of a document in document order by
    /// scanning the node table. This is the access path the Comp2 baseline
    /// is forced through (structural join against the full element list),
    /// which is why its cost is large but flat in Table 1.
    pub fn elements_of(&self, doc: DocId) -> impl Iterator<Item = NodeRef> + '_ {
        self.doc(doc)
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, rec)| rec.kind == NodeKind::Element)
            .map(move |(i, _)| NodeRef::new(doc, NodeIdx(i as u32)))
    }

    /// Serialize the subtree rooted at `node` back to XML (result
    /// rendering for query answers).
    pub fn subtree_xml(&self, node: NodeRef) -> String {
        use tix_xml::{Attribute, Writer};
        let mut writer = Writer::new();
        let doc = self.doc(node.doc);
        // Explicit close-stack over the region encoding.
        let mut open: Vec<(u32, String)> = Vec::new();
        for i in node.node.as_u32()..=doc.node(node.node).end {
            while open.last().is_some_and(|&(end, _)| i > end) {
                if let Some((_, tag)) = open.pop() {
                    writer.end_element(&tag);
                }
            }
            let idx = NodeIdx(i);
            let rec = doc.node(idx);
            match rec.kind() {
                NodeKind::Element => {
                    let tag = self.tags.resolve(rec.tag()).to_string();
                    let attrs: Vec<Attribute> = doc
                        .attributes(idx)
                        .map(|(sym, value)| Attribute {
                            name: self.attr_names.resolve(sym).to_string(),
                            value: value.to_string(),
                        })
                        .collect();
                    if rec.end() == idx {
                        writer.empty_element(&tag, &attrs);
                    } else {
                        writer.start_element(&tag, &attrs);
                        open.push((rec.end().as_u32(), tag));
                    }
                }
                NodeKind::Text => writer.text(doc.text(idx)),
            }
        }
        while let Some((_, tag)) = open.pop() {
            writer.end_element(&tag);
        }
        writer.finish()
    }

    /// Gather database-wide statistics (see [`StoreStats`]).
    pub fn stats(&self) -> StoreStats {
        StoreStats::gather(self)
    }

    pub(crate) fn docs(&self) -> &[Arc<DocData>] {
        &self.docs
    }

    /// Freeze the current document set as a copy-on-write epoch snapshot.
    ///
    /// This is O(documents) reference-count bumps plus two interner
    /// clones — no node table, text arena, or attribute data is copied —
    /// so a writer holding the database lock pays microseconds, not a
    /// full-store copy. The frozen epoch is immune to later mutations:
    /// an insert appends new `Arc`s to the live vec, and a remove (with
    /// its eager id-compaction) drops `Arc`s from the live vec, neither
    /// of which touches the clones captured here.
    pub fn freeze(&self) -> FrozenStore {
        FrozenStore {
            tags: self.tags.clone(),
            attr_names: self.attr_names.clone(),
            docs: self.docs.clone(),
        }
    }

    pub(crate) fn tags_interner(&self) -> &Interner {
        &self.tags
    }

    pub(crate) fn attr_names_interner(&self) -> &Interner {
        &self.attr_names
    }

    /// Rebuild a store from deserialized parts (snapshot loading): the
    /// name map and tag index are reconstructed from the node tables.
    /// Fails if two documents share a name or a tag symbol is out of
    /// range for the interner — snapshot bytes are untrusted input.
    pub(crate) fn from_parts(
        tags: Interner,
        attr_names: Interner,
        docs: Vec<DocData>,
    ) -> Result<Store, FromPartsError> {
        let mut store = Store {
            docs: Vec::new(),
            by_name: HashMap::new(),
            tags,
            attr_names,
            tag_elements: Vec::new(),
        };
        store.tag_elements.resize(store.tags.len(), Vec::new());
        for doc in docs {
            let id = DocId(store.docs.len() as u32);
            if store.by_name.insert(doc.name.clone(), id).is_some() {
                return Err(FromPartsError::DuplicateName(doc.name.clone()));
            }
            for (i, rec) in doc.nodes.iter().enumerate() {
                if rec.kind == NodeKind::Element {
                    store
                        .tag_elements
                        .get_mut(rec.tag.as_u32() as usize)
                        .ok_or(FromPartsError::TagOutOfRange)?
                        .push(NodeRef::new(id, NodeIdx(i as u32)));
                }
            }
            store.docs.push(Arc::new(doc));
        }
        Ok(store)
    }
}

/// A copy-on-write epoch snapshot of a [`Store`], captured by
/// [`Store::freeze`] while holding the database lock and consumed
/// **off-lock** by a checkpoint: document ids, node ids, and interner
/// symbols are exactly the live store's at freeze time, so a snapshot or
/// index built from the thawed store is byte-identical to one built from
/// the live store at that instant.
#[derive(Debug, Clone)]
pub struct FrozenStore {
    tags: Interner,
    attr_names: Interner,
    docs: Vec<Arc<DocData>>,
}

impl FrozenStore {
    /// Number of documents in the frozen epoch.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Reassemble a full [`Store`] (name map and tag index rebuilt) from
    /// the frozen epoch. Runs without any lock on the live store; the
    /// document data itself is shared, not copied.
    ///
    /// Unlike snapshot loading, the parts here are trusted by
    /// construction — they came out of a valid live store — so symbols
    /// cannot be out of range and names cannot collide.
    pub fn thaw(&self) -> Store {
        let mut store = Store {
            docs: self.docs.clone(),
            by_name: HashMap::new(),
            tags: self.tags.clone(),
            attr_names: self.attr_names.clone(),
            tag_elements: Vec::new(),
        };
        store.reindex();
        store
    }
}

/// Iterator over a node's ancestors. See [`Store::ancestors`].
pub struct Ancestors<'a> {
    store: &'a Store,
    next: Option<NodeRef>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeRef;

    fn next(&mut self) -> Option<NodeRef> {
        let node = self.next?;
        self.next = self.store.parent(node);
        Some(node)
    }
}

/// Iterator over a node's direct children. See [`Store::children`].
pub struct Children<'a> {
    store: &'a Store,
    doc: DocId,
    next: Option<u32>,
    last: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeRef;

    fn next(&mut self) -> Option<NodeRef> {
        let idx = self.next?;
        let node = NodeRef::new(self.doc, NodeIdx(idx));
        let end = self.store.doc(self.doc).node(NodeIdx(idx)).end;
        self.next = if end < self.last { Some(end + 1) } else { None };
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(xml: &str) -> (Store, DocId) {
        let mut store = Store::new();
        let doc = store.load_str("t.xml", xml).unwrap();
        (store, doc)
    }

    fn nref(doc: DocId, i: u32) -> NodeRef {
        NodeRef::new(doc, NodeIdx(i))
    }

    #[test]
    fn children_iteration_skips_subtrees() {
        // a=0, b=1, c=2, d=3, e=4 — a's children are b and d.
        let (store, doc) = store_with("<a><b><c/></b><d><e/></d></a>");
        let kids: Vec<_> = store
            .children(nref(doc, 0))
            .map(|n| store.tag_name(n).unwrap().to_string())
            .collect();
        assert_eq!(kids, ["b", "d"]);
    }

    #[test]
    fn leaf_has_no_children() {
        let (store, doc) = store_with("<a><b/></a>");
        assert_eq!(store.children(nref(doc, 1)).count(), 0);
    }

    #[test]
    fn ancestors_bottom_up() {
        let (store, doc) = store_with("<a><b><c/></b></a>");
        let ancs: Vec<_> = store
            .ancestors(nref(doc, 2))
            .map(|n| store.tag_name(n).unwrap().to_string())
            .collect();
        assert_eq!(ancs, ["b", "a"]);
    }

    #[test]
    fn is_ancestor_matches_region_encoding() {
        let (store, doc) = store_with("<a><b><c/></b><d/></a>");
        let a = nref(doc, 0);
        let b = nref(doc, 1);
        let c = nref(doc, 2);
        let d = nref(doc, 3);
        assert!(store.is_ancestor(a, b));
        assert!(store.is_ancestor(a, c));
        assert!(store.is_ancestor(b, c));
        assert!(store.is_ancestor(a, d));
        assert!(!store.is_ancestor(b, d));
        assert!(!store.is_ancestor(c, b));
        assert!(!store.is_ancestor(a, a)); // proper
        assert!(store.is_self_or_ancestor(a, a)); // ad*
    }

    #[test]
    fn cross_document_never_related() {
        let mut store = Store::new();
        let d1 = store.load_str("a.xml", "<a><b/></a>").unwrap();
        let d2 = store.load_str("b.xml", "<a><b/></a>").unwrap();
        assert!(!store.is_ancestor(nref(d1, 0), nref(d2, 1)));
    }

    #[test]
    fn tag_index_global_document_order() {
        let mut store = Store::new();
        let d1 = store.load_str("a.xml", "<a><p/><q/><p/></a>").unwrap();
        let d2 = store.load_str("b.xml", "<a><p/></a>").unwrap();
        let ps = store.elements_with_tag("p");
        assert_eq!(ps, &[nref(d1, 1), nref(d1, 3), nref(d2, 1)]);
        assert!(store.elements_with_tag("nosuch").is_empty());
    }

    #[test]
    fn child_count_index_vs_navigation_agree() {
        let (store, doc) = store_with("<a><b><c/><d/></b><e>t</e><f/></a>");
        for i in 0..store.doc(doc).len() as u32 {
            let n = nref(doc, i);
            assert_eq!(
                store.child_count(n),
                store.count_children_by_navigation(n),
                "node {i}"
            );
        }
        assert_eq!(store.child_count(nref(doc, 0)), 3);
    }

    #[test]
    fn text_content_is_alltext() {
        let (store, doc) = store_with("<a>x<b>y<c>z</c></b>w</a>");
        assert_eq!(store.text_content(nref(doc, 0)), "xyzw");
        assert_eq!(store.text_content(nref(doc, 2)), "yz");
    }

    #[test]
    fn doc_lookup_by_name() {
        let mut store = Store::new();
        let id = store.load_str("articles.xml", "<a/>").unwrap();
        assert_eq!(store.doc_by_name("articles.xml"), Some(id));
        assert_eq!(store.doc_by_name("other.xml"), None);
        assert!(matches!(
            store.load_str("articles.xml", "<b/>"),
            Err(LoadError::DuplicateName(_))
        ));
    }

    #[test]
    fn remove_document_renumbers_and_reindexes() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a><p/></a>").unwrap();
        store.load_str("b.xml", "<b><p/><p/></b>").unwrap();
        store.load_str("c.xml", "<a><p/></a>").unwrap();
        let removed = store.remove_document("b.xml").unwrap();
        assert_eq!(removed, DocId(1));
        assert_eq!(store.doc_count(), 2);
        // Later documents shift down: c.xml is now DocId(1).
        assert_eq!(store.doc_by_name("a.xml"), Some(DocId(0)));
        assert_eq!(store.doc_by_name("c.xml"), Some(DocId(1)));
        assert_eq!(store.doc_by_name("b.xml"), None);
        // Tag index reflects only the surviving documents, renumbered.
        assert_eq!(
            store.elements_with_tag("p"),
            &[nref(DocId(0), 1), nref(DocId(1), 1)]
        );
        // The name can be reused after removal.
        let reused = store.load_str("b.xml", "<b>back</b>").unwrap();
        assert_eq!(reused, DocId(2));
    }

    #[test]
    fn remove_document_unknown_name_is_typed() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a/>").unwrap();
        assert_eq!(
            store.remove_document("nope.xml"),
            Err(RemoveError::NotFound("nope.xml".to_string()))
        );
        assert_eq!(store.doc_count(), 1);
    }

    #[test]
    fn remove_last_document_leaves_empty_store() {
        let mut store = Store::new();
        store.load_str("only.xml", "<a><b/>text</a>").unwrap();
        store.remove_document("only.xml").unwrap();
        assert_eq!(store.doc_count(), 0);
        assert_eq!(store.node_count(), 0);
        assert!(store.elements_with_tag("a").is_empty());
        assert!(store.elements_with_tag("b").is_empty());
    }

    #[test]
    fn freeze_is_isolated_from_later_mutations() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a><p/></a>").unwrap();
        store.load_str("b.xml", "<b><p/><p/></b>").unwrap();
        let frozen = store.freeze();
        // Mutate the live store after the freeze: remove (with its eager
        // id-compaction) and insert must not leak into the epoch.
        store.remove_document("a.xml").unwrap();
        store.load_str("c.xml", "<c><p/></c>").unwrap();
        let thawed = frozen.thaw();
        assert_eq!(thawed.doc_count(), 2);
        assert_eq!(thawed.doc_by_name("a.xml"), Some(DocId(0)));
        assert_eq!(thawed.doc_by_name("b.xml"), Some(DocId(1)));
        assert_eq!(thawed.elements_with_tag("p").len(), 3);
        assert_eq!(thawed.doc_by_name("c.xml"), None);
        // And the live store moved on independently.
        assert_eq!(store.doc_by_name("a.xml"), None);
        assert_eq!(store.doc_by_name("c.xml"), Some(DocId(1)));
    }

    #[test]
    fn thawed_snapshot_is_byte_identical_to_freeze_time_store() {
        let mut store = Store::new();
        store
            .load_str("a.xml", "<a id=\"1\"><p>text</p></a>")
            .unwrap();
        store.load_str("b.xml", "<b><q/>tail</b>").unwrap();
        let mut at_freeze = Vec::new();
        store.save_snapshot(&mut at_freeze).unwrap();
        let frozen = store.freeze();
        store.load_str("c.xml", "<c/>").unwrap();
        let mut thawed_bytes = Vec::new();
        frozen.thaw().save_snapshot(&mut thawed_bytes).unwrap();
        assert_eq!(at_freeze, thawed_bytes);
    }

    #[test]
    fn attributes_via_store() {
        let (store, doc) = store_with(r#"<a id="1"><b id="2" class="x"/></a>"#);
        assert_eq!(store.attribute(nref(doc, 0), "id"), Some("1"));
        assert_eq!(store.attribute(nref(doc, 1), "class"), Some("x"));
        assert_eq!(store.attribute(nref(doc, 1), "missing"), None);
        let all: Vec<_> = store.attributes(nref(doc, 1)).collect();
        assert_eq!(all, vec![("id", "2"), ("class", "x")]);
    }

    #[test]
    fn elements_of_scans_in_order() {
        let (store, doc) = store_with("<a>t<b/>u<c/></a>");
        let elems: Vec<_> = store
            .elements_of(doc)
            .map(|n| store.tag_name(n).unwrap().to_string())
            .collect();
        assert_eq!(elems, ["a", "b", "c"]);
    }

    #[test]
    fn subtree_size() {
        let (store, doc) = store_with("<a><b><c/></b><d/></a>");
        assert_eq!(store.subtree_size(nref(doc, 0)), 4);
        assert_eq!(store.subtree_size(nref(doc, 1)), 2);
        assert_eq!(store.subtree_size(nref(doc, 3)), 1);
    }

    #[test]
    fn subtree_xml_roundtrip() {
        let (store, doc) = store_with(r#"<a x="1">hi<b><c/>there</b><d/></a>"#);
        assert_eq!(
            store.subtree_xml(nref(doc, 0)),
            r#"<a x="1">hi<b><c/>there</b><d/></a>"#
        );
        assert_eq!(store.subtree_xml(nref(doc, 2)), "<b><c/>there</b>");
        assert_eq!(store.subtree_xml(nref(doc, 3)), "<c/>");
    }

    #[test]
    fn descendants_or_self_order() {
        let (store, doc) = store_with("<a><b><c/></b><d/></a>");
        let order: Vec<_> = store
            .descendants_or_self(nref(doc, 1))
            .map(|n| n.node.as_u32())
            .collect();
        assert_eq!(order, [1, 2]);
    }
}
