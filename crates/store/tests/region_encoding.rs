//! Property tests for the region-encoding invariants the stack-based
//! algorithms in `tix-exec` depend on.

use proptest::prelude::*;
use tix_store::{NodeIdx, NodeRef, Store};

/// Generate a random small XML document as a string.
fn xml_strategy() -> impl Strategy<Value = String> {
    // A tree of elements from a tiny tag alphabet with occasional text.
    fn subtree(depth: u32) -> BoxedStrategy<String> {
        if depth == 0 {
            prop_oneof![Just(String::new()), "[a-z]{1,6}".prop_map(|t| t),].boxed()
        } else {
            prop::collection::vec(
                prop_oneof![
                    "[a-z]{1,6}".prop_map(|t| t),
                    ("[abcd]", subtree(depth - 1))
                        .prop_map(|(tag, inner)| format!("<{tag}>{inner}</{tag}>")),
                ],
                0..4,
            )
            .prop_map(|parts| parts.concat())
            .boxed()
        }
    }
    subtree(4).prop_map(|inner| format!("<root>{inner}</root>"))
}

proptest! {
    /// ancestor(a, d) from region encoding must equal ancestorship derived
    /// by walking parent pointers.
    #[test]
    fn containment_equals_parent_chain(xml in xml_strategy()) {
        let mut store = Store::new();
        let doc = store.load_str("p.xml", &xml).unwrap();
        let n = store.doc(doc).len() as u32;
        for a in 0..n {
            for d in 0..n {
                let a_ref = NodeRef::new(doc, NodeIdx(a));
                let d_ref = NodeRef::new(doc, NodeIdx(d));
                let by_region = store.is_ancestor(a_ref, d_ref);
                let by_chain = store.ancestors(d_ref).any(|x| x == a_ref);
                prop_assert_eq!(by_region, by_chain, "a={} d={}", a, d);
            }
        }
    }

    /// Children iteration must agree with the parent pointers, in order.
    #[test]
    fn children_match_parent_pointers(xml in xml_strategy()) {
        let mut store = Store::new();
        let doc = store.load_str("p.xml", &xml).unwrap();
        let n = store.doc(doc).len() as u32;
        for p in 0..n {
            let p_ref = NodeRef::new(doc, NodeIdx(p));
            let by_iter: Vec<NodeRef> = store.children(p_ref).collect();
            let by_parent: Vec<NodeRef> = (0..n)
                .map(|i| NodeRef::new(doc, NodeIdx(i)))
                .filter(|&c| store.parent(c) == Some(p_ref))
                .collect();
            prop_assert_eq!(by_iter, by_parent);
        }
    }

    /// The child-count index must always agree with real navigation.
    #[test]
    fn child_count_index_is_consistent(xml in xml_strategy()) {
        let mut store = Store::new();
        let doc = store.load_str("p.xml", &xml).unwrap();
        for i in 0..store.doc(doc).len() as u32 {
            let node = NodeRef::new(doc, NodeIdx(i));
            prop_assert_eq!(
                store.child_count(node),
                store.count_children_by_navigation(node)
            );
            prop_assert_eq!(store.child_count(node) as usize, store.children(node).count());
        }
    }

    /// Levels increase by exactly one along parent-child edges.
    #[test]
    fn levels_are_depths(xml in xml_strategy()) {
        let mut store = Store::new();
        let doc = store.load_str("p.xml", &xml).unwrap();
        for i in 1..store.doc(doc).len() as u32 {
            let node = NodeRef::new(doc, NodeIdx(i));
            let parent = store.parent(node).unwrap();
            prop_assert_eq!(store.level(node), store.level(parent) + 1);
        }
    }

    /// Subtree text equals the concatenation of descendant text nodes found
    /// by exhaustive scan.
    #[test]
    fn text_content_is_exhaustive(xml in xml_strategy()) {
        let mut store = Store::new();
        let doc = store.load_str("p.xml", &xml).unwrap();
        let n = store.doc(doc).len() as u32;
        for i in 0..n {
            let node = NodeRef::new(doc, NodeIdx(i));
            let expected: String = (0..n)
                .map(|j| NodeRef::new(doc, NodeIdx(j)))
                .filter(|&t| t == node || store.is_ancestor(node, t))
                .map(|t| store.text(t))
                .collect();
            prop_assert_eq!(store.text_content(node), expected);
        }
    }
}
