//! Fault-injection sweeps over the v2 store snapshot: every torn write
//! leaves the committed file intact, every single-bit flip is rejected
//! with a typed error (never loaded, never a panic, never an `Io` leak),
//! and interrupt storms / short writes are survived transparently.

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;

use tix_store::faultio::{CorruptingReader, FailingReader, FailingWriter};
use tix_store::persist::atomic_write;
use tix_store::{SnapshotError, Store};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tix-crash-store-{}-{name}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn store_a() -> Store {
    let mut store = Store::new();
    store
        .load_str(
            "a.xml",
            "<book id=\"1\"><title>xml db</title><chap><p>querying text</p></chap></book>",
        )
        .unwrap();
    store
        .load_str("b.xml", "<a><b>structured</b><c/></a>")
        .unwrap();
    store
}

fn store_b() -> Store {
    let mut store = Store::new();
    store
        .load_str(
            "c.xml",
            "<review><p>replacement corpus entirely</p></review>",
        )
        .unwrap();
    store
}

fn snapshot_bytes(store: &Store) -> Vec<u8> {
    let mut buf = Vec::new();
    store.save_snapshot(&mut buf).unwrap();
    buf
}

fn temp_litter(dir: &PathBuf) -> Vec<String> {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect()
}

/// The tentpole guarantee, proved byte by byte: there is **no** offset at
/// which a crashed overwrite corrupts or removes the previously committed
/// snapshot, and the crash leaves no temp-file litter behind.
#[test]
fn torn_write_sweep_preserves_committed_snapshot_at_every_offset() {
    let dir = tmp_dir("torn");
    let path = dir.join("corpus.tix");
    let committed = snapshot_bytes(&store_a());
    atomic_write::<io::Error, _>(&path, |w| w.write_all(&committed)).unwrap();
    let replacement = snapshot_bytes(&store_b());

    for limit in 0..replacement.len() {
        let torn = atomic_write::<io::Error, _>(&path, |w| {
            let mut failing = FailingWriter::fail_after(w, limit as u64);
            failing.write_all(&replacement)
        });
        assert!(
            torn.is_err(),
            "write crashed after {limit} bytes yet committed"
        );
        assert_eq!(
            fs::read(&path).unwrap(),
            committed,
            "crash after {limit} bytes damaged the committed snapshot"
        );
        let litter = temp_litter(&dir);
        assert!(
            litter.is_empty(),
            "crash after {limit} bytes left {litter:?}"
        );
    }
    // The committed file still loads as the original store.
    let loaded = Store::load_snapshot(fs::read(&path).unwrap().as_slice()).unwrap();
    assert_eq!(loaded.stats(), store_a().stats());

    // With no fault injected, the overwrite commits atomically.
    atomic_write::<io::Error, _>(&path, |w| w.write_all(&replacement)).unwrap();
    assert_eq!(fs::read(&path).unwrap(), replacement);
}

/// Classify a load error for the flip sweep: flips in the magic are
/// `BadMagic`, in the version byte `UnsupportedVersion`, and everywhere
/// else the checksums must catch them as `Corrupt` — never a clean load,
/// never `Io`, never a panic.
fn assert_flip_rejected(err: &SnapshotError, offset: usize, bit: u8) {
    match (offset, err) {
        (0..=6, SnapshotError::BadMagic) => {}
        (7, SnapshotError::UnsupportedVersion(_)) => {}
        (_, SnapshotError::Corrupt(_)) if offset > 7 => {}
        _ => panic!("flip at byte {offset} bit {bit} mis-classified: {err:?}"),
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let base = snapshot_bytes(&store_a());
    for offset in 0..base.len() {
        for bit in 0..8u8 {
            let mut flipped = base.clone();
            flipped[offset] ^= 1 << bit;
            let err = Store::load_snapshot(flipped.as_slice())
                .err()
                .unwrap_or_else(|| panic!("flip at byte {offset} bit {bit} loaded cleanly"));
            assert_flip_rejected(&err, offset, bit);
        }
    }
}

#[test]
fn corrupting_reader_flips_are_equally_rejected() {
    // The same guarantee through the fault-injection reader (streaming
    // corruption rather than a pre-flipped buffer), sampled across the
    // file: header, body, seal.
    let base = snapshot_bytes(&store_a());
    let offsets = [0, 7, 8, base.len() / 2, base.len() - 1];
    for &offset in &offsets {
        for bit in [0u8, 3, 7] {
            let reader = CorruptingReader::flip_bit(base.as_slice(), offset as u64, bit);
            let err = Store::load_snapshot(reader)
                .err()
                .unwrap_or_else(|| panic!("streamed flip at byte {offset} bit {bit} loaded"));
            assert_flip_rejected(&err, offset, bit);
        }
    }
}

#[test]
fn every_truncation_point_is_rejected() {
    let base = snapshot_bytes(&store_a());
    for cut in 0..base.len() {
        assert!(
            Store::load_snapshot(&base[..cut]).is_err(),
            "v2 prefix of {cut} bytes loaded successfully"
        );
    }
    // Trailing garbage after the seal is not the sealed image either.
    let mut extended = base.clone();
    extended.push(0);
    assert!(Store::load_snapshot(extended.as_slice()).is_err());
}

#[test]
fn interrupt_storms_and_short_io_are_survived() {
    let store = store_a();
    // Save through a writer that accepts one byte per call and raises
    // `Interrupted` on every other call: `write_all` retries through it,
    // so the snapshot must come out byte-identical.
    let mut stormy = Vec::new();
    store
        .save_snapshot(
            FailingWriter::unlimited(&mut stormy)
                .short()
                .interrupt_every(2),
        )
        .unwrap();
    assert_eq!(stormy, snapshot_bytes(&store));

    // Load through the read-side equivalent.
    let loaded = Store::load_snapshot(
        FailingReader::unlimited(stormy.as_slice())
            .short()
            .interrupt_every(3),
    )
    .unwrap();
    assert_eq!(loaded.stats(), store.stats());
}

#[test]
fn hard_read_failures_error_at_every_offset() {
    let base = snapshot_bytes(&store_a());
    for limit in 0..base.len() {
        let reader = FailingReader::fail_after(base.as_slice(), limit as u64);
        assert!(
            Store::load_snapshot(reader).is_err(),
            "read dying after {limit} bytes produced a store"
        );
    }
}
