//! Regression tests feeding truncated and garbage bytes to the store
//! snapshot loader: corruption must surface as `Err(SnapshotError)`, never
//! as a panic or a silently-wrong store.

use tix_store::{SnapshotError, Store};

fn sample_store() -> Store {
    let mut store = Store::new();
    store
        .load_str(
            "a.xml",
            "<book id=\"1\"><title>xml db</title><chap><p>querying text</p></chap></book>",
        )
        .unwrap();
    store
        .load_str("b.xml", "<a><b>structured</b><c/></a>")
        .unwrap();
    store
}

// These tests target the *structural* validation layer (region encoding,
// parent pointers, bounds), so they walk the flat v1 byte layout where
// every field sits at a computable offset. v2 shares the same per-document
// decoder, and its checksum layer has its own exhaustive sweeps in
// crash_safety.rs.
fn snapshot_bytes(store: &Store) -> Vec<u8> {
    let mut buf = Vec::new();
    store.save_snapshot_v1(&mut buf).unwrap();
    buf
}

/// Cursor for walking the snapshot layout up to the first node record.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_len_prefixed(&mut self) {
        let len = self.u32() as usize;
        self.skip(len);
    }

    fn skip_interner(&mut self) {
        let count = self.u32();
        for _ in 0..count {
            self.skip_len_prefixed();
        }
    }
}

/// Byte offset of the first document's first node record (its `end` field).
fn first_node_offset(buf: &[u8]) -> usize {
    let mut cur = Cur { buf, pos: 8 }; // magic + version
    cur.skip_interner(); // tags
    cur.skip_interner(); // attribute names
    let doc_count = cur.u32();
    assert!(doc_count >= 1);
    cur.skip_len_prefixed(); // document name
    let node_count = cur.u32();
    assert!(node_count >= 2);
    cur.pos
}

#[test]
fn every_truncation_point_is_rejected() {
    let buf = snapshot_bytes(&sample_store());
    for cut in 0..buf.len() {
        assert!(
            Store::load_snapshot(&buf[..cut]).is_err(),
            "prefix of {cut} bytes loaded successfully"
        );
    }
}

#[test]
fn garbage_region_bytes_rejected() {
    // Zero out the root node's `end` key: with more than one node in the
    // document the region encoding is no longer laminar.
    let mut buf = snapshot_bytes(&sample_store());
    let off = first_node_offset(&buf);
    buf[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
    let err = Store::load_snapshot(buf.as_slice()).unwrap_err();
    assert!(
        matches!(err, SnapshotError::Corrupt("malformed region encoding")),
        "{err}"
    );
}

#[test]
fn garbage_parent_pointer_rejected() {
    // Point the second node's parent outside the document.
    let mut buf = snapshot_bytes(&sample_store());
    let off = first_node_offset(&buf) + 19 + 4; // second record's `parent`
    buf[off..off + 4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    let err = Store::load_snapshot(buf.as_slice()).unwrap_err();
    assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
}

#[test]
fn byte_flips_never_panic() {
    // Flip every byte of the snapshot, one at a time. Most flips corrupt
    // something structural and must be rejected; a flip inside a text
    // arena merely changes content. Either way the loader must not panic.
    let base = snapshot_bytes(&sample_store());
    for i in 0..base.len() {
        let mut buf = base.clone();
        buf[i] ^= 0xFF;
        let _ = Store::load_snapshot(buf.as_slice());
    }
}

#[test]
fn random_garbage_after_header_is_rejected() {
    // A valid header followed by deterministic pseudo-random junk.
    let mut buf = snapshot_bytes(&sample_store());
    for (i, byte) in buf.iter_mut().enumerate().skip(8) {
        *byte = (i.wrapping_mul(167).wrapping_add(41) % 251) as u8;
    }
    assert!(Store::load_snapshot(buf.as_slice()).is_err());
}

#[test]
fn malformed_xml_is_an_error_not_a_panic() {
    let mut store = Store::new();
    for bad in [
        "<a><b></a>",       // mismatched close
        "<a>",              // truncated: unclosed element
        "<a attr=>x</a>",   // bad attribute syntax
        "text only",        // no root element
        "<a>&nosuch;</a>",  // unknown entity
        "<a><b>x</b>",      // truncated after child
        "\u{0}\u{1}\u{2}<", // binary garbage
        "",                 // empty input
    ] {
        assert!(store.load_str("bad.xml", bad).is_err(), "input {bad:?}");
    }
    // The failed loads left no partial documents behind.
    assert_eq!(store.doc_count(), 0);
}
