//! In-tree stand-in for the [criterion](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no route to a crates registry, so this crate
//! implements — dependency-free — the API subset the workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain warm-up + sample loop around `Instant`: it
//! reports mean / min / max per sample and does no statistical analysis,
//! HTML reports, or baseline comparison. Passing `--bench` style CLI
//! filters is accepted but ignored.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot delete benchmarked work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level handle; create via [`Criterion::default`].
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Parse CLI arguments. The real crate filters benchmarks here; this
    /// stand-in accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_bench(name, sample_size, measurement_time, warm_up_time, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration; from
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Record the per-iteration workload size for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark name, optionally `function/parameter` shaped.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just the parameter (for groups where the function is implied).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepts `&str`, `String`, or [`BenchmarkId`] as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-iteration workload size, reported as a rate alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, warm-up first, then `sample_size` timed samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the timed samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the measurement budget into sample_size samples and size
        // each sample so it runs a meaningful number of iterations.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        self.iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
        warm_up_time,
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples (closure never called iter)");
        return;
    }
    let iters = bencher.iters_per_sample.max(1);
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.3} Melem/s", n as f64 / mean / 1e6),
        Throughput::Bytes(n) => format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0)),
    });
    println!(
        "{label}: mean {}  [min {}  max {}]{}",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        rate.unwrap_or_default(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point: run each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("t");
        group
            .throughput(Throughput::Elements(10))
            .bench_function(BenchmarkId::new("sum", 10), |b| {
                b.iter(|| (0..10u64).sum::<u64>())
            });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-8), "25.0 ns");
    }
}
