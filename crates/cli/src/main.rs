//! `tix` — command-line interface to the TIX structured-text XML database.
//!
//! ```text
//! tix load   <snapshot> <file.xml>…      load XML files, write a snapshot
//! tix gen    <snapshot> [articles] [seed] generate a synthetic corpus
//! tix stats  <snapshot>                  corpus statistics
//! tix search <snapshot> <term>… [-k N] [-t THRESHOLD] [--threads N]
//!                                        TermJoin → Pick → top-k search
//! tix phrase <snapshot> <term> <term>… [--threads N]
//!                                        exact-phrase lookup (PhraseFinder)
//! tix query  <snapshot> <file|->         run an extended-XQuery query
//! tix explain <snapshot> <term>… [-k N] [-t THRESHOLD] [--min-score X]
//!             [--query <file|->]         costed plan choice for a search
//! tix ingest <dir> add <name> <file.xml> WAL-logged insert into a live directory
//! tix ingest <dir> remove <name>         WAL-logged removal from a live directory
//! tix checkpoint <dir>                   snapshot a live directory, truncate its WAL
//! tix serve  <snapshot|--live dir> [--addr A] [--workers N] [--queue N]
//!                       [--cache N] [--deadline-ms N] [--threads N]
//!                                        serve queries over HTTP
//! ```
//!
//! `ingest`, `checkpoint`, and `serve --live` operate on a *durable
//! ingestion directory* (see `tix-ingest`): mutations are write-ahead
//! logged and fsynced before they apply, recovery replays the log over
//! the last checkpoint, and a checkpoint rewrites the store+index
//! snapshots atomically then truncates the log.

use std::fs;
use std::io::Read;
use std::process::ExitCode;

use tix::corpus::{CorpusSpec, Generator, PlantSpec};
use tix::exec::pick::PickParams;
use tix::query::run_query;
use tix::store::Store;
use tix::Database;

mod commands {
    //! Command implementations, separated for testability.

    use super::*;

    /// Parse XML files and write a snapshot.
    pub fn load(snapshot: &str, files: &[String]) -> Result<String, String> {
        if files.is_empty() {
            return Err("load: at least one XML file required".into());
        }
        let mut store = Store::new();
        for path in files {
            let xml = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let name = std::path::Path::new(path)
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or(path);
            store
                .load_str(name, &xml)
                .map_err(|e| format!("cannot load {path}: {e}"))?;
        }
        write_snapshot(&store, snapshot)?;
        Ok(format!(
            "loaded {} → {snapshot}: {}",
            files.len(),
            store.stats()
        ))
    }

    /// Generate a synthetic corpus and write a snapshot.
    pub fn generate(snapshot: &str, articles: usize, seed: u64) -> Result<String, String> {
        let spec = CorpusSpec {
            articles,
            seed,
            ..CorpusSpec::default()
        };
        let generator = Generator::new(spec, PlantSpec::default()).map_err(|e| e.to_string())?;
        let mut store = Store::new();
        generator.load_into(&mut store).map_err(|e| e.to_string())?;
        write_snapshot(&store, snapshot)?;
        Ok(format!("generated → {snapshot}: {}", store.stats()))
    }

    /// Print corpus statistics.
    pub fn stats(snapshot: &str) -> Result<String, String> {
        let store = read_snapshot(snapshot)?;
        Ok(store.stats().to_string())
    }

    /// TermJoin → Pick → top-k search.
    pub fn search(
        snapshot: &str,
        terms: &[String],
        k: usize,
        threshold: f64,
        threads: Option<usize>,
    ) -> Result<String, String> {
        if terms.is_empty() {
            return Err("search: at least one term required".into());
        }
        let db = database(snapshot, threads)?;
        let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        let results = db.search(
            &term_refs,
            PickParams {
                relevance_threshold: threshold,
                fraction: 0.5,
            },
            k,
        );
        let mut out = format!("{} results\n", results.len());
        for (i, s) in results.iter().enumerate() {
            let tag = db.store().tag_name(s.node).unwrap_or("?");
            let doc = db.store().doc(s.node.doc).name();
            let text: String = db.store().text_content(s.node).chars().take(72).collect();
            out.push_str(&format!(
                "{:>3}. {:<8.2} <{tag}> in {doc}  {text}…\n",
                i + 1,
                s.score
            ));
        }
        Ok(out)
    }

    /// PhraseFinder lookup.
    pub fn phrase(
        snapshot: &str,
        terms: &[String],
        threads: Option<usize>,
    ) -> Result<String, String> {
        if terms.len() < 2 {
            return Err("phrase: at least two terms required".into());
        }
        let db = database(snapshot, threads)?;
        let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        let matches = db.find_phrase(&term_refs);
        let mut out = format!("{} text nodes contain the phrase\n", matches.len());
        for m in matches.iter().take(20) {
            let doc = db.store().doc(m.node.doc).name();
            out.push_str(&format!("  {}× in {doc} {}\n", m.score as u64, m.node));
        }
        if matches.len() > 20 {
            out.push_str(&format!("  … and {} more\n", matches.len() - 20));
        }
        Ok(out)
    }

    /// The planner's view of a search: gathered statistics, every costed
    /// candidate access method, and the chosen physical plan. With
    /// `--query` the text of an extended-XQuery file (or stdin with `-`)
    /// is lowered and explained instead of a term list.
    pub fn explain(
        snapshot: &str,
        terms: &[String],
        k: usize,
        threshold: f64,
        min_score: Option<f64>,
        query_source: Option<&str>,
    ) -> Result<String, String> {
        let db = database(snapshot, None)?;
        if let Some(source) = query_source {
            let text = if source == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| e.to_string())?;
                buf
            } else {
                fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?
            };
            return tix::query::explain_query(db.store(), db.index(), &text)
                .map_err(|e| format!("cannot explain query: {e}"));
        }
        if terms.is_empty() {
            return Err("explain: at least one term required (or --query <file|->)".into());
        }
        let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        Ok(db.explain(
            &term_refs,
            PickParams {
                relevance_threshold: threshold,
                fraction: 0.5,
            },
            k,
            min_score,
        ))
    }

    /// Run an extended-XQuery query from a file (or stdin with `-`).
    pub fn query(snapshot: &str, source: &str) -> Result<String, String> {
        let text = if source == "-" {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| e.to_string())?;
            buf
        } else {
            fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?
        };
        let store = read_snapshot(snapshot)?;
        let items = run_query(&store, &text).map_err(|e| e.to_string())?;
        let mut out = format!("{} results\n", items.len());
        for item in &items {
            out.push_str(&item.xml);
            out.push('\n');
        }
        Ok(out)
    }

    /// Serve queries over HTTP until the process is killed. `live` treats
    /// `path` as a durable ingestion directory (WAL replay on startup,
    /// `/documents` mutations enabled) instead of a read-only snapshot.
    pub fn serve(
        path: &str,
        live: bool,
        config: tix_server::ServerConfig,
    ) -> Result<String, String> {
        let server = if live {
            tix_server::Server::start_live(path, config).map_err(|e| e.to_string())?
        } else {
            let db = database(path, None)?;
            tix_server::Server::start(db, config).map_err(|e| e.to_string())?
        };
        // Print eagerly: `join` blocks for the lifetime of the server, and
        // callers (humans, the CI smoke job) need the ephemeral port now.
        println!("tix-server listening on http://{}", server.addr());
        server.join();
        Ok(String::new())
    }

    /// WAL-logged mutation of a durable ingestion directory: `add` inserts
    /// an XML file under a document name, `remove` deletes by name. Either
    /// way the record is fsynced to the log before it applies, and an
    /// oversized log is checkpointed away before the command returns.
    pub fn ingest(dir: &str, action: &str, rest: &[String]) -> Result<String, String> {
        let (mut ingest, mut db) =
            tix_ingest::Ingest::open(dir, tix_ingest::IngestOptions::default())
                .map_err(|e| format!("cannot open ingest dir {dir}: {e}"))?;
        let summary = match action {
            "add" => {
                let name = rest.first().ok_or("ingest add: document name required")?;
                let file = rest.get(1).ok_or("ingest add: XML file required")?;
                let xml =
                    fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
                let id = ingest
                    .insert_document(&mut db, name, &xml)
                    .map_err(|e| format!("cannot add {name}: {e}"))?;
                format!("added {name} as doc {} at lsn {}", id.0, ingest.last_lsn())
            }
            "remove" => {
                let name = rest
                    .first()
                    .ok_or("ingest remove: document name required")?;
                ingest
                    .remove_document(&mut db, name)
                    .map_err(|e| format!("cannot remove {name}: {e}"))?;
                format!("removed {name} at lsn {}", ingest.last_lsn())
            }
            other => return Err(format!("ingest: unknown action {other:?} (add|remove)")),
        };
        let checkpointed = ingest
            .maybe_checkpoint(&mut db)
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        let tail = match checkpointed {
            Some(seq) => format!("; checkpointed as seq {seq}"),
            None => format!("; wal {} bytes", ingest.wal_len()),
        };
        Ok(format!("{summary}{tail}: {}", db.store().stats()))
    }

    /// Force a checkpoint of a durable ingestion directory: write fresh
    /// store+index snapshots, commit the CHECKPOINT meta, truncate the WAL.
    pub fn checkpoint(dir: &str) -> Result<String, String> {
        let (mut ingest, mut db) =
            tix_ingest::Ingest::open(dir, tix_ingest::IngestOptions::default())
                .map_err(|e| format!("cannot open ingest dir {dir}: {e}"))?;
        let seq = ingest
            .checkpoint(&mut db)
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        Ok(format!(
            "checkpointed {dir} as seq {seq} at lsn {}: {}",
            ingest.last_lsn(),
            db.store().stats()
        ))
    }

    /// Open a snapshot plus its sidecar index (`<snapshot>.idx`), building
    /// and caching the index on first use. A corrupt or truncated sidecar
    /// is *recovered from* — the index is rebuilt from the store and the
    /// sidecar rewritten (atomically) — never a fatal error: the sidecar
    /// is a cache, and the store snapshot is the source of truth. `threads`
    /// overrides the default worker count (`TIX_THREADS` / machine
    /// parallelism) for the index build and all queries; results are
    /// identical either way.
    fn database(snapshot: &str, threads: Option<usize>) -> Result<Database, String> {
        let store = read_snapshot(snapshot)?;
        let mut db = Database::new();
        if let Some(threads) = threads {
            db.set_threads(threads);
        }
        *db.store_mut() = store;
        let idx_path = format!("{snapshot}.idx");
        if let Err(err) = db.load_index_from(&idx_path) {
            // A missing sidecar is the normal first run; anything else is
            // damage worth reporting before rebuilding over it.
            let missing = matches!(
                &err,
                tix::PersistError::Io(e) if e.kind() == std::io::ErrorKind::NotFound
            );
            if !missing {
                eprintln!("warning: {idx_path}: {err}; rebuilding index from the snapshot");
            }
            db.build_index();
            if let Err(err) = db.save_index_to(&idx_path) {
                // The database still works from the in-memory index; only
                // the cache for the next run could not be written.
                eprintln!("warning: cannot write {idx_path}: {err}");
            }
        }
        Ok(db)
    }

    fn read_snapshot(path: &str) -> Result<Store, String> {
        tix::persist::load_store(path).map_err(|e| format!("cannot open {path}: {e}"))
    }

    fn write_snapshot(store: &Store, path: &str) -> Result<(), String> {
        tix::persist::save_store(store, path).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

const USAGE: &str = "\
tix — IR-style querying of structured text in an XML database

usage:
  tix load   <snapshot> <file.xml>…       load XML files, write a snapshot
  tix gen    <snapshot> [articles] [seed] generate a synthetic corpus
  tix stats  <snapshot>                   corpus statistics
  tix search <snapshot> <term>… [-k N] [-t THRESHOLD] [--threads N]
  tix phrase <snapshot> <term> <term>… [--threads N]
  tix query  <snapshot> <file|->          run an extended-XQuery query
  tix explain <snapshot> <term>… [-k N] [-t THRESHOLD] [--min-score X]
              [--query <file|->]          show the costed plan choice
  tix ingest <dir> add <name> <file.xml>  WAL-logged insert into a live dir
  tix ingest <dir> remove <name>          WAL-logged removal from a live dir
  tix checkpoint <dir>                    snapshot a live dir, truncate WAL
  tix serve  <snapshot|--live dir> [--addr HOST:PORT] [--workers N]
             [--queue N] [--cache N] [--deadline-ms N] [--threads N]
                                          serve queries over HTTP

Query commands run document-partitioned over worker threads (--threads,
else TIX_THREADS, else all cores); results are identical at any count.
`serve` answers /search, /phrase, /search/batch, /query, /explain,
/health and /metrics with JSON; with --live it serves a durable ingestion directory
and also accepts POST /documents and DELETE /documents/{name}. See
README §Serving and §Live ingestion for the wire format.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let command = args.first().map(String::as_str).ok_or("no command")?;
    let rest = &args[1..];
    match command {
        "load" => {
            let snapshot = rest.first().ok_or("load: snapshot path required")?;
            commands::load(snapshot, &rest[1..])
        }
        "gen" => {
            let snapshot = rest.first().ok_or("gen: snapshot path required")?;
            let articles = rest
                .get(1)
                .map(|a| a.parse().map_err(|_| format!("bad article count {a:?}")))
                .transpose()?
                .unwrap_or(200);
            let seed = rest
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad seed {s:?}")))
                .transpose()?
                .unwrap_or(11);
            commands::generate(snapshot, articles, seed)
        }
        "stats" => {
            let snapshot = rest.first().ok_or("stats: snapshot path required")?;
            commands::stats(snapshot)
        }
        "search" => {
            let snapshot = rest.first().ok_or("search: snapshot path required")?;
            let mut terms = Vec::new();
            let mut k = 10usize;
            let mut threshold = 0.5f64;
            let mut threads = None;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "-k" => {
                        let v = it.next().ok_or("-k needs a value")?;
                        k = v.parse().map_err(|_| format!("bad -k value {v:?}"))?;
                    }
                    "-t" => {
                        let v = it.next().ok_or("-t needs a value")?;
                        threshold = v.parse().map_err(|_| format!("bad -t value {v:?}"))?;
                    }
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        threads = Some(
                            v.parse()
                                .map_err(|_| format!("bad --threads value {v:?}"))?,
                        );
                    }
                    term => terms.push(term.to_string()),
                }
            }
            commands::search(snapshot, &terms, k, threshold, threads)
        }
        "phrase" => {
            let snapshot = rest.first().ok_or("phrase: snapshot path required")?;
            let mut terms = Vec::new();
            let mut threads = None;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                if arg == "--threads" {
                    let v = it.next().ok_or("--threads needs a value")?;
                    threads = Some(
                        v.parse()
                            .map_err(|_| format!("bad --threads value {v:?}"))?,
                    );
                } else {
                    terms.push(arg.clone());
                }
            }
            commands::phrase(snapshot, &terms, threads)
        }
        "query" => {
            let snapshot = rest.first().ok_or("query: snapshot path required")?;
            let source = rest.get(1).ok_or("query: query file (or -) required")?;
            commands::query(snapshot, source)
        }
        "explain" => {
            let snapshot = rest.first().ok_or("explain: snapshot path required")?;
            let mut terms = Vec::new();
            let mut k = 10usize;
            let mut threshold = 0.5f64;
            let mut min_score = None;
            let mut query_source = None;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "-k" => {
                        let v = it.next().ok_or("-k needs a value")?;
                        k = v.parse().map_err(|_| format!("bad -k value {v:?}"))?;
                    }
                    "-t" => {
                        let v = it.next().ok_or("-t needs a value")?;
                        threshold = v.parse().map_err(|_| format!("bad -t value {v:?}"))?;
                    }
                    "--min-score" => {
                        let v = it.next().ok_or("--min-score needs a value")?;
                        min_score = Some(
                            v.parse::<f64>()
                                .map_err(|_| format!("bad --min-score value {v:?}"))?,
                        );
                    }
                    "--query" => {
                        query_source = Some(it.next().ok_or("--query needs a file (or -)")?);
                    }
                    term => terms.push(term.to_string()),
                }
            }
            commands::explain(
                snapshot,
                &terms,
                k,
                threshold,
                min_score,
                query_source.map(String::as_str),
            )
        }
        "ingest" => {
            let dir = rest.first().ok_or("ingest: directory required")?;
            let action = rest.get(1).ok_or("ingest: action required (add|remove)")?;
            commands::ingest(dir, action, &rest[2..])
        }
        "checkpoint" => {
            let dir = rest.first().ok_or("checkpoint: directory required")?;
            commands::checkpoint(dir)
        }
        "serve" => {
            let (path, live, config) = parse_serve_args(rest)?;
            commands::serve(&path, live, config)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parse `serve` arguments into a path (snapshot, or ingestion directory
/// with `--live`) and a [`ServerConfig`]. Split out from `dispatch` so
/// argument handling is testable without binding a socket.
fn parse_serve_args(rest: &[String]) -> Result<(String, bool, tix_server::ServerConfig), String> {
    let first = rest
        .first()
        .ok_or("serve: snapshot path (or --live <dir>) required")?;
    let (path, live, flags) = if first == "--live" {
        let dir = rest.get(1).ok_or("--live needs a directory")?.clone();
        (dir, true, &rest[2..])
    } else {
        (first.clone(), false, &rest[1..])
    };
    let mut config = tix_server::ServerConfig {
        // A CLI server should be reachable on a stable port by default;
        // tests and the smoke job override with --addr 127.0.0.1:0.
        addr: "127.0.0.1:7878".to_string(),
        ..tix_server::ServerConfig::default()
    };
    let mut it = flags.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr")?.clone(),
            "--workers" => {
                let v = value_of("--workers")?;
                config.workers = v
                    .parse()
                    .map_err(|_| format!("bad --workers value {v:?}"))?;
            }
            "--queue" => {
                let v = value_of("--queue")?;
                config.queue_capacity =
                    v.parse().map_err(|_| format!("bad --queue value {v:?}"))?;
            }
            "--cache" => {
                let v = value_of("--cache")?;
                config.cache_capacity =
                    v.parse().map_err(|_| format!("bad --cache value {v:?}"))?;
            }
            "--deadline-ms" => {
                let v = value_of("--deadline-ms")?;
                config.default_deadline_ms = v
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value {v:?}"))?;
            }
            "--threads" => {
                let v = value_of("--threads")?;
                config.request_threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
            }
            "--debug-endpoints" => config.debug_endpoints = true,
            other => return Err(format!("serve: unknown flag {other:?}")),
        }
    }
    Ok((path, live, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tix-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_load_stats_search() {
        let xml_path = tmp("sample.xml");
        fs::write(
            &xml_path,
            "<article><sec><p>rust database engines</p></sec><sec><p>other text</p></sec></article>",
        )
        .unwrap();
        let snap = tmp("sample.snap");
        let out = dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        assert!(out.contains("loaded 1"), "{out}");

        let stats = dispatch(&["stats".into(), snap.clone()]).unwrap();
        assert!(stats.contains("1 docs"), "{stats}");

        let found = dispatch(&[
            "search".into(),
            snap.clone(),
            "rust".into(),
            "-k".into(),
            "3".into(),
            "-t".into(),
            "0.5".into(),
        ])
        .unwrap();
        assert!(found.contains("results"), "{found}");
        assert!(found.contains("rust database"), "{found}");
    }

    #[test]
    fn gen_and_phrase() {
        let snap = tmp("gen.snap");
        let out = dispatch(&["gen".into(), snap.clone(), "4".into(), "7".into()]).unwrap();
        assert!(out.contains("4 docs"), "{out}");
        // Background bigrams exist somewhere; at minimum the command runs.
        let result = dispatch(&["phrase".into(), snap, "w0".into(), "w1".into()]).unwrap();
        assert!(result.contains("text nodes contain the phrase"), "{result}");
    }

    #[test]
    fn query_from_file() {
        let xml_path = tmp("qdoc.xml");
        fs::write(&xml_path, "<article><p>search engine design</p></article>").unwrap();
        let snap = tmp("qdoc.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        let query_path = tmp("q.tixql");
        fs::write(
            &query_path,
            r#"
            For $a in document("qdoc.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {})
            Sortby(score)
            Threshold $a/@score > 0.5
            "#,
        )
        .unwrap();
        let out = dispatch(&["query".into(), snap, query_path]).unwrap();
        assert!(out.contains("<result><score>"), "{out}");
    }

    #[test]
    fn explain_terms_and_query_modes() {
        let xml_path = tmp("explain.xml");
        fs::write(
            &xml_path,
            "<article><sec><p>rust planner costs</p></sec><sec><p>rust again</p></sec></article>",
        )
        .unwrap();
        let snap = tmp("explain.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();

        let out = dispatch(&[
            "explain".into(),
            snap.clone(),
            "rust".into(),
            "planner".into(),
            "-k".into(),
            "3".into(),
            "--min-score".into(),
            "1.5".into(),
        ])
        .unwrap();
        for needle in [
            "explain: term-search",
            "statistics:",
            "candidates:",
            "chosen:",
            "threshold: score > 1.5",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in {out}");
        }

        let query_path = tmp("explain.tixql");
        fs::write(
            &query_path,
            r#"
            For $a in document("explain.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"rust"}, {})
            Sortby(score)
            Threshold $a/@score > 0.5 stop after 2
            "#,
        )
        .unwrap();
        let out =
            dispatch(&["explain".into(), snap.clone(), "--query".into(), query_path]).unwrap();
        assert!(out.contains("chosen:"), "{out}");
        assert!(out.contains("k=2"), "{out}");

        // Errors: no terms, bad flag values, unparseable query text.
        assert!(dispatch(&["explain".into(), snap.clone()]).is_err());
        assert!(dispatch(&[
            "explain".into(),
            snap.clone(),
            "rust".into(),
            "--min-score".into(),
            "high".into(),
        ])
        .is_err());
        let bad_query = tmp("explain-bad.tixql");
        fs::write(&bad_query, "For broken $").unwrap();
        let err = dispatch(&["explain".into(), snap, "--query".into(), bad_query]).unwrap_err();
        assert!(err.contains("cannot explain query"), "{err}");
    }

    #[test]
    fn threads_flag_does_not_change_results() {
        let xml_path = tmp("threaded.xml");
        fs::write(
            &xml_path,
            "<article><sec><p>parallel rust engine</p></sec><sec><p>rust again</p></sec></article>",
        )
        .unwrap();
        let snap = tmp("threaded.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        let base = dispatch(&["search".into(), snap.clone(), "rust".into()]).unwrap();
        for threads in ["1", "2", "8"] {
            let out = dispatch(&[
                "search".into(),
                snap.clone(),
                "rust".into(),
                "--threads".into(),
                threads.into(),
            ])
            .unwrap();
            assert_eq!(out, base, "--threads {threads}");
        }
        let phrase_base = dispatch(&[
            "phrase".into(),
            snap.clone(),
            "parallel".into(),
            "rust".into(),
        ])
        .unwrap();
        let phrase_par = dispatch(&[
            "phrase".into(),
            snap,
            "parallel".into(),
            "rust".into(),
            "--threads".into(),
            "4".into(),
        ])
        .unwrap();
        assert_eq!(phrase_par, phrase_base);
        assert!(dispatch(&["search".into(), "x".into(), "--threads".into()]).is_err());
    }

    #[test]
    fn corrupt_index_sidecar_recovers_and_repairs() {
        let xml_path = tmp("sidecar.xml");
        fs::write(
            &xml_path,
            "<article><p>resilient rust database</p></article>",
        )
        .unwrap();
        let snap = tmp("sidecar.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        let search = || dispatch(&["search".into(), snap.clone(), "rust".into()]);
        let expected = search().unwrap();
        let idx_path = format!("{snap}.idx");
        assert!(
            fs::metadata(&idx_path).is_ok(),
            "first search caches the sidecar"
        );

        // Bit-flipped, truncated, and garbage sidecars must all be
        // recovered from — same results, not an error — and the sidecar
        // must come back valid.
        let good = fs::read(&idx_path).unwrap();
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x04;
        for bad in [flipped, good[..good.len() / 3].to_vec(), b"junk".to_vec()] {
            fs::write(&idx_path, &bad).unwrap();
            assert_eq!(search().unwrap(), expected);
            assert_eq!(
                fs::read(&idx_path).unwrap(),
                good,
                "sidecar repaired to a byte-identical snapshot"
            );
        }
    }

    #[test]
    fn unwritable_sidecar_is_not_fatal() {
        // Point the snapshot into a directory that exists but where the
        // sidecar path is itself a directory, so the rewrite always fails;
        // the search must still answer from the in-memory index.
        let xml_path = tmp("nosidecar.xml");
        fs::write(&xml_path, "<article><p>memory only rust</p></article>").unwrap();
        let snap = tmp("nosidecar.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        fs::create_dir_all(format!("{snap}.idx")).unwrap();
        let out = dispatch(&["search".into(), snap, "rust".into()]).unwrap();
        assert!(out.contains("results"), "{out}");
    }

    #[test]
    fn ingest_add_remove_checkpoint_cycle() {
        let dir = tmp("live-cycle");
        // A stale directory from a previous run would change doc counts.
        let _ = fs::remove_dir_all(&dir);
        let xml_path = tmp("live-doc.xml");
        fs::write(&xml_path, "<article><p>ingested rust text</p></article>").unwrap();

        let out = dispatch(&[
            "ingest".into(),
            dir.clone(),
            "add".into(),
            "live.xml".into(),
            xml_path.clone(),
        ])
        .unwrap();
        assert!(out.contains("added live.xml as doc 0 at lsn 1"), "{out}");
        assert!(out.contains("1 docs"), "{out}");

        // The mutation is WAL-only so far: a reopen (fresh process in real
        // use) replays it, and a duplicate insert is a typed error.
        let dup = dispatch(&[
            "ingest".into(),
            dir.clone(),
            "add".into(),
            "live.xml".into(),
            xml_path,
        ])
        .unwrap_err();
        assert!(dup.contains("already loaded"), "{dup}");

        let ckpt = dispatch(&["checkpoint".into(), dir.clone()]).unwrap();
        assert!(ckpt.contains("seq 1 at lsn 1"), "{ckpt}");
        assert!(
            fs::metadata(std::path::Path::new(&dir).join("store.1.tixsnap")).is_ok(),
            "checkpoint wrote a store snapshot"
        );

        let out = dispatch(&[
            "ingest".into(),
            dir.clone(),
            "remove".into(),
            "live.xml".into(),
        ])
        .unwrap();
        assert!(out.contains("removed live.xml at lsn 2"), "{out}");
        assert!(out.contains("0 docs"), "{out}");

        let gone =
            dispatch(&["ingest".into(), dir, "remove".into(), "live.xml".into()]).unwrap_err();
        assert!(gone.contains("no document named"), "{gone}");
    }

    #[test]
    fn ingest_arg_errors() {
        let dir = tmp("live-errors");
        let _ = fs::remove_dir_all(&dir);
        assert!(dispatch(&["ingest".into()]).is_err());
        assert!(dispatch(&["ingest".into(), dir.clone()]).is_err());
        let unknown = dispatch(&["ingest".into(), dir.clone(), "upsert".into()]).unwrap_err();
        assert!(unknown.contains("unknown action"), "{unknown}");
        assert!(dispatch(&["ingest".into(), dir.clone(), "add".into(), "a.xml".into()]).is_err());
        let unreadable = dispatch(&[
            "ingest".into(),
            dir,
            "add".into(),
            "a.xml".into(),
            "/nonexistent/a.xml".into(),
        ])
        .unwrap_err();
        assert!(unreadable.contains("cannot read"), "{unreadable}");
        assert!(dispatch(&["checkpoint".into()]).is_err());
    }

    #[test]
    fn errors_reported() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&["frobnicate".into()]).is_err());
        assert!(dispatch(&["stats".into(), "/nonexistent/x.snap".into()]).is_err());
        assert!(dispatch(&["search".into(), "/nonexistent/x.snap".into(), "t".into()]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = dispatch(&["help".into()]).unwrap();
        assert!(out.contains("usage:"));
        assert!(out.contains("serve"));
    }

    #[test]
    fn serve_args_parse_into_config() {
        let args: Vec<String> = [
            "snap.bin",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--queue",
            "32",
            "--cache",
            "100",
            "--deadline-ms",
            "250",
            "--threads",
            "2",
            "--debug-endpoints",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (snapshot, live, config) = parse_serve_args(&args).unwrap();
        assert_eq!(snapshot, "snap.bin");
        assert!(!live);
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.workers, 8);
        assert_eq!(config.queue_capacity, 32);
        assert_eq!(config.cache_capacity, 100);
        assert_eq!(config.default_deadline_ms, 250);
        assert_eq!(config.request_threads, 2);
        assert!(config.debug_endpoints);
    }

    #[test]
    fn serve_live_flag_selects_ingest_directory() {
        let args: Vec<String> = ["--live", "/data/live", "--addr", "127.0.0.1:0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (path, live, config) = parse_serve_args(&args).unwrap();
        assert_eq!(path, "/data/live");
        assert!(live);
        assert_eq!(config.addr, "127.0.0.1:0");
        let missing: Vec<String> = vec!["--live".into()];
        assert!(parse_serve_args(&missing)
            .unwrap_err()
            .contains("needs a directory"));
    }

    #[test]
    fn serve_arg_errors() {
        assert!(parse_serve_args(&[]).is_err());
        let bad = |args: &[&str]| {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_serve_args(&owned).unwrap_err()
        };
        assert!(bad(&["s", "--workers"]).contains("needs a value"));
        assert!(bad(&["s", "--workers", "many"]).contains("bad --workers"));
        assert!(bad(&["s", "--deadline-ms", "-1"]).contains("bad --deadline-ms"));
        assert!(bad(&["s", "--frobnicate"]).contains("unknown flag"));
        // Serving a missing snapshot fails cleanly through dispatch.
        assert!(dispatch(&["serve".into(), "/nonexistent/x.snap".into()]).is_err());
    }
}
