//! `tix` — command-line interface to the TIX structured-text XML database.
//!
//! ```text
//! tix load   <snapshot> <file.xml>…      load XML files, write a snapshot
//! tix gen    <snapshot> [articles] [seed] generate a synthetic corpus
//! tix stats  <snapshot>                  corpus statistics
//! tix search <snapshot> <term>… [-k N] [-t THRESHOLD] [--threads N]
//!                                        TermJoin → Pick → top-k search
//! tix phrase <snapshot> <term> <term>… [--threads N]
//!                                        exact-phrase lookup (PhraseFinder)
//! tix query  <snapshot> <file|->         run an extended-XQuery query
//! tix explain <snapshot> <term>… [-k N] [-t THRESHOLD] [--min-score X]
//!             [--query <file|->]         costed plan choice for a search
//! tix ingest <dir> add <name> <file.xml> WAL-logged insert into a live directory
//! tix ingest <dir> remove <name>         WAL-logged removal from a live directory
//! tix checkpoint <dir>                   snapshot a live directory, truncate its WAL
//! tix serve  <snapshot|--live dir> [--addr A] [--workers N] [--queue N]
//!                       [--cache N] [--deadline-ms N] [--threads N]
//!                                        serve queries over HTTP
//! tix cluster init   <dir> [--shards N] [--replicas M] [--base-port P]
//!                                        write a cluster.json topology
//! tix cluster serve  <dir> [--node S:primary|S:replica:R]
//!                          [--coordinator] [--addr A] [--workers N]
//!                                        serve one node, the coordinator,
//!                                        or (no flags) the whole cluster
//! tix cluster status <dir>               poll every node's /health
//! ```
//!
//! `ingest`, `checkpoint`, and `serve --live` operate on a *durable
//! ingestion directory* (see `tix-ingest`): mutations are write-ahead
//! logged and fsynced before they apply, recovery replays the log over
//! the last checkpoint, and a checkpoint rewrites the store+index
//! snapshots atomically then truncates the log.

use std::fs;
use std::io::Read;
use std::process::ExitCode;

use tix::corpus::{CorpusSpec, Generator, PlantSpec};
use tix::exec::pick::PickParams;
use tix::query::run_query;
use tix::store::Store;
use tix::Database;

mod commands {
    //! Command implementations, separated for testability.

    use super::*;

    /// Parse XML files and write a snapshot.
    pub fn load(snapshot: &str, files: &[String]) -> Result<String, String> {
        if files.is_empty() {
            return Err("load: at least one XML file required".into());
        }
        let mut store = Store::new();
        for path in files {
            let xml = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let name = std::path::Path::new(path)
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or(path);
            store
                .load_str(name, &xml)
                .map_err(|e| format!("cannot load {path}: {e}"))?;
        }
        write_snapshot(&store, snapshot)?;
        Ok(format!(
            "loaded {} → {snapshot}: {}",
            files.len(),
            store.stats()
        ))
    }

    /// Generate a synthetic corpus and write a snapshot.
    pub fn generate(snapshot: &str, articles: usize, seed: u64) -> Result<String, String> {
        let spec = CorpusSpec {
            articles,
            seed,
            ..CorpusSpec::default()
        };
        let generator = Generator::new(spec, PlantSpec::default()).map_err(|e| e.to_string())?;
        let mut store = Store::new();
        generator.load_into(&mut store).map_err(|e| e.to_string())?;
        write_snapshot(&store, snapshot)?;
        Ok(format!("generated → {snapshot}: {}", store.stats()))
    }

    /// Print corpus statistics.
    pub fn stats(snapshot: &str) -> Result<String, String> {
        let store = read_snapshot(snapshot)?;
        Ok(store.stats().to_string())
    }

    /// TermJoin → Pick → top-k search.
    pub fn search(
        snapshot: &str,
        terms: &[String],
        k: usize,
        threshold: f64,
        threads: Option<usize>,
    ) -> Result<String, String> {
        if terms.is_empty() {
            return Err("search: at least one term required".into());
        }
        let db = database(snapshot, threads)?;
        let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        let results = db.search(
            &term_refs,
            PickParams {
                relevance_threshold: threshold,
                fraction: 0.5,
            },
            k,
        );
        let mut out = format!("{} results\n", results.len());
        for (i, s) in results.iter().enumerate() {
            let tag = db.store().tag_name(s.node).unwrap_or("?");
            let doc = db.store().doc(s.node.doc).name();
            let text: String = db.store().text_content(s.node).chars().take(72).collect();
            out.push_str(&format!(
                "{:>3}. {:<8.2} <{tag}> in {doc}  {text}…\n",
                i + 1,
                s.score
            ));
        }
        Ok(out)
    }

    /// PhraseFinder lookup.
    pub fn phrase(
        snapshot: &str,
        terms: &[String],
        threads: Option<usize>,
    ) -> Result<String, String> {
        if terms.len() < 2 {
            return Err("phrase: at least two terms required".into());
        }
        let db = database(snapshot, threads)?;
        let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        let matches = db.find_phrase(&term_refs);
        let mut out = format!("{} text nodes contain the phrase\n", matches.len());
        for m in matches.iter().take(20) {
            let doc = db.store().doc(m.node.doc).name();
            out.push_str(&format!("  {}× in {doc} {}\n", m.score as u64, m.node));
        }
        if matches.len() > 20 {
            out.push_str(&format!("  … and {} more\n", matches.len() - 20));
        }
        Ok(out)
    }

    /// The planner's view of a search: gathered statistics, every costed
    /// candidate access method, and the chosen physical plan. With
    /// `--query` the text of an extended-XQuery file (or stdin with `-`)
    /// is lowered and explained instead of a term list.
    pub fn explain(
        snapshot: &str,
        terms: &[String],
        k: usize,
        threshold: f64,
        min_score: Option<f64>,
        query_source: Option<&str>,
    ) -> Result<String, String> {
        let db = database(snapshot, None)?;
        if let Some(source) = query_source {
            let text = if source == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| e.to_string())?;
                buf
            } else {
                fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?
            };
            return tix::query::explain_query(db.store(), db.index(), &text)
                .map_err(|e| format!("cannot explain query: {e}"));
        }
        if terms.is_empty() {
            return Err("explain: at least one term required (or --query <file|->)".into());
        }
        let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        Ok(db.explain(
            &term_refs,
            PickParams {
                relevance_threshold: threshold,
                fraction: 0.5,
            },
            k,
            min_score,
        ))
    }

    /// Run an extended-XQuery query from a file (or stdin with `-`).
    pub fn query(snapshot: &str, source: &str) -> Result<String, String> {
        let text = if source == "-" {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| e.to_string())?;
            buf
        } else {
            fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?
        };
        let store = read_snapshot(snapshot)?;
        let items = run_query(&store, &text).map_err(|e| e.to_string())?;
        let mut out = format!("{} results\n", items.len());
        for item in &items {
            out.push_str(&item.xml);
            out.push('\n');
        }
        Ok(out)
    }

    /// Serve queries over HTTP until the process is killed. `live` treats
    /// `path` as a durable ingestion directory (WAL replay on startup,
    /// `/documents` mutations enabled) instead of a read-only snapshot.
    pub fn serve(
        path: &str,
        live: bool,
        config: tix_server::ServerConfig,
    ) -> Result<String, String> {
        let server = if live {
            tix_server::Server::start_live(path, config).map_err(|e| e.to_string())?
        } else {
            let db = database(path, None)?;
            tix_server::Server::start(db, config).map_err(|e| e.to_string())?
        };
        // Print eagerly: `join` blocks for the lifetime of the server, and
        // callers (humans, the CI smoke job) need the ephemeral port now.
        println!("tix-server listening on http://{}", server.addr());
        server.join();
        Ok(String::new())
    }

    /// WAL-logged mutation of a durable ingestion directory: `add` inserts
    /// an XML file under a document name, `remove` deletes by name. Either
    /// way the record is fsynced to the log before it applies, and an
    /// oversized log is checkpointed away before the command returns.
    pub fn ingest(dir: &str, action: &str, rest: &[String]) -> Result<String, String> {
        let (ingest, mut db) = tix_ingest::Ingest::open(dir, tix_ingest::IngestOptions::default())
            .map_err(|e| format!("cannot open ingest dir {dir}: {e}"))?;
        let summary = match action {
            "add" => {
                let name = rest.first().ok_or("ingest add: document name required")?;
                let file = rest.get(1).ok_or("ingest add: XML file required")?;
                let xml =
                    fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
                let id = ingest
                    .insert_document(&mut db, name, &xml)
                    .map_err(|e| format!("cannot add {name}: {e}"))?;
                format!("added {name} as doc {} at lsn {}", id.0, ingest.last_lsn())
            }
            "remove" => {
                let name = rest
                    .first()
                    .ok_or("ingest remove: document name required")?;
                ingest
                    .remove_document(&mut db, name)
                    .map_err(|e| format!("cannot remove {name}: {e}"))?;
                format!("removed {name} at lsn {}", ingest.last_lsn())
            }
            other => return Err(format!("ingest: unknown action {other:?} (add|remove)")),
        };
        let checkpointed = ingest
            .maybe_checkpoint(&mut db)
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        let tail = match checkpointed {
            Some(seq) => format!("; checkpointed as seq {seq}"),
            None => format!("; wal {} bytes", ingest.wal_len()),
        };
        Ok(format!("{summary}{tail}: {}", db.store().stats()))
    }

    /// Force a checkpoint of a durable ingestion directory: write fresh
    /// store+index snapshots, commit the CHECKPOINT meta, truncate the WAL.
    pub fn checkpoint(dir: &str) -> Result<String, String> {
        let (ingest, mut db) = tix_ingest::Ingest::open(dir, tix_ingest::IngestOptions::default())
            .map_err(|e| format!("cannot open ingest dir {dir}: {e}"))?;
        let seq = ingest
            .checkpoint(&mut db)
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        Ok(format!(
            "checkpointed {dir} as seq {seq} at lsn {}: {}",
            ingest.last_lsn(),
            db.store().stats()
        ))
    }

    /// Write a `cluster.json` topology: `shards` primaries with
    /// `replicas` followers each, on consecutive loopback ports starting
    /// at `base_port` (primary first, then its replicas, shard by shard).
    pub fn cluster_init(
        dir: &str,
        shards: usize,
        replicas: usize,
        base_port: u16,
    ) -> Result<String, String> {
        let shards = shards.max(1);
        let mut port = base_port;
        let mut next = || -> Result<String, String> {
            let addr = format!("127.0.0.1:{port}");
            port = port
                .checked_add(1)
                .ok_or_else(|| format!("port range overflows past {port}"))?;
            Ok(addr)
        };
        let mut map = Vec::with_capacity(shards);
        for _ in 0..shards {
            let primary = next()?;
            let mut reps = Vec::with_capacity(replicas);
            for _ in 0..replicas {
                reps.push(next()?);
            }
            map.push(tix_cluster::ShardTopology {
                primary,
                replicas: reps,
            });
        }
        let topology = tix_cluster::Topology { shards: map };
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        topology.save(dir).map_err(|e| e.to_string())?;
        Ok(format!(
            "initialized {dir}: {shards} shard(s) × {replicas} replica(s) on ports {base_port}..{port}; topology in {dir}/{}",
            tix_cluster::TOPOLOGY_FILE
        ))
    }

    /// Serve from a cluster directory. With `--node S:primary` or
    /// `--node S:replica:R` this process becomes that one node (data
    /// under `dir/shard-S/...`, address from the topology); with
    /// `--coordinator` it becomes the scatter-gather front end; with
    /// neither, every node plus a coordinator runs in this process — the
    /// single-machine quickstart.
    pub fn cluster_serve(
        dir: &str,
        node: Option<&str>,
        coordinator: bool,
        addr: Option<&str>,
        workers: Option<usize>,
        durability: Option<tix_ingest::DurabilityMode>,
    ) -> Result<String, String> {
        let topology = tix_cluster::Topology::load(dir).map_err(|e| e.to_string())?;
        let config_for = |listen: &str| {
            let mut config = tix_server::ServerConfig {
                addr: listen.to_string(),
                ..tix_server::ServerConfig::default()
            };
            if let Some(workers) = workers {
                config.workers = workers;
            }
            if let Some(durability) = durability {
                config.durability = durability;
            }
            config
        };
        if coordinator {
            let mut config = tix_cluster::CoordinatorConfig {
                addr: addr.unwrap_or("127.0.0.1:7979").to_string(),
                ..Default::default()
            };
            if let Some(workers) = workers {
                config.workers = workers;
            }
            let front =
                tix_cluster::Coordinator::start(topology, config).map_err(|e| e.to_string())?;
            println!(
                "tix-cluster coordinator listening on http://{}",
                front.addr()
            );
            front.join();
            return Ok(String::new());
        }
        if let Some(spec) = node {
            let (shard, role) = parse_node_spec(spec, topology.shard_count())?;
            let base = std::path::Path::new(dir).join(format!("shard-{shard}"));
            let group = &topology.shards[shard];
            let server = match role {
                NodeRole::Primary => tix_server::Server::start_primary(
                    base.join("primary"),
                    config_for(&group.primary),
                )
                .map_err(|e| e.to_string())?,
                NodeRole::Replica(r) => {
                    let listen = group.replicas.get(r).ok_or_else(|| {
                        format!(
                            "shard {shard} has {} replica(s), no index {r}",
                            group.replicas.len()
                        )
                    })?;
                    tix_server::Server::start_follower(
                        base.join(format!("replica-{r}")),
                        Some(group.primary.clone()),
                        config_for(listen),
                    )
                    .map_err(|e| e.to_string())?
                }
            };
            println!(
                "tix-cluster node {spec} listening on http://{} (data under {})",
                server.addr(),
                base.display()
            );
            server.join();
            return Ok(String::new());
        }
        // Whole cluster in one process: every node on its topology
        // address, coordinator in the foreground.
        let mut servers = Vec::new();
        for (shard, group) in topology.shards.iter().enumerate() {
            let base = std::path::Path::new(dir).join(format!("shard-{shard}"));
            let primary =
                tix_server::Server::start_primary(base.join("primary"), config_for(&group.primary))
                    .map_err(|e| format!("shard {shard} primary: {e}"))?;
            println!("shard {shard} primary on http://{}", primary.addr());
            servers.push(primary);
            for (r, listen) in group.replicas.iter().enumerate() {
                let replica = tix_server::Server::start_follower(
                    base.join(format!("replica-{r}")),
                    Some(group.primary.clone()),
                    config_for(listen),
                )
                .map_err(|e| format!("shard {shard} replica {r}: {e}"))?;
                println!("shard {shard} replica {r} on http://{}", replica.addr());
                servers.push(replica);
            }
        }
        let config = tix_cluster::CoordinatorConfig {
            addr: addr.unwrap_or("127.0.0.1:7979").to_string(),
            ..Default::default()
        };
        let front = tix_cluster::Coordinator::start(topology, config).map_err(|e| e.to_string())?;
        println!(
            "tix-cluster coordinator listening on http://{}",
            front.addr()
        );
        front.join();
        for server in servers {
            server.shutdown();
        }
        Ok(String::new())
    }

    /// Poll `/health` on every node in the topology and render a table.
    /// Unreachable nodes are reported, not errors — that is what status
    /// is for.
    pub fn cluster_status(dir: &str) -> Result<String, String> {
        let topology = tix_cluster::Topology::load(dir).map_err(|e| e.to_string())?;
        let timeout = std::time::Duration::from_secs(2);
        let mut out = format!(
            "{} shard(s), {} node(s)\n{:<6} {:<9} {:<21} {:<6} {:>6} {:>11} {:>11} {:>5} {:<10} {:<5}\n",
            topology.shard_count(),
            topology.all_nodes().len(),
            "shard",
            "role",
            "addr",
            "state",
            "docs",
            "applied_lsn",
            "durable_lsn",
            "ckpt",
            "durability",
            "ckpt-health"
        );
        let mut down = 0usize;
        let mut degraded_nodes = 0usize;
        for (shard, addr, is_primary) in topology.all_nodes() {
            let role = if is_primary { "primary" } else { "replica" };
            match tix_cluster::client::get(addr, "/health", timeout) {
                Ok(r) if r.status == 200 => {
                    let doc = r.json().unwrap_or(tix_cluster::Json::Null);
                    let field = |k: &str| {
                        doc.get(k)
                            .and_then(tix_cluster::Json::u64)
                            .map_or_else(|| "?".to_string(), |v| v.to_string())
                    };
                    let durability = doc
                        .get("durability")
                        .and_then(tix_cluster::Json::str)
                        .unwrap_or("?")
                        .to_string();
                    let ckpt_degraded = matches!(
                        doc.get("checkpoint_degraded"),
                        Some(tix_cluster::Json::Bool(true))
                    );
                    if ckpt_degraded {
                        degraded_nodes += 1;
                    }
                    out.push_str(&format!(
                        "{shard:<6} {role:<9} {addr:<21} {:<6} {:>6} {:>11} {:>11} {:>5} {:<10} {:<5}\n",
                        "up",
                        field("docs"),
                        field("applied_lsn"),
                        field("durable_lsn"),
                        field("checkpoint_seq"),
                        durability,
                        if ckpt_degraded { "DEGRADED" } else { "ok" }
                    ));
                }
                Ok(r) => {
                    down += 1;
                    out.push_str(&format!(
                        "{shard:<6} {role:<9} {addr:<21} {:<6} (status {})\n",
                        "odd", r.status
                    ));
                }
                Err(_) => {
                    down += 1;
                    out.push_str(&format!("{shard:<6} {role:<9} {addr:<21} {:<6}\n", "down"));
                }
            }
        }
        out.push_str(if down == 0 && degraded_nodes == 0 {
            "cluster: ok\n"
        } else if down == 0 {
            "cluster: degraded (checkpointing failing on some nodes)\n"
        } else {
            "cluster: degraded\n"
        });
        Ok(out)
    }

    /// A node selector from `--node`: `S:primary` or `S:replica:R`.
    pub enum NodeRole {
        Primary,
        Replica(usize),
    }

    pub fn parse_node_spec(spec: &str, shards: usize) -> Result<(usize, NodeRole), String> {
        let mut parts = spec.split(':');
        let shard: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad --node {spec:?} (want S:primary or S:replica:R)"))?;
        if shard >= shards {
            return Err(format!(
                "--node {spec:?}: shard {shard} out of range (0..{shards})"
            ));
        }
        let role = match (parts.next(), parts.next(), parts.next()) {
            (Some("primary"), None, None) => NodeRole::Primary,
            (Some("replica"), Some(r), None) => NodeRole::Replica(
                r.parse()
                    .map_err(|_| format!("bad replica index in --node {spec:?}"))?,
            ),
            _ => {
                return Err(format!(
                    "bad --node {spec:?} (want S:primary or S:replica:R)"
                ))
            }
        };
        Ok((shard, role))
    }

    /// Open a snapshot plus its sidecar index (`<snapshot>.idx`), building
    /// and caching the index on first use. A corrupt or truncated sidecar
    /// is *recovered from* — the index is rebuilt from the store and the
    /// sidecar rewritten (atomically) — never a fatal error: the sidecar
    /// is a cache, and the store snapshot is the source of truth. `threads`
    /// overrides the default worker count (`TIX_THREADS` / machine
    /// parallelism) for the index build and all queries; results are
    /// identical either way.
    fn database(snapshot: &str, threads: Option<usize>) -> Result<Database, String> {
        let store = read_snapshot(snapshot)?;
        let mut db = Database::new();
        if let Some(threads) = threads {
            db.set_threads(threads);
        }
        *db.store_mut() = store;
        let idx_path = format!("{snapshot}.idx");
        if let Err(err) = db.load_index_from(&idx_path) {
            // A missing sidecar is the normal first run; anything else is
            // damage worth reporting before rebuilding over it.
            let missing = matches!(
                &err,
                tix::PersistError::Io(e) if e.kind() == std::io::ErrorKind::NotFound
            );
            if !missing {
                eprintln!("warning: {idx_path}: {err}; rebuilding index from the snapshot");
            }
            db.build_index();
            if let Err(err) = db.save_index_to(&idx_path) {
                // The database still works from the in-memory index; only
                // the cache for the next run could not be written.
                eprintln!("warning: cannot write {idx_path}: {err}");
            }
        }
        Ok(db)
    }

    fn read_snapshot(path: &str) -> Result<Store, String> {
        tix::persist::load_store(path).map_err(|e| format!("cannot open {path}: {e}"))
    }

    fn write_snapshot(store: &Store, path: &str) -> Result<(), String> {
        tix::persist::save_store(store, path).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

const USAGE: &str = "\
tix — IR-style querying of structured text in an XML database

usage:
  tix load   <snapshot> <file.xml>…       load XML files, write a snapshot
  tix gen    <snapshot> [articles] [seed] generate a synthetic corpus
  tix stats  <snapshot>                   corpus statistics
  tix search <snapshot> <term>… [-k N] [-t THRESHOLD] [--threads N]
  tix phrase <snapshot> <term> <term>… [--threads N]
  tix query  <snapshot> <file|->          run an extended-XQuery query
  tix explain <snapshot> <term>… [-k N] [-t THRESHOLD] [--min-score X]
              [--query <file|->]          show the costed plan choice
  tix ingest <dir> add <name> <file.xml>  WAL-logged insert into a live dir
  tix ingest <dir> remove <name>          WAL-logged removal from a live dir
  tix checkpoint <dir>                    snapshot a live dir, truncate WAL
  tix serve  <snapshot|--live dir> [--addr HOST:PORT] [--workers N]
             [--queue N] [--cache N] [--deadline-ms N] [--threads N]
             [--durability strict|batched[:MS]|flush]
                                          serve queries over HTTP
  tix cluster init   <dir> [--shards N] [--replicas M] [--base-port P]
                                          write a cluster.json topology
  tix cluster serve  <dir> [--node S:primary|S:replica:R] [--coordinator]
                     [--addr HOST:PORT] [--workers N]
                     [--durability strict|batched[:MS]|flush]
                                          serve one node, the coordinator,
                                          or the whole cluster in-process
  tix cluster status <dir>                poll every node's /health

Query commands run document-partitioned over worker threads (--threads,
else TIX_THREADS, else all cores); results are identical at any count.
The index sidecar (<snapshot>.idx) is written in the compressed v3 pack
format (TIXPAK) and opened by reference — postings decode lazily, per
term, on first use; v2 (TIXIDX) sidecars still load transparently.
`serve` answers /search, /phrase, /search/batch, /query, /explain,
/health and /metrics with JSON; with --live it serves a durable ingestion directory
and also accepts POST /documents and DELETE /documents/{name}. See
README §Serving and §Live ingestion for the wire format.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let command = args.first().map(String::as_str).ok_or("no command")?;
    let rest = &args[1..];
    match command {
        "load" => {
            let snapshot = rest.first().ok_or("load: snapshot path required")?;
            commands::load(snapshot, &rest[1..])
        }
        "gen" => {
            let snapshot = rest.first().ok_or("gen: snapshot path required")?;
            let articles = rest
                .get(1)
                .map(|a| a.parse().map_err(|_| format!("bad article count {a:?}")))
                .transpose()?
                .unwrap_or(200);
            let seed = rest
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad seed {s:?}")))
                .transpose()?
                .unwrap_or(11);
            commands::generate(snapshot, articles, seed)
        }
        "stats" => {
            let snapshot = rest.first().ok_or("stats: snapshot path required")?;
            commands::stats(snapshot)
        }
        "search" => {
            let snapshot = rest.first().ok_or("search: snapshot path required")?;
            let mut terms = Vec::new();
            let mut k = 10usize;
            let mut threshold = 0.5f64;
            let mut threads = None;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "-k" => {
                        let v = it.next().ok_or("-k needs a value")?;
                        k = v.parse().map_err(|_| format!("bad -k value {v:?}"))?;
                    }
                    "-t" => {
                        let v = it.next().ok_or("-t needs a value")?;
                        threshold = v.parse().map_err(|_| format!("bad -t value {v:?}"))?;
                    }
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        threads = Some(
                            v.parse()
                                .map_err(|_| format!("bad --threads value {v:?}"))?,
                        );
                    }
                    term => terms.push(term.to_string()),
                }
            }
            commands::search(snapshot, &terms, k, threshold, threads)
        }
        "phrase" => {
            let snapshot = rest.first().ok_or("phrase: snapshot path required")?;
            let mut terms = Vec::new();
            let mut threads = None;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                if arg == "--threads" {
                    let v = it.next().ok_or("--threads needs a value")?;
                    threads = Some(
                        v.parse()
                            .map_err(|_| format!("bad --threads value {v:?}"))?,
                    );
                } else {
                    terms.push(arg.clone());
                }
            }
            commands::phrase(snapshot, &terms, threads)
        }
        "query" => {
            let snapshot = rest.first().ok_or("query: snapshot path required")?;
            let source = rest.get(1).ok_or("query: query file (or -) required")?;
            commands::query(snapshot, source)
        }
        "explain" => {
            let snapshot = rest.first().ok_or("explain: snapshot path required")?;
            let mut terms = Vec::new();
            let mut k = 10usize;
            let mut threshold = 0.5f64;
            let mut min_score = None;
            let mut query_source = None;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "-k" => {
                        let v = it.next().ok_or("-k needs a value")?;
                        k = v.parse().map_err(|_| format!("bad -k value {v:?}"))?;
                    }
                    "-t" => {
                        let v = it.next().ok_or("-t needs a value")?;
                        threshold = v.parse().map_err(|_| format!("bad -t value {v:?}"))?;
                    }
                    "--min-score" => {
                        let v = it.next().ok_or("--min-score needs a value")?;
                        min_score = Some(
                            v.parse::<f64>()
                                .map_err(|_| format!("bad --min-score value {v:?}"))?,
                        );
                    }
                    "--query" => {
                        query_source = Some(it.next().ok_or("--query needs a file (or -)")?);
                    }
                    term => terms.push(term.to_string()),
                }
            }
            commands::explain(
                snapshot,
                &terms,
                k,
                threshold,
                min_score,
                query_source.map(String::as_str),
            )
        }
        "ingest" => {
            let dir = rest.first().ok_or("ingest: directory required")?;
            let action = rest.get(1).ok_or("ingest: action required (add|remove)")?;
            commands::ingest(dir, action, &rest[2..])
        }
        "checkpoint" => {
            let dir = rest.first().ok_or("checkpoint: directory required")?;
            commands::checkpoint(dir)
        }
        "serve" => {
            let (path, live, config) = parse_serve_args(rest)?;
            commands::serve(&path, live, config)
        }
        "cluster" => {
            let sub = rest
                .first()
                .ok_or("cluster: subcommand required (init|serve|status)")?;
            let dir = rest
                .get(1)
                .ok_or_else(|| format!("cluster {sub}: directory required"))?;
            let flags = &rest[2..];
            match sub.as_str() {
                "init" => {
                    let mut shards = 2usize;
                    let mut replicas = 1usize;
                    let mut base_port = 7900u16;
                    let mut it = flags.iter();
                    while let Some(arg) = it.next() {
                        let mut value_of = |flag: &str| -> Result<&String, String> {
                            it.next().ok_or_else(|| format!("{flag} needs a value"))
                        };
                        match arg.as_str() {
                            "--shards" => {
                                let v = value_of("--shards")?;
                                shards =
                                    v.parse().map_err(|_| format!("bad --shards value {v:?}"))?;
                            }
                            "--replicas" => {
                                let v = value_of("--replicas")?;
                                replicas = v
                                    .parse()
                                    .map_err(|_| format!("bad --replicas value {v:?}"))?;
                            }
                            "--base-port" => {
                                let v = value_of("--base-port")?;
                                base_port = v
                                    .parse()
                                    .map_err(|_| format!("bad --base-port value {v:?}"))?;
                            }
                            other => return Err(format!("cluster init: unknown flag {other:?}")),
                        }
                    }
                    commands::cluster_init(dir, shards, replicas, base_port)
                }
                "serve" => {
                    let mut node = None;
                    let mut coordinator = false;
                    let mut addr = None;
                    let mut workers = None;
                    let mut durability = None;
                    let mut it = flags.iter();
                    while let Some(arg) = it.next() {
                        let mut value_of = |flag: &str| -> Result<&String, String> {
                            it.next().ok_or_else(|| format!("{flag} needs a value"))
                        };
                        match arg.as_str() {
                            "--node" => node = Some(value_of("--node")?.clone()),
                            "--coordinator" => coordinator = true,
                            "--addr" => addr = Some(value_of("--addr")?.clone()),
                            "--workers" => {
                                let v = value_of("--workers")?;
                                workers = Some(
                                    v.parse()
                                        .map_err(|_| format!("bad --workers value {v:?}"))?,
                                );
                            }
                            "--durability" => {
                                let v = value_of("--durability")?;
                                durability = Some(
                                    tix_ingest::DurabilityMode::parse(v)
                                        .map_err(|e| format!("bad --durability value: {e}"))?,
                                );
                            }
                            other => return Err(format!("cluster serve: unknown flag {other:?}")),
                        }
                    }
                    if node.is_some() && coordinator {
                        return Err("cluster serve: --node and --coordinator are exclusive".into());
                    }
                    commands::cluster_serve(
                        dir,
                        node.as_deref(),
                        coordinator,
                        addr.as_deref(),
                        workers,
                        durability,
                    )
                }
                "status" => commands::cluster_status(dir),
                other => Err(format!(
                    "cluster: unknown subcommand {other:?} (init|serve|status)"
                )),
            }
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parse `serve` arguments into a path (snapshot, or ingestion directory
/// with `--live`) and a [`ServerConfig`]. Split out from `dispatch` so
/// argument handling is testable without binding a socket.
fn parse_serve_args(rest: &[String]) -> Result<(String, bool, tix_server::ServerConfig), String> {
    let first = rest
        .first()
        .ok_or("serve: snapshot path (or --live <dir>) required")?;
    let (path, live, flags) = if first == "--live" {
        let dir = rest.get(1).ok_or("--live needs a directory")?.clone();
        (dir, true, &rest[2..])
    } else {
        (first.clone(), false, &rest[1..])
    };
    let mut config = tix_server::ServerConfig {
        // A CLI server should be reachable on a stable port by default;
        // tests and the smoke job override with --addr 127.0.0.1:0.
        addr: "127.0.0.1:7878".to_string(),
        ..tix_server::ServerConfig::default()
    };
    let mut it = flags.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr")?.clone(),
            "--workers" => {
                let v = value_of("--workers")?;
                config.workers = v
                    .parse()
                    .map_err(|_| format!("bad --workers value {v:?}"))?;
            }
            "--queue" => {
                let v = value_of("--queue")?;
                config.queue_capacity =
                    v.parse().map_err(|_| format!("bad --queue value {v:?}"))?;
            }
            "--cache" => {
                let v = value_of("--cache")?;
                config.cache_capacity =
                    v.parse().map_err(|_| format!("bad --cache value {v:?}"))?;
            }
            "--deadline-ms" => {
                let v = value_of("--deadline-ms")?;
                config.default_deadline_ms = v
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value {v:?}"))?;
            }
            "--threads" => {
                let v = value_of("--threads")?;
                config.request_threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
            }
            "--debug-endpoints" => config.debug_endpoints = true,
            "--durability" => {
                let v = value_of("--durability")?;
                config.durability = tix_ingest::DurabilityMode::parse(v)
                    .map_err(|e| format!("bad --durability value: {e}"))?;
            }
            other => return Err(format!("serve: unknown flag {other:?}")),
        }
    }
    Ok((path, live, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tix-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_load_stats_search() {
        let xml_path = tmp("sample.xml");
        fs::write(
            &xml_path,
            "<article><sec><p>rust database engines</p></sec><sec><p>other text</p></sec></article>",
        )
        .unwrap();
        let snap = tmp("sample.snap");
        let out = dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        assert!(out.contains("loaded 1"), "{out}");

        let stats = dispatch(&["stats".into(), snap.clone()]).unwrap();
        assert!(stats.contains("1 docs"), "{stats}");

        let found = dispatch(&[
            "search".into(),
            snap.clone(),
            "rust".into(),
            "-k".into(),
            "3".into(),
            "-t".into(),
            "0.5".into(),
        ])
        .unwrap();
        assert!(found.contains("results"), "{found}");
        assert!(found.contains("rust database"), "{found}");
    }

    #[test]
    fn gen_and_phrase() {
        let snap = tmp("gen.snap");
        let out = dispatch(&["gen".into(), snap.clone(), "4".into(), "7".into()]).unwrap();
        assert!(out.contains("4 docs"), "{out}");
        // Background bigrams exist somewhere; at minimum the command runs.
        let result = dispatch(&["phrase".into(), snap, "w0".into(), "w1".into()]).unwrap();
        assert!(result.contains("text nodes contain the phrase"), "{result}");
    }

    #[test]
    fn query_from_file() {
        let xml_path = tmp("qdoc.xml");
        fs::write(&xml_path, "<article><p>search engine design</p></article>").unwrap();
        let snap = tmp("qdoc.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        let query_path = tmp("q.tixql");
        fs::write(
            &query_path,
            r#"
            For $a in document("qdoc.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {})
            Sortby(score)
            Threshold $a/@score > 0.5
            "#,
        )
        .unwrap();
        let out = dispatch(&["query".into(), snap, query_path]).unwrap();
        assert!(out.contains("<result><score>"), "{out}");
    }

    #[test]
    fn explain_terms_and_query_modes() {
        let xml_path = tmp("explain.xml");
        fs::write(
            &xml_path,
            "<article><sec><p>rust planner costs</p></sec><sec><p>rust again</p></sec></article>",
        )
        .unwrap();
        let snap = tmp("explain.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();

        let out = dispatch(&[
            "explain".into(),
            snap.clone(),
            "rust".into(),
            "planner".into(),
            "-k".into(),
            "3".into(),
            "--min-score".into(),
            "1.5".into(),
        ])
        .unwrap();
        for needle in [
            "explain: term-search",
            "statistics:",
            "candidates:",
            "chosen:",
            "threshold: score > 1.5",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in {out}");
        }

        let query_path = tmp("explain.tixql");
        fs::write(
            &query_path,
            r#"
            For $a in document("explain.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"rust"}, {})
            Sortby(score)
            Threshold $a/@score > 0.5 stop after 2
            "#,
        )
        .unwrap();
        let out =
            dispatch(&["explain".into(), snap.clone(), "--query".into(), query_path]).unwrap();
        assert!(out.contains("chosen:"), "{out}");
        assert!(out.contains("k=2"), "{out}");

        // Errors: no terms, bad flag values, unparseable query text.
        assert!(dispatch(&["explain".into(), snap.clone()]).is_err());
        assert!(dispatch(&[
            "explain".into(),
            snap.clone(),
            "rust".into(),
            "--min-score".into(),
            "high".into(),
        ])
        .is_err());
        let bad_query = tmp("explain-bad.tixql");
        fs::write(&bad_query, "For broken $").unwrap();
        let err = dispatch(&["explain".into(), snap, "--query".into(), bad_query]).unwrap_err();
        assert!(err.contains("cannot explain query"), "{err}");
    }

    #[test]
    fn threads_flag_does_not_change_results() {
        let xml_path = tmp("threaded.xml");
        fs::write(
            &xml_path,
            "<article><sec><p>parallel rust engine</p></sec><sec><p>rust again</p></sec></article>",
        )
        .unwrap();
        let snap = tmp("threaded.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        let base = dispatch(&["search".into(), snap.clone(), "rust".into()]).unwrap();
        for threads in ["1", "2", "8"] {
            let out = dispatch(&[
                "search".into(),
                snap.clone(),
                "rust".into(),
                "--threads".into(),
                threads.into(),
            ])
            .unwrap();
            assert_eq!(out, base, "--threads {threads}");
        }
        let phrase_base = dispatch(&[
            "phrase".into(),
            snap.clone(),
            "parallel".into(),
            "rust".into(),
        ])
        .unwrap();
        let phrase_par = dispatch(&[
            "phrase".into(),
            snap,
            "parallel".into(),
            "rust".into(),
            "--threads".into(),
            "4".into(),
        ])
        .unwrap();
        assert_eq!(phrase_par, phrase_base);
        assert!(dispatch(&["search".into(), "x".into(), "--threads".into()]).is_err());
    }

    #[test]
    fn corrupt_index_sidecar_recovers_and_repairs() {
        let xml_path = tmp("sidecar.xml");
        fs::write(
            &xml_path,
            "<article><p>resilient rust database</p></article>",
        )
        .unwrap();
        let snap = tmp("sidecar.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        let search = || dispatch(&["search".into(), snap.clone(), "rust".into()]);
        let expected = search().unwrap();
        let idx_path = format!("{snap}.idx");
        assert!(
            fs::metadata(&idx_path).is_ok(),
            "first search caches the sidecar"
        );

        // Bit-flipped, truncated, and garbage sidecars must all be
        // recovered from — same results, not an error — and the sidecar
        // must come back valid.
        let good = fs::read(&idx_path).unwrap();
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x04;
        for bad in [flipped, good[..good.len() / 3].to_vec(), b"junk".to_vec()] {
            fs::write(&idx_path, &bad).unwrap();
            assert_eq!(search().unwrap(), expected);
            assert_eq!(
                fs::read(&idx_path).unwrap(),
                good,
                "sidecar repaired to a byte-identical snapshot"
            );
        }
    }

    #[test]
    fn unwritable_sidecar_is_not_fatal() {
        // Point the snapshot into a directory that exists but where the
        // sidecar path is itself a directory, so the rewrite always fails;
        // the search must still answer from the in-memory index.
        let xml_path = tmp("nosidecar.xml");
        fs::write(&xml_path, "<article><p>memory only rust</p></article>").unwrap();
        let snap = tmp("nosidecar.snap");
        dispatch(&["load".into(), snap.clone(), xml_path]).unwrap();
        fs::create_dir_all(format!("{snap}.idx")).unwrap();
        let out = dispatch(&["search".into(), snap, "rust".into()]).unwrap();
        assert!(out.contains("results"), "{out}");
    }

    #[test]
    fn ingest_add_remove_checkpoint_cycle() {
        let dir = tmp("live-cycle");
        // A stale directory from a previous run would change doc counts.
        let _ = fs::remove_dir_all(&dir);
        let xml_path = tmp("live-doc.xml");
        fs::write(&xml_path, "<article><p>ingested rust text</p></article>").unwrap();

        let out = dispatch(&[
            "ingest".into(),
            dir.clone(),
            "add".into(),
            "live.xml".into(),
            xml_path.clone(),
        ])
        .unwrap();
        assert!(out.contains("added live.xml as doc 0 at lsn 1"), "{out}");
        assert!(out.contains("1 docs"), "{out}");

        // The mutation is WAL-only so far: a reopen (fresh process in real
        // use) replays it, and a duplicate insert is a typed error.
        let dup = dispatch(&[
            "ingest".into(),
            dir.clone(),
            "add".into(),
            "live.xml".into(),
            xml_path,
        ])
        .unwrap_err();
        assert!(dup.contains("already loaded"), "{dup}");

        let ckpt = dispatch(&["checkpoint".into(), dir.clone()]).unwrap();
        assert!(ckpt.contains("seq 1 at lsn 1"), "{ckpt}");
        assert!(
            fs::metadata(std::path::Path::new(&dir).join("store.1.tixsnap")).is_ok(),
            "checkpoint wrote a store snapshot"
        );

        let out = dispatch(&[
            "ingest".into(),
            dir.clone(),
            "remove".into(),
            "live.xml".into(),
        ])
        .unwrap();
        assert!(out.contains("removed live.xml at lsn 2"), "{out}");
        assert!(out.contains("0 docs"), "{out}");

        let gone =
            dispatch(&["ingest".into(), dir, "remove".into(), "live.xml".into()]).unwrap_err();
        assert!(gone.contains("no document named"), "{gone}");
    }

    #[test]
    fn ingest_arg_errors() {
        let dir = tmp("live-errors");
        let _ = fs::remove_dir_all(&dir);
        assert!(dispatch(&["ingest".into()]).is_err());
        assert!(dispatch(&["ingest".into(), dir.clone()]).is_err());
        let unknown = dispatch(&["ingest".into(), dir.clone(), "upsert".into()]).unwrap_err();
        assert!(unknown.contains("unknown action"), "{unknown}");
        assert!(dispatch(&["ingest".into(), dir.clone(), "add".into(), "a.xml".into()]).is_err());
        let unreadable = dispatch(&[
            "ingest".into(),
            dir,
            "add".into(),
            "a.xml".into(),
            "/nonexistent/a.xml".into(),
        ])
        .unwrap_err();
        assert!(unreadable.contains("cannot read"), "{unreadable}");
        assert!(dispatch(&["checkpoint".into()]).is_err());
    }

    #[test]
    fn errors_reported() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&["frobnicate".into()]).is_err());
        assert!(dispatch(&["stats".into(), "/nonexistent/x.snap".into()]).is_err());
        assert!(dispatch(&["search".into(), "/nonexistent/x.snap".into(), "t".into()]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = dispatch(&["help".into()]).unwrap();
        assert!(out.contains("usage:"));
        assert!(out.contains("serve"));
        assert!(out.contains("cluster init"));
    }

    #[test]
    fn cluster_init_writes_a_loadable_topology() {
        let dir = tmp("cluster-init");
        let _ = fs::remove_dir_all(&dir);
        let out = dispatch(&[
            "cluster".into(),
            "init".into(),
            dir.clone(),
            "--shards".into(),
            "3".into(),
            "--replicas".into(),
            "2".into(),
            "--base-port".into(),
            "7600".into(),
        ])
        .unwrap();
        assert!(out.contains("3 shard(s) × 2 replica(s)"), "{out}");
        let topology = tix_cluster::Topology::load(&dir).unwrap();
        assert_eq!(topology.shard_count(), 3);
        assert_eq!(topology.shards[0].primary, "127.0.0.1:7600");
        assert_eq!(
            topology.shards[0].replicas,
            ["127.0.0.1:7601", "127.0.0.1:7602"]
        );
        assert_eq!(topology.shards[2].primary, "127.0.0.1:7606");
        // Addresses never collide across the whole map.
        let all: std::collections::HashSet<&str> =
            topology.all_nodes().iter().map(|&(_, a, _)| a).collect();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn cluster_status_reports_down_nodes_without_failing() {
        let dir = tmp("cluster-status");
        let _ = fs::remove_dir_all(&dir);
        dispatch(&[
            "cluster".into(),
            "init".into(),
            dir.clone(),
            "--shards".into(),
            "1".into(),
            "--replicas".into(),
            "1".into(),
            "--base-port".into(),
            // A port nothing listens on in the test environment.
            "1".into(),
        ])
        .unwrap();
        let out = dispatch(&["cluster".into(), "status".into(), dir]).unwrap();
        assert!(out.contains("down"), "{out}");
        assert!(out.contains("cluster: degraded"), "{out}");
    }

    #[test]
    fn cluster_arg_errors() {
        assert!(dispatch(&["cluster".into()]).is_err());
        assert!(dispatch(&["cluster".into(), "frobnicate".into(), "d".into()]).is_err());
        assert!(dispatch(&["cluster".into(), "init".into()]).is_err());
        let err = dispatch(&[
            "cluster".into(),
            "init".into(),
            "d".into(),
            "--shards".into(),
            "many".into(),
        ])
        .unwrap_err();
        assert!(err.contains("bad --shards"), "{err}");
        // serve on a directory with no topology fails cleanly.
        let missing = tmp("cluster-missing");
        let _ = fs::remove_dir_all(&missing);
        assert!(dispatch(&["cluster".into(), "serve".into(), missing.clone()]).is_err());
        assert!(dispatch(&["cluster".into(), "status".into(), missing]).is_err());
        // --node and --coordinator are exclusive; node specs validate.
        let dir = tmp("cluster-spec");
        let _ = fs::remove_dir_all(&dir);
        dispatch(&["cluster".into(), "init".into(), dir.clone()]).unwrap();
        let err = dispatch(&[
            "cluster".into(),
            "serve".into(),
            dir.clone(),
            "--node".into(),
            "0:primary".into(),
            "--coordinator".into(),
        ])
        .unwrap_err();
        assert!(err.contains("exclusive"), "{err}");
        for bad in ["x:primary", "0:boss", "9:primary", "0:replica:x"] {
            let err = dispatch(&[
                "cluster".into(),
                "serve".into(),
                dir.clone(),
                "--node".into(),
                bad.into(),
            ])
            .unwrap_err();
            assert!(
                err.contains("--node") || err.contains("out of range"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn serve_args_parse_into_config() {
        let args: Vec<String> = [
            "snap.bin",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--queue",
            "32",
            "--cache",
            "100",
            "--deadline-ms",
            "250",
            "--threads",
            "2",
            "--debug-endpoints",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (snapshot, live, config) = parse_serve_args(&args).unwrap();
        assert_eq!(snapshot, "snap.bin");
        assert!(!live);
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.workers, 8);
        assert_eq!(config.queue_capacity, 32);
        assert_eq!(config.cache_capacity, 100);
        assert_eq!(config.default_deadline_ms, 250);
        assert_eq!(config.request_threads, 2);
        assert!(config.debug_endpoints);
    }

    #[test]
    fn serve_live_flag_selects_ingest_directory() {
        let args: Vec<String> = ["--live", "/data/live", "--addr", "127.0.0.1:0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (path, live, config) = parse_serve_args(&args).unwrap();
        assert_eq!(path, "/data/live");
        assert!(live);
        assert_eq!(config.addr, "127.0.0.1:0");
        let missing: Vec<String> = vec!["--live".into()];
        assert!(parse_serve_args(&missing)
            .unwrap_err()
            .contains("needs a directory"));
    }

    #[test]
    fn serve_arg_errors() {
        assert!(parse_serve_args(&[]).is_err());
        let bad = |args: &[&str]| {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_serve_args(&owned).unwrap_err()
        };
        assert!(bad(&["s", "--workers"]).contains("needs a value"));
        assert!(bad(&["s", "--workers", "many"]).contains("bad --workers"));
        assert!(bad(&["s", "--deadline-ms", "-1"]).contains("bad --deadline-ms"));
        assert!(bad(&["s", "--frobnicate"]).contains("unknown flag"));
        // Serving a missing snapshot fails cleanly through dispatch.
        assert!(dispatch(&["serve".into(), "/nonexistent/x.snap".into()]).is_err());
    }
}
