//! The `TIXPAK` v3 writer and the v2 → v3 converter.
//!
//! Layout (all integers little-endian; every section is the
//! `tix_store::persist` frame `[u32 len][payload][u32 CRC-32]`, and the
//! whole file ends with a 4-byte seal — the CRC-32 of everything before
//! it, magic and version included):
//!
//! ```text
//! "TIXPAK" | version u8 = 3
//! header section:      total_tokens u64 | term_count u32 | block_postings u32
//! dictionary sections (1024 terms each): per term
//!     name_len u32 | name bytes | doc_frequency u32 | node_frequency u32
//!     posting_count u32 | block_count u32
//!     per block: first_doc u32 | last_doc u32 | postings u32
//!                | max_doc_count u32 | byte_len u32
//! block sections, one per block, in (term, block) order:
//!     delta+varint encoded postings (see [`encode_block`])
//! seal u32
//! ```
//!
//! `max_doc_count` is the block-max WAND statistic: the maximum over
//! documents intersecting the block of that document's **total** posting
//! count in the whole list — the whole-list total (not the within-block
//! count) keeps the statistic a sound counter bound when a document's
//! postings straddle block boundaries.

use std::io::Write;

use tix_index::{IndexSnapshotError, InvertedIndex, Posting, TermId};
use tix_store::persist::{write_section, SealWriter, SectionError};

use crate::varint::put_u32;

/// Magic prefix of a v3 pack file.
pub const PACK_MAGIC: &[u8] = b"TIXPAK";
/// Current (and only) pack format version.
pub const PACK_VERSION: u8 = 3;
/// Postings per compressed block. 128 keeps blocks around a cache line's
/// worth of decoded work while the per-block metadata stays ~2% of the
/// compressed posting bytes.
pub const BLOCK_POSTINGS: usize = 128;
/// Terms per dictionary section (same grouping as the v2 snapshot).
pub(crate) const TERMS_PER_SECTION: usize = 1024;

fn from_section(err: SectionError) -> IndexSnapshotError {
    match err {
        SectionError::Io(e) => IndexSnapshotError::Io(e),
        SectionError::TooLarge => IndexSnapshotError::TooLarge("section exceeds u32 length"),
        SectionError::Truncated => IndexSnapshotError::Corrupt("truncated section"),
        SectionError::ChecksumMismatch => IndexSnapshotError::Corrupt("section checksum mismatch"),
    }
}

/// Delta+varint encode one block of postings (strictly increasing
/// `(doc, node, offset)` order). The first posting is absolute so every
/// block decodes independently; each subsequent posting stores the doc
/// delta, then — when the doc repeats — the node delta, then — when the
/// node also repeats — the strictly positive offset delta. Fields below
/// a non-zero delta restart as absolute values.
fn encode_block(postings: &[Posting], out: &mut Vec<u8>) {
    let mut prev: Option<Posting> = None;
    for p in postings {
        match prev {
            None => {
                put_u32(out, p.doc.0);
                put_u32(out, p.node.as_u32());
                put_u32(out, p.offset);
            }
            Some(q) => {
                let ddoc = p.doc.0.wrapping_sub(q.doc.0);
                put_u32(out, ddoc);
                if ddoc == 0 {
                    let dnode = p.node.as_u32().wrapping_sub(q.node.as_u32());
                    put_u32(out, dnode);
                    if dnode == 0 {
                        put_u32(out, p.offset.wrapping_sub(q.offset));
                    } else {
                        put_u32(out, p.offset);
                    }
                } else {
                    put_u32(out, p.node.as_u32());
                    put_u32(out, p.offset);
                }
            }
        }
        prev = Some(*p);
    }
}

/// Per-document total posting counts, in document order.
fn doc_totals(postings: &[Posting]) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for p in postings {
        match runs.last_mut() {
            Some((doc, count)) if *doc == p.doc.0 => *count += 1,
            _ => runs.push((p.doc.0, 1)),
        }
    }
    runs
}

struct BlockMeta {
    first_doc: u32,
    last_doc: u32,
    postings: u32,
    max_doc_count: u32,
    bytes: Vec<u8>,
}

fn encode_term(postings: &[Posting]) -> Result<Vec<BlockMeta>, IndexSnapshotError> {
    let totals = doc_totals(postings);
    let mut blocks = Vec::with_capacity(postings.len().div_ceil(BLOCK_POSTINGS));
    for chunk in postings.chunks(BLOCK_POSTINGS) {
        let (Some(first), Some(last)) = (chunk.first(), chunk.last()) else {
            continue;
        };
        let lo = totals.partition_point(|r| r.0 < first.doc.0);
        let hi = totals.partition_point(|r| r.0 <= last.doc.0);
        let max_doc_count = totals
            .get(lo..hi)
            .unwrap_or(&[])
            .iter()
            .map(|r| r.1)
            .max()
            .unwrap_or(0);
        let mut bytes = Vec::with_capacity(chunk.len() * 3);
        encode_block(chunk, &mut bytes);
        blocks.push(BlockMeta {
            first_doc: first.doc.0,
            last_doc: last.doc.0,
            postings: u32::try_from(chunk.len())
                .map_err(|_| IndexSnapshotError::TooLarge("block posting count"))?,
            max_doc_count,
            bytes,
        });
    }
    Ok(blocks)
}

/// Write `index` as a sealed `TIXPAK` v3 file.
pub fn write_pack(index: &InvertedIndex, w: impl Write) -> Result<(), IndexSnapshotError> {
    let mut w = SealWriter::new(w);
    w.write_all(PACK_MAGIC)?;
    w.write_all(&[PACK_VERSION])?;

    let term_count = u32::try_from(index.term_count())
        .map_err(|_| IndexSnapshotError::TooLarge("term count"))?;
    let mut payload = Vec::new();
    payload.extend_from_slice(&index.total_tokens().to_le_bytes());
    payload.extend_from_slice(&term_count.to_le_bytes());
    let block_postings =
        u32::try_from(BLOCK_POSTINGS).map_err(|_| IndexSnapshotError::TooLarge("block size"))?;
    payload.extend_from_slice(&block_postings.to_le_bytes());
    write_section(&mut w, &mut payload).map_err(from_section)?;

    // Encode every term's blocks up front: the dictionary records each
    // block's byte length, so the payloads must exist before the
    // dictionary sections are written.
    let mut terms: Vec<Vec<BlockMeta>> = Vec::with_capacity(index.term_count());
    for tid in 0..term_count {
        terms.push(encode_term(index.list_by_id(TermId(tid)).postings())?);
    }

    for (chunk_base, chunk) in terms.chunks(TERMS_PER_SECTION).enumerate() {
        for (i, blocks) in chunk.iter().enumerate() {
            let tid = u32::try_from(chunk_base * TERMS_PER_SECTION + i)
                .map_err(|_| IndexSnapshotError::TooLarge("term id"))?;
            let name = index.term_str(TermId(tid)).as_bytes();
            let list = index.list_by_id(TermId(tid));
            payload.extend_from_slice(
                &u32::try_from(name.len())
                    .map_err(|_| IndexSnapshotError::TooLarge("term name"))?
                    .to_le_bytes(),
            );
            payload.extend_from_slice(name);
            payload.extend_from_slice(&list.doc_frequency().to_le_bytes());
            payload.extend_from_slice(&list.node_frequency().to_le_bytes());
            payload.extend_from_slice(
                &u32::try_from(list.postings().len())
                    .map_err(|_| IndexSnapshotError::TooLarge("posting count"))?
                    .to_le_bytes(),
            );
            payload.extend_from_slice(
                &u32::try_from(blocks.len())
                    .map_err(|_| IndexSnapshotError::TooLarge("block count"))?
                    .to_le_bytes(),
            );
            for b in blocks {
                payload.extend_from_slice(&b.first_doc.to_le_bytes());
                payload.extend_from_slice(&b.last_doc.to_le_bytes());
                payload.extend_from_slice(&b.postings.to_le_bytes());
                payload.extend_from_slice(&b.max_doc_count.to_le_bytes());
                payload.extend_from_slice(
                    &u32::try_from(b.bytes.len())
                        .map_err(|_| IndexSnapshotError::TooLarge("block bytes"))?
                        .to_le_bytes(),
                );
            }
        }
        write_section(&mut w, &mut payload).map_err(from_section)?;
    }

    for blocks in &mut terms {
        for b in blocks {
            write_section(&mut w, &mut b.bytes).map_err(from_section)?;
        }
    }

    w.write_seal()?;
    Ok(())
}

/// [`write_pack`] into a fresh byte vector.
pub fn pack_bytes(index: &InvertedIndex) -> Result<Vec<u8>, IndexSnapshotError> {
    let mut out = Vec::new();
    write_pack(index, &mut out)?;
    Ok(out)
}

/// Convert a v1/v2 `TIXIDX` snapshot into sealed v3 `TIXPAK` bytes. The
/// round-trip is exact: loading the result and materializing it back to
/// an [`InvertedIndex`] reproduces the v2 snapshot byte-for-byte.
pub fn convert_v2_to_v3(snapshot: &[u8]) -> Result<Vec<u8>, IndexSnapshotError> {
    let index = InvertedIndex::load_snapshot(snapshot)?;
    pack_bytes(&index)
}
