//! [`PackIndex`]: the load-by-reference v3 reader.
//!
//! Open cost is one streaming CRC pass over the file (the whole-file
//! seal — every length field below is untrusted until that passes) plus
//! an O(#terms + #blocks) metadata parse. **No posting is decoded at
//! open**: each term's blocks decode on first access into a per-term
//! `OnceLock` slot, so the returned `&[Posting]` slices are stable for
//! the reader's lifetime and repeat lookups are free.

use std::collections::HashMap;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use tix_index::{
    BlockSummary, IndexReader, IndexSnapshotError, InvertedIndex, Posting, PostingList, TermSummary,
};
use tix_store::{DocId, NodeIdx};

use crate::varint::get_u32;
use crate::write::{PACK_MAGIC, PACK_VERSION};

/// Cap speculative pre-allocations driven by on-disk length fields. The
/// seal has already vouched for the bytes, but a defensive bound costs
/// nothing.
const PREALLOC_CAP: usize = 1 << 20;

/// Per-term metadata parsed eagerly at open.
struct TermEntry {
    doc_frequency: u32,
    node_frequency: u32,
    posting_count: u32,
    /// Skip metadata per block, in block order.
    summaries: Vec<BlockSummary>,
    /// Byte range of each block's payload within the file image
    /// (parallel to `summaries`).
    payloads: Vec<Range<usize>>,
}

/// A compressed v3 index, loaded by reference: raw file bytes plus parsed
/// metadata; postings decode lazily per term.
pub struct PackIndex {
    bytes: Vec<u8>,
    total_tokens: u64,
    block_postings: u32,
    names: Vec<String>,
    dictionary: HashMap<String, u32>,
    terms: Vec<TermEntry>,
    slots: Vec<OnceLock<Vec<Posting>>>,
    decoded_terms: AtomicUsize,
    decoded_blocks: AtomicUsize,
}

impl std::fmt::Debug for PackIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackIndex")
            .field("bytes", &self.bytes.len())
            .field("terms", &self.terms.len())
            .field("total_tokens", &self.total_tokens)
            .field("decoded_terms", &self.decoded_terms())
            .finish_non_exhaustive()
    }
}

/// Bounds-checked little-endian cursor over a byte slice.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cur { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IndexSnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(IndexSnapshotError::Corrupt("length overflow"))?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(IndexSnapshotError::Corrupt("truncated section payload"))?;
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, IndexSnapshotError> {
        let arr: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| IndexSnapshotError::Corrupt("short u32"))?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, IndexSnapshotError> {
        let arr: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| IndexSnapshotError::Corrupt("short u64"))?;
        Ok(u64::from_le_bytes(arr))
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

/// Walk one `[u32 len][payload][u32 crc]` section frame inside
/// `bytes[..limit]`, returning the payload range. The CRC is re-verified
/// only when `verify` is set — the whole-file seal already covers every
/// byte, so block sections skip the second hash at open and re-check it
/// lazily at decode instead.
fn section_range(
    bytes: &[u8],
    pos: &mut usize,
    limit: usize,
    verify: bool,
) -> Result<Range<usize>, IndexSnapshotError> {
    let len_end = pos
        .checked_add(4)
        .filter(|&e| e <= limit)
        .ok_or(IndexSnapshotError::Corrupt("truncated section length"))?;
    let len_raw: [u8; 4] = bytes
        .get(*pos..len_end)
        .and_then(|s| s.try_into().ok())
        .ok_or(IndexSnapshotError::Corrupt("truncated section length"))?;
    let len = u32::from_le_bytes(len_raw) as usize;
    let payload_end = len_end
        .checked_add(len)
        .filter(|&e| e <= limit)
        .ok_or(IndexSnapshotError::Corrupt("truncated section payload"))?;
    let crc_end = payload_end
        .checked_add(4)
        .filter(|&e| e <= limit)
        .ok_or(IndexSnapshotError::Corrupt("truncated section checksum"))?;
    if verify && !section_crc_ok(bytes, len_end..payload_end, payload_end..crc_end) {
        return Err(IndexSnapshotError::Corrupt("section checksum mismatch"));
    }
    *pos = crc_end;
    Ok(len_end..payload_end)
}

fn section_crc_ok(bytes: &[u8], payload: Range<usize>, crc: Range<usize>) -> bool {
    let (Some(payload), Some(crc_raw)) = (bytes.get(payload), bytes.get(crc)) else {
        return false;
    };
    let Ok(arr) = <[u8; 4]>::try_from(crc_raw) else {
        return false;
    };
    tix_invariants::crc32(payload) == u32::from_le_bytes(arr)
}

impl PackIndex {
    /// Open a sealed `TIXPAK` file by reference.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IndexSnapshotError> {
        PackIndex::from_bytes(std::fs::read(path)?)
    }

    /// Take ownership of a complete file image and open it by reference.
    ///
    /// Rejection contract (the faultio sweeps in `tests/differential.rs`
    /// hold this): a wrong magic is `BadMagic`, a wrong version is
    /// `UnsupportedVersion`, and **any** other damage — torn tail, bit
    /// flip, trailing garbage — is `Corrupt`, because the whole-file seal
    /// is verified before any length field is trusted.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, IndexSnapshotError> {
        if bytes.len() < PACK_MAGIC.len() || !bytes.starts_with(PACK_MAGIC) {
            return Err(IndexSnapshotError::BadMagic);
        }
        let version = bytes
            .get(PACK_MAGIC.len())
            .copied()
            .ok_or(IndexSnapshotError::Corrupt("missing version byte"))?;
        if version != PACK_VERSION {
            return Err(IndexSnapshotError::UnsupportedVersion(version));
        }
        if tix_invariants::try_snapshot_sealed(PACK_MAGIC, &bytes).is_err() {
            return Err(IndexSnapshotError::Corrupt("whole-file seal mismatch"));
        }
        let seal_off = bytes.len() - 4;

        let mut pos = PACK_MAGIC.len() + 1;
        let header_range = section_range(&bytes, &mut pos, seal_off, true)?;
        let mut h = Cur::new(
            bytes
                .get(header_range)
                .ok_or(IndexSnapshotError::Corrupt("header out of range"))?,
        );
        let total_tokens = h.u64()?;
        let term_count = h.u32()? as usize;
        let block_postings = h.u32()?;
        if !h.done() {
            return Err(IndexSnapshotError::Corrupt("oversized header"));
        }
        if block_postings == 0 {
            return Err(IndexSnapshotError::Corrupt("zero block size"));
        }

        let mut names = Vec::with_capacity(term_count.min(PREALLOC_CAP));
        let mut dictionary = HashMap::with_capacity(term_count.min(PREALLOC_CAP));
        let mut terms: Vec<TermEntry> = Vec::with_capacity(term_count.min(PREALLOC_CAP));
        // Dictionary-declared byte length of every block, in (term, block)
        // order; resolved against the actual block frames below.
        let mut declared_lens: Vec<u32> = Vec::new();
        let mut dict = Cur::new(&[]);
        while terms.len() < term_count {
            if dict.done() {
                let range = section_range(&bytes, &mut pos, seal_off, true)?;
                let payload = bytes
                    .get(range)
                    .ok_or(IndexSnapshotError::Corrupt("dictionary out of range"))?;
                dict = Cur::new(payload);
                if dict.done() {
                    return Err(IndexSnapshotError::Corrupt("empty dictionary section"));
                }
            }
            let name_len = dict.u32()? as usize;
            let name = std::str::from_utf8(dict.take(name_len)?)
                .map_err(|_| IndexSnapshotError::Corrupt("non-UTF-8 term"))?
                .to_string();
            let doc_frequency = dict.u32()?;
            let node_frequency = dict.u32()?;
            let posting_count = dict.u32()?;
            let block_count = dict.u32()? as usize;
            let mut summaries = Vec::with_capacity(block_count.min(PREALLOC_CAP));
            let mut covered: u64 = 0;
            let mut prev_last: Option<u32> = None;
            for _ in 0..block_count {
                let first_doc = dict.u32()?;
                let last_doc = dict.u32()?;
                let postings = dict.u32()?;
                let max_doc_count = dict.u32()?;
                let byte_len = dict.u32()?;
                if first_doc > last_doc || postings == 0 || byte_len == 0 {
                    return Err(IndexSnapshotError::Corrupt("malformed block entry"));
                }
                if postings > block_postings || max_doc_count == 0 {
                    return Err(IndexSnapshotError::Corrupt("malformed block entry"));
                }
                if prev_last.is_some_and(|p| first_doc < p) {
                    return Err(IndexSnapshotError::Corrupt("blocks out of order"));
                }
                prev_last = Some(last_doc);
                covered += u64::from(postings);
                summaries.push(BlockSummary {
                    first_doc,
                    last_doc,
                    postings,
                    max_doc_count,
                });
                declared_lens.push(byte_len);
            }
            if covered != u64::from(posting_count) {
                return Err(IndexSnapshotError::Corrupt("block postings mismatch"));
            }
            let tid = u32::try_from(terms.len())
                .map_err(|_| IndexSnapshotError::TooLarge("term count"))?;
            if dictionary.insert(name.clone(), tid).is_some() {
                return Err(IndexSnapshotError::Corrupt("duplicate term"));
            }
            names.push(name);
            terms.push(TermEntry {
                doc_frequency,
                node_frequency,
                posting_count,
                summaries,
                payloads: Vec::new(),
            });
        }
        if !dict.done() {
            return Err(IndexSnapshotError::Corrupt("oversized dictionary section"));
        }

        // Block payload walk: one section frame per block, in (term,
        // block) order; the dictionary's declared length must match each
        // frame exactly.
        let mut lens = declared_lens.iter();
        for entry in &mut terms {
            let mut payloads = Vec::with_capacity(entry.summaries.len());
            for _ in 0..entry.summaries.len() {
                let declared = lens
                    .next()
                    .ok_or(IndexSnapshotError::Corrupt("missing block length"))?;
                let range = section_range(&bytes, &mut pos, seal_off, false)?;
                if range.len() != *declared as usize {
                    return Err(IndexSnapshotError::Corrupt("block length mismatch"));
                }
                payloads.push(range);
            }
            entry.payloads = payloads;
        }
        if pos != seal_off {
            return Err(IndexSnapshotError::Corrupt("unexpected trailing data"));
        }

        let slots = (0..terms.len()).map(|_| OnceLock::new()).collect();
        Ok(PackIndex {
            bytes,
            total_tokens,
            block_postings,
            names,
            dictionary,
            terms,
            slots,
            decoded_terms: AtomicUsize::new(0),
            decoded_blocks: AtomicUsize::new(0),
        })
    }

    /// The raw sealed file image this reader was opened from.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Postings per block this file was written with.
    pub fn block_postings(&self) -> u32 {
        self.block_postings
    }

    /// Number of terms whose postings have been decoded so far — the
    /// O(1)-startup observable: 0 right after open.
    pub fn decoded_terms(&self) -> usize {
        self.decoded_terms.load(Ordering::Relaxed)
    }

    /// Number of blocks decoded so far.
    pub fn decoded_blocks(&self) -> usize {
        self.decoded_blocks.load(Ordering::Relaxed)
    }

    /// Total blocks in the file.
    pub fn total_blocks(&self) -> usize {
        self.terms.iter().map(|t| t.summaries.len()).sum()
    }

    /// Decode one term's blocks into canonical postings, re-verifying
    /// each block frame's CRC and the posting-order/count metadata.
    fn decode_term(&self, tid: usize) -> Result<Vec<Posting>, IndexSnapshotError> {
        let entry = self
            .terms
            .get(tid)
            .ok_or(IndexSnapshotError::Corrupt("term id out of range"))?;
        let mut postings = Vec::with_capacity((entry.posting_count as usize).min(PREALLOC_CAP));
        let mut prev: Option<Posting> = None;
        for (summary, payload) in entry.summaries.iter().zip(&entry.payloads) {
            let crc_range = payload.end..payload.end.saturating_add(4);
            if !section_crc_ok(&self.bytes, payload.clone(), crc_range) {
                return Err(IndexSnapshotError::Corrupt("block checksum mismatch"));
            }
            let block = self
                .bytes
                .get(payload.clone())
                .ok_or(IndexSnapshotError::Corrupt("block out of range"))?;
            let mut bpos = 0usize;
            for i in 0..summary.postings {
                let posting = match prev.filter(|_| i > 0) {
                    None => {
                        let doc = get_u32(block, &mut bpos);
                        let node = get_u32(block, &mut bpos);
                        let offset = get_u32(block, &mut bpos);
                        match (doc, node, offset) {
                            (Some(d), Some(n), Some(o)) => Posting {
                                doc: DocId(d),
                                node: NodeIdx(n),
                                offset: o,
                            },
                            _ => return Err(IndexSnapshotError::Corrupt("truncated block")),
                        }
                    }
                    Some(q) => {
                        let Some(ddoc) = get_u32(block, &mut bpos) else {
                            return Err(IndexSnapshotError::Corrupt("truncated block"));
                        };
                        if ddoc == 0 {
                            let Some(dnode) = get_u32(block, &mut bpos) else {
                                return Err(IndexSnapshotError::Corrupt("truncated block"));
                            };
                            let Some(off) = get_u32(block, &mut bpos) else {
                                return Err(IndexSnapshotError::Corrupt("truncated block"));
                            };
                            if dnode == 0 {
                                Posting {
                                    doc: q.doc,
                                    node: q.node,
                                    offset: q.offset.wrapping_add(off),
                                }
                            } else {
                                Posting {
                                    doc: q.doc,
                                    node: NodeIdx(q.node.as_u32().wrapping_add(dnode)),
                                    offset: off,
                                }
                            }
                        } else {
                            let node = get_u32(block, &mut bpos);
                            let off = get_u32(block, &mut bpos);
                            match (node, off) {
                                (Some(n), Some(o)) => Posting {
                                    doc: DocId(q.doc.0.wrapping_add(ddoc)),
                                    node: NodeIdx(n),
                                    offset: o,
                                },
                                _ => return Err(IndexSnapshotError::Corrupt("truncated block")),
                            }
                        }
                    }
                };
                if prev.is_some_and(|q| q >= posting) {
                    return Err(IndexSnapshotError::Corrupt("postings out of order"));
                }
                prev = Some(posting);
                postings.push(posting);
            }
            if bpos != block.len() {
                return Err(IndexSnapshotError::Corrupt("oversized block"));
            }
            let first_ok = postings
                .get(postings.len().wrapping_sub(summary.postings as usize))
                .is_some_and(|p| p.doc.0 == summary.first_doc);
            let last_ok = postings.last().is_some_and(|p| p.doc.0 == summary.last_doc);
            if !first_ok || !last_ok {
                return Err(IndexSnapshotError::Corrupt("block doc bounds mismatch"));
            }
            self.decoded_blocks.fetch_add(1, Ordering::Relaxed);
        }
        if postings.len() != entry.posting_count as usize {
            return Err(IndexSnapshotError::Corrupt("posting count mismatch"));
        }
        tix_invariants::check! {
            // The skip metadata the §4.2 block-max scan trusts must
            // dominate what the postings actually contain.
            let mut totals: Vec<(u32, u32)> = Vec::new();
            for p in &postings {
                match totals.last_mut() {
                    Some(t) if t.0 == p.doc.0 => t.1 = t.1.saturating_add(1),
                    _ => totals.push((p.doc.0, 1)),
                }
            }
            tix_invariants::assert_block_summaries_sound(
                entry.summaries.len(),
                |i| entry
                    .summaries
                    .get(i)
                    .map(|b| (b.first_doc, b.last_doc, b.postings, b.max_doc_count))
                    .unwrap_or((0, 0, 1, u32::MAX)),
                |first, last| {
                    let lo = totals.partition_point(|t| t.0 < first);
                    let hi = totals.partition_point(|t| t.0 <= last);
                    totals
                        .get(lo..hi)
                        .unwrap_or(&[])
                        .iter()
                        .map(|t| t.1)
                        .max()
                        .unwrap_or(0)
                },
            );
        }
        Ok(postings)
    }

    fn postings_by_id(&self, tid: usize) -> &[Posting] {
        let Some(slot) = self.slots.get(tid) else {
            return &[];
        };
        slot.get_or_init(|| {
            self.decoded_terms.fetch_add(1, Ordering::Relaxed);
            match self.decode_term(tid) {
                Ok(postings) => postings,
                Err(err) => {
                    // Unreachable behind the open-time seal: a decode
                    // failure here means a writer bug, not bad input.
                    // Surface it under checks, degrade to an absent term
                    // otherwise.
                    tix_invariants::check! {
                        assert!(false, "sealed pack block failed to decode: {err:?}");
                    }
                    let _ = err;
                    Vec::new()
                }
            }
        })
    }

    /// Materialize the full in-memory representation. Term order, per-term
    /// statistics, and postings all round-trip exactly, so saving the
    /// result as a v2 snapshot is byte-identical to the snapshot of the
    /// index this file was written from.
    pub fn to_inverted(&self) -> Result<InvertedIndex, IndexSnapshotError> {
        let mut lists = Vec::with_capacity(self.terms.len());
        for (tid, (name, entry)) in self.names.iter().zip(&self.terms).enumerate() {
            let postings = self.decode_term(tid)?;
            lists.push((
                name.clone(),
                PostingList::from_sorted_postings(
                    postings,
                    entry.doc_frequency,
                    entry.node_frequency,
                ),
            ));
        }
        Ok(InvertedIndex::from_lists(lists, self.total_tokens))
    }
}

impl IndexReader for PackIndex {
    fn postings(&self, term: &str) -> &[Posting] {
        match self.dictionary.get(term) {
            Some(&tid) => self.postings_by_id(tid as usize),
            None => &[],
        }
    }

    fn term_summary(&self, term: &str) -> Option<TermSummary> {
        let &tid = self.dictionary.get(term)?;
        let entry = self.terms.get(tid as usize)?;
        Some(TermSummary {
            collection_frequency: entry.posting_count as usize,
            doc_frequency: entry.doc_frequency,
            node_frequency: entry.node_frequency,
        })
    }

    fn term_count(&self) -> usize {
        self.terms.len()
    }

    fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    fn doc_frequencies(&self) -> Vec<u32> {
        self.terms.iter().map(|t| t.doc_frequency).collect()
    }

    fn block_summaries(&self, term: &str) -> Option<&[BlockSummary]> {
        let &tid = self.dictionary.get(term)?;
        self.terms.get(tid as usize).map(|t| t.summaries.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::pack_bytes;
    use tix_store::Store;

    fn sample_index() -> InvertedIndex {
        let mut store = Store::new();
        store
            .load_str(
                "a.xml",
                "<a><p>alpha beta alpha gamma</p><p>beta beta delta</p></a>",
            )
            .unwrap();
        store
            .load_str("b.xml", "<a><p>gamma alpha</p><p>epsilon</p></a>")
            .unwrap();
        InvertedIndex::build(&store)
    }

    #[test]
    fn round_trips_postings_and_stats() {
        let index = sample_index();
        let pack = PackIndex::from_bytes(pack_bytes(&index).unwrap()).unwrap();
        assert_eq!(pack.term_count(), index.term_count());
        assert_eq!(pack.total_tokens(), index.total_tokens());
        for stats in index.term_stats() {
            let term = stats.term.as_str();
            assert_eq!(IndexReader::postings(&pack, term), index.postings(term));
            assert_eq!(
                IndexReader::doc_frequency(&pack, term),
                index.doc_frequency(term)
            );
            assert_eq!(
                IndexReader::collection_frequency(&pack, term),
                index.collection_frequency(term)
            );
        }
        assert!(IndexReader::postings(&pack, "absent").is_empty());
    }

    #[test]
    fn open_decodes_nothing_until_first_lookup() {
        let index = sample_index();
        let pack = PackIndex::from_bytes(pack_bytes(&index).unwrap()).unwrap();
        assert_eq!(pack.decoded_terms(), 0);
        assert_eq!(pack.decoded_blocks(), 0);
        let _ = IndexReader::postings(&pack, "alpha");
        assert_eq!(pack.decoded_terms(), 1);
        let _ = IndexReader::postings(&pack, "alpha");
        assert_eq!(pack.decoded_terms(), 1, "repeat lookup re-decoded");
    }

    #[test]
    fn materialization_round_trips_to_identical_v2_snapshot() {
        let index = sample_index();
        let pack = PackIndex::from_bytes(pack_bytes(&index).unwrap()).unwrap();
        let back = pack.to_inverted().unwrap();
        let mut original = Vec::new();
        index.save_snapshot(&mut original).unwrap();
        let mut round = Vec::new();
        back.save_snapshot(&mut round).unwrap();
        assert_eq!(original, round);
    }

    #[test]
    fn block_summaries_bound_doc_counts() {
        let index = sample_index();
        let pack = PackIndex::from_bytes(pack_bytes(&index).unwrap()).unwrap();
        // "beta": 3 occurrences in doc 0 (its max whole-document count).
        let blocks = IndexReader::block_summaries(&pack, "beta").unwrap();
        assert_eq!(blocks.len(), 1);
        let block = blocks.first().unwrap();
        assert_eq!(block.max_doc_count, 3);
        assert_eq!(block.first_doc, 0);
        assert_eq!(block.last_doc, 0);
        assert_eq!(IndexReader::max_doc_count(&pack, "beta"), Some(3));
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let index = sample_index();
        let base = pack_bytes(&index).unwrap();
        for offset in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                if let Some(b) = flipped.get_mut(offset) {
                    *b ^= 1 << bit;
                }
                let err = PackIndex::from_bytes(flipped)
                    .err()
                    .unwrap_or_else(|| panic!("flip at byte {offset} bit {bit} loaded cleanly"));
                match (offset, &err) {
                    (0..=5, IndexSnapshotError::BadMagic) => {}
                    (6, IndexSnapshotError::UnsupportedVersion(_)) => {}
                    (_, IndexSnapshotError::Corrupt(_)) if offset > 6 => {}
                    _ => panic!("flip at byte {offset} bit {bit} mis-classified: {err:?}"),
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let index = sample_index();
        let base = pack_bytes(&index).unwrap();
        for len in 0..base.len() {
            let torn = base.get(..len).unwrap_or(&[]).to_vec();
            assert!(
                PackIndex::from_bytes(torn).is_err(),
                "truncation to {len} bytes loaded cleanly"
            );
        }
    }
}
