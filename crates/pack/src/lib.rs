//! # tix-pack
//!
//! The `TIXPAK` v3 on-disk index format: delta+varint compressed
//! positional postings in fixed-size blocks, each block carrying skip
//! metadata (max DocId) and the block-max WAND statistic
//! (`max_doc_count`, exposed to scorers as `max_score_bits`), framed
//! with the same per-section CRC-32 + whole-file seal discipline as the
//! v2 snapshot (`tix_store::persist`).
//!
//! The format is **loadable by reference**: [`PackIndex`] keeps the raw
//! file bytes, verifies the whole-file seal with one streaming CRC pass,
//! parses only the header and dictionary (O(#terms + #blocks), no
//! posting decode), and decodes each term's blocks lazily on first
//! access. Server startup therefore does not deserialize the posting
//! data at all — the decode counters ([`PackIndex::decoded_terms`],
//! [`PackIndex::decoded_blocks`]) make that property testable.
//!
//! Correctness bar: a [`PackIndex`] must answer every query
//! **byte-identically** (score bits included) to the uncompressed
//! [`tix_index::InvertedIndex`] it was written from — enforced by the
//! differential proptests in `tests/differential.rs` — and any damaged
//! file must be rejected as `Corrupt` at open, never loaded and never a
//! panic (the whole-file seal is checked before any length field is
//! trusted).

mod read;
mod varint;
mod write;

pub use read::PackIndex;
pub use write::{
    convert_v2_to_v3, pack_bytes, write_pack, BLOCK_POSTINGS, PACK_MAGIC, PACK_VERSION,
};
