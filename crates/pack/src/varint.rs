//! LEB128 variable-length integers (the postings delta encoding).

/// Append `value` to `out` as LEB128 (1–5 bytes; 7 payload bits per byte,
/// high bit = continuation).
pub(crate) fn put_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 `u32` from `bytes` at `*pos`, advancing `*pos`.
/// Returns `None` on truncation or a value that overflows 32 bits.
pub(crate) fn get_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos = pos.checked_add(1)?;
        // At shift 28 only the low 4 payload bits fit in a u32, and the
        // continuation bit must be clear.
        if shift == 28 && byte > 0x0F {
            return None;
        }
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 28 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_edge_values() {
        let samples = [0, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX];
        let mut buf = Vec::new();
        for &v in &samples {
            put_u32(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &samples {
            assert_eq!(get_u32(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncation_and_overflow_are_rejected() {
        assert_eq!(get_u32(&[0x80], &mut 0), None);
        assert_eq!(get_u32(&[], &mut 0), None);
        // Six continuation bytes: too many groups for 32 bits.
        assert_eq!(get_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut 0), None);
        // Fifth byte carries bits that overflow a u32.
        assert_eq!(get_u32(&[0xFF, 0xFF, 0xFF, 0xFF, 0x1F], &mut 0), None);
    }
}
