//! Differential property tests for the v3 `TIXPAK` representation: over
//! randomized corpora and randomized insert / remove / checkpoint
//! interleavings, a pack round-trip of the maintained index must answer
//! every query **byte-identically** (score bits included) to the
//! in-memory index — through the block-max pushdown driver and the
//! document-partitioned parallel pipeline at worker-thread counts 1, 2,
//! and 8 — and damaged pack bytes must always be rejected with a typed
//! error (never `Ok`, never a panic).

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use tix::index::{IndexReader, InvertedIndex};
use tix::Database;
use tix_exec::pick::PickParams;
use tix_exec::scored::sort_by_node;
use tix_exec::termjoin::IdfScorer;
use tix_exec::{parallel, pushdown, ScoredNode, SimpleScorer};
use tix_index::IndexSnapshotError;
use tix_pack::{convert_v2_to_v3, pack_bytes, PackIndex};
use tix_store::faultio::FailingWriter;
use tix_store::persist::atomic_write;
use tix_store::Store;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("tix-pack-diff-{}-{name}-{id}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

const NAMES: [&str; 4] = ["a.xml", "b.xml", "c.xml", "d.xml"];
const DOCS: [&str; 4] = [
    "<d><s><p>alpha beta gamma</p></s></d>",
    "<d><p>beta beta delta</p><p>alpha</p></d>",
    "<d><s><p>gamma</p><p>epsilon alpha</p></s></d>",
    "<d><p>zeta alpha alpha</p></d>",
];
const QUERIES: [&[&str]; 5] = [
    &["alpha"],
    &["beta"],
    &["alpha", "beta"],
    &["gamma", "epsilon", "alpha"],
    &["nosuch"],
];

/// Bitwise comparison of two scored-result streams: same nodes, same
/// order, and scores equal as IEEE-754 bit patterns — not approximately.
fn assert_bit_identical(a: &[ScoredNode], b: &[ScoredNode], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: result count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.node, y.node, "{what}: node at {i}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{what}: score bits at {i} ({} vs {})",
            x.score,
            y.score
        );
    }
}

/// Run every query through both representations — pushdown driver (the
/// block-max path on the pack side) and the parallel full pipeline at
/// `threads` workers — and demand bit-identical answers.
fn assert_answers_identical(store: &Store, mem: &InvertedIndex, pack: &PackIndex, threads: usize) {
    let pick = PickParams::paper();
    for (qi, terms) in QUERIES.iter().enumerate() {
        let simple = SimpleScorer::uniform();
        for k in [1, 3, 100] {
            let a =
                pushdown::search_topk(store, mem, terms, &simple, Some(&pick), k, None, &|| false)
                    .unwrap();
            let b =
                pushdown::search_topk(store, pack, terms, &simple, Some(&pick), k, None, &|| false)
                    .unwrap();
            assert_bit_identical(&a.results, &b.results, &format!("q{qi} pushdown k={k}"));
            assert_eq!(
                a.postings_total, b.postings_total,
                "q{qi}: representations disagree on list sizes"
            );
        }
        // The full parallel pipeline (no early exit) at this thread count.
        let full_a = sort_by_node(parallel::term_join_parallel(
            store, mem, terms, &simple, threads,
        ));
        let full_b = sort_by_node(parallel::term_join_parallel(
            store, pack, terms, &simple, threads,
        ));
        assert_bit_identical(&full_a, &full_b, &format!("q{qi} parallel t={threads}"));
        // Idf scoring exercises the trait's idf() on both sides.
        let idf_a = IdfScorer::new(mem, store.doc_count(), terms);
        let idf_b = IdfScorer::new(pack, store.doc_count(), terms);
        let ra = pushdown::search_topk(store, mem, terms, &idf_a, Some(&pick), 5, None, &|| false)
            .unwrap();
        let rb = pushdown::search_topk(store, pack, terms, &idf_b, Some(&pick), 5, None, &|| false)
            .unwrap();
        assert_bit_identical(&ra.results, &rb.results, &format!("q{qi} idf"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized insert / remove / checkpoint interleavings: after every
    /// checkpoint (pack round-trip) the pack must answer bit-identically
    /// to the maintained in-memory index, at worker-thread counts 1, 2,
    /// and 8; installing the pack by reference and mutating on top of it
    /// (materialize-on-write) must keep the index equal to a rebuild.
    #[test]
    fn pack_roundtrip_answers_byte_identical(
        ops in proptest::collection::vec((0u8..10, 0u8..4, 0u8..4), 1..10),
        threads_sel in 0u8..3,
    ) {
        let threads = [1usize, 2, 8][threads_sel as usize % 3];
        let mut db = Database::new();
        db.set_threads(threads);
        db.build_index();
        for (step, &(kind, name_i, doc_i)) in ops.iter().enumerate() {
            let name = NAMES[name_i as usize % NAMES.len()];
            match kind % 10 {
                0..=4 => {
                    let _ = db.insert_document(name, DOCS[doc_i as usize % DOCS.len()]);
                }
                5..=7 => {
                    let _ = db.remove_document(name);
                }
                _ => {
                    // Checkpoint: pack the maintained index, reopen it by
                    // reference, compare answers, install it into the
                    // database (the next mutation materializes it).
                    // Consecutive checkpoints leave the db pack-backed;
                    // materialize to get the reference index either way.
                    let materialized;
                    let mem: &InvertedIndex = match db.mem_index() {
                        Some(mem) => mem,
                        None => {
                            materialized = db
                                .pack_index()
                                .expect("index present")
                                .to_inverted()
                                .expect("installed pack decodes");
                            &materialized
                        }
                    };
                    let bytes = pack_bytes(mem).unwrap();
                    let pack = PackIndex::from_bytes(bytes).unwrap();
                    assert_answers_identical(db.store(), mem, &pack, threads);
                    db.set_pack_index(pack);
                }
            }
            prop_assert!(db.has_index(), "step {step} lost the index");
        }
        // Final comparison: whatever representation the workload ended
        // on, pack the rebuild and compare against it.
        let rebuilt = InvertedIndex::build_with_threads(db.store(), threads);
        let pack = PackIndex::from_bytes(pack_bytes(&rebuilt).unwrap()).unwrap();
        assert_answers_identical(db.store(), &rebuilt, &pack, threads);
        // And the pack materializes back to the exact same index bytes.
        let mut a = Vec::new();
        rebuilt.save_snapshot(&mut a).unwrap();
        let mut b = Vec::new();
        pack.to_inverted().unwrap().save_snapshot(&mut b).unwrap();
        prop_assert_eq!(a, b, "pack materialization diverged from source");
    }

    /// The v2 → v3 converter round-trips: converting a v2 snapshot and
    /// materializing the result reproduces the v2 bytes exactly, and the
    /// converted pack answers queries bit-identically.
    #[test]
    fn converter_roundtrip_preserves_answers(
        ops in proptest::collection::vec((0u8..8, 0u8..4, 0u8..4), 1..8),
    ) {
        let mut db = Database::new();
        db.build_index();
        for &(kind, name_i, doc_i) in &ops {
            let name = NAMES[name_i as usize % NAMES.len()];
            if kind % 8 < 5 {
                let _ = db.insert_document(name, DOCS[doc_i as usize % DOCS.len()]);
            } else {
                let _ = db.remove_document(name);
            }
        }
        let mem = db.mem_index().unwrap();
        let mut v2 = Vec::new();
        mem.save_snapshot(&mut v2).unwrap();
        let v3 = convert_v2_to_v3(&v2).unwrap();
        let pack = PackIndex::from_bytes(v3).unwrap();
        assert_answers_identical(db.store(), mem, &pack, 2);
        let mut back = Vec::new();
        pack.to_inverted().unwrap().save_snapshot(&mut back).unwrap();
        prop_assert_eq!(v2, back, "v2 -> v3 -> v2 is not the identity");
    }
}

// ---- fault-injection sweeps (deterministic, exhaustive) -----------------

fn sample_pack_bytes() -> Vec<u8> {
    let mut store = Store::new();
    store
        .load_str("a.xml", "<a><p>alpha beta alpha</p><p>gamma beta</p></a>")
        .unwrap();
    store.load_str("b.xml", "<a><p>beta alpha</p></a>").unwrap();
    pack_bytes(&InvertedIndex::build(&store)).unwrap()
}

/// Pack magic is 6 bytes, version byte sits at offset 6; everything past
/// it is covered by section checksums and the whole-file seal.
fn assert_flip_rejected(err: &IndexSnapshotError, offset: usize, bit: u8) {
    match (offset, err) {
        (0..=5, IndexSnapshotError::BadMagic) => {}
        (6, IndexSnapshotError::UnsupportedVersion(_)) => {}
        (_, IndexSnapshotError::Corrupt(_)) if offset > 6 => {}
        _ => panic!("flip at byte {offset} bit {bit} mis-classified: {err:?}"),
    }
}

#[test]
fn every_single_bit_flip_in_a_pack_is_rejected() {
    let base = sample_pack_bytes();
    for offset in 0..base.len() {
        for bit in 0..8u8 {
            let mut flipped = base.clone();
            flipped[offset] ^= 1 << bit;
            let err = PackIndex::from_bytes(flipped)
                .err()
                .unwrap_or_else(|| panic!("flip at byte {offset} bit {bit} loaded cleanly"));
            assert_flip_rejected(&err, offset, bit);
        }
    }
}

#[test]
fn every_truncation_of_a_pack_is_rejected() {
    let base = sample_pack_bytes();
    for cut in 0..base.len() {
        assert!(
            PackIndex::from_bytes(base[..cut].to_vec()).is_err(),
            "v3 prefix of {cut} bytes loaded successfully"
        );
    }
    let mut extended = base.clone();
    extended.push(0);
    assert!(PackIndex::from_bytes(extended).is_err());
}

#[test]
fn torn_pack_write_preserves_committed_file_at_every_offset() {
    let dir = tmp_dir("torn");
    let path = dir.join("corpus.idx");
    let committed = sample_pack_bytes();
    atomic_write::<io::Error, _>(&path, |w| w.write_all(&committed)).unwrap();

    let mut store = Store::new();
    store
        .load_str("c.xml", "<r><p>delta epsilon</p></r>")
        .unwrap();
    let replacement = pack_bytes(&InvertedIndex::build(&store)).unwrap();

    for limit in 0..replacement.len() {
        let torn = atomic_write::<io::Error, _>(&path, |w| {
            let mut failing = FailingWriter::fail_after(w, limit as u64);
            failing.write_all(&replacement)
        });
        assert!(
            torn.is_err(),
            "write crashed after {limit} bytes yet committed"
        );
        assert_eq!(
            fs::read(&path).unwrap(),
            committed,
            "crash after {limit} bytes damaged the committed pack"
        );
    }
    // The committed file still opens and answers.
    let pack = PackIndex::open(&path).unwrap();
    assert!(pack.term_count() > 0);
}

/// Cold start is O(metadata): opening a pack decodes no posting blocks,
/// the first query decodes exactly its own terms, and the decode
/// counters prove the rest of the file was never touched — the server
/// cold-start property, asserted at the library layer.
#[test]
fn first_query_decodes_only_its_own_terms() {
    use tix_corpus::{CorpusSpec, Generator, PlantSpec};

    let spec = CorpusSpec::small();
    let plants = PlantSpec::default()
        .with_term("needle", 40)
        .with_term("haystack", 200);
    let generator = Generator::new(spec, plants).unwrap();
    let mut store = Store::new();
    generator.load_into(&mut store).unwrap();
    let mem = InvertedIndex::build(&store);

    let dir = tmp_dir("cold");
    let path = dir.join("corpus.idx");
    atomic_write::<io::Error, _>(&path, |w| w.write_all(&pack_bytes(&mem).unwrap())).unwrap();

    let pack = PackIndex::open(&path).unwrap();
    assert_eq!(pack.decoded_terms(), 0, "open must not decode postings");
    assert_eq!(pack.decoded_blocks(), 0);

    let pick = PickParams::paper();
    let scorer = SimpleScorer::uniform();
    let terms = ["needle", "haystack"];
    let run = pushdown::search_topk(
        &store,
        &pack,
        &terms,
        &scorer,
        Some(&pick),
        5,
        None,
        &|| false,
    )
    .unwrap();
    let full = pushdown::search_topk(&store, &mem, &terms, &scorer, Some(&pick), 5, None, &|| {
        false
    })
    .unwrap();
    assert_bit_identical(&run.results, &full.results, "cold-start query");

    assert_eq!(
        pack.decoded_terms(),
        2,
        "first query must decode exactly its own terms"
    );
    assert!(
        pack.decoded_blocks() < pack.total_blocks(),
        "query decoded every block ({} of {})",
        pack.decoded_blocks(),
        pack.total_blocks()
    );
}
