//! # tix-core
//!
//! The **TIX algebra** — the primary contribution of *"Querying Structured
//! Text in an XML Database"* (SIGMOD 2003): a bulk algebra over collections
//! of **scored ordered labeled trees** that folds information-retrieval
//! relevance scoring into a database-style query framework.
//!
//! The pieces map one-to-one onto the paper's Section 3:
//!
//! | Paper concept               | Type here                                  |
//! |-----------------------------|--------------------------------------------|
//! | Scored data tree (Def. 1)   | [`ScoredTree`]                             |
//! | Scored pattern tree (Def. 2)| [`PatternTree`] = (T, F, S)                |
//! | Scored selection σ          | [`ops::select`]                            |
//! | Scored projection π         | [`ops::project`]                           |
//! | Scored join ⨝ / product ×   | [`ops::join`]                              |
//! | Threshold τ (new)           | [`ops::threshold`]                         |
//! | Pick ρ (new)                | [`ops::pick`]                              |
//! | Fig. 9 user functions       | [`scoring::paper`] (`ScoreFoo`, `ScoreSim`, `ScoreBar`, `PickFoo`) |
//!
//! Scored trees do not copy document content: they reference nodes in a
//! [`tix_store::Store`] and carry scores alongside, so operators stay cheap
//! and the store stays shared and immutable.
//!
//! The reference implementations here favour clarity and serve as the
//! correctness oracle; the pipelined access methods that make them fast
//! (TermJoin, PhraseFinder, the stack-based Pick) live in `tix-exec` and are
//! differential-tested against these.
//!
//! ```
//! use tix_core::{pattern::{EdgeKind, PatternTree, Predicate}, ops, Collection};
//! use tix_core::scoring::paper::ScoreFoo;
//! use tix_store::Store;
//! use std::sync::Arc;
//!
//! let mut store = Store::new();
//! store.load_str("d.xml", "<article><p>rust databases</p><p>other</p></article>").unwrap();
//!
//! // Pattern: $1 = article, $2 =ad*= any element, scored by ScoreFoo.
//! let mut pattern = PatternTree::new();
//! let root = pattern.add_root(Predicate::tag("article"));
//! let unit = pattern.add_child(root, EdgeKind::SelfOrDescendant, Predicate::True);
//! pattern.score_primary(unit, ScoreFoo::shared(&["rust databases"], &[]));
//! pattern.score_from_descendant(root, unit);
//!
//! let input = Collection::documents(&store);
//! let result = ops::select(&store, &input, &pattern);
//! assert!(!result.is_empty());
//! ```

pub mod collection;
pub mod histogram;
pub mod matching;
pub mod ops;
pub mod pattern;
pub mod scored_tree;
pub mod scoring;

pub use collection::Collection;
pub use pattern::{PatternNodeId, PatternTree};
pub use scored_tree::{NodeSource, ScoredTree, TreeEntry};
