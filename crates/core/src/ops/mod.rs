//! The TIX operators (Sec. 3.2 and 3.3 of the paper).
//!
//! Every operator consumes and produces a [`Collection`](crate::Collection)
//! of scored trees, giving algebraic closure. The extended classical
//! operators are [`select`], [`project`], and [`join`]/[`product`]; the two
//! operators the paper introduces for IR-style processing are
//! [`threshold`] and [`pick`].

mod group;
mod join;
mod pick;
mod project;
mod select;
mod threshold;

pub use group::{group_order_by_score, retain_leftmost, GROUP_ROOT_TAG};
pub use join::{join, product, JoinCondition};
pub use pick::{horizontal_pick, pick, picked_entries, FractionPick, PickCriterion};
pub use project::project;
pub use select::select;
pub use threshold::{threshold, ThresholdCond};

use crate::pattern::{ScoreInput, ScoreRule};
use crate::scored_tree::ScoredTree;
use crate::scoring::ScoreContext;

/// Apply the derived (non-primary) scoring rules of `S` to a tree:
/// secondary IR-nodes (`FromDescendant`) and general combinations
/// (`Combined`). `Primary` and `Join` rules are evaluated by the operators
/// themselves at match time and are skipped here.
///
/// Derived scores are *dynamic*: operators that change the set of matching
/// IR-nodes (notably Pick, Sec. 3.3.2) re-invoke this to refresh them.
pub fn apply_derived_rules(_ctx: &ScoreContext<'_>, tree: &mut ScoredTree, rules: &[ScoreRule]) {
    for rule in rules {
        match rule {
            ScoreRule::Primary { .. } | ScoreRule::Join { .. } => {}
            ScoreRule::FromDescendant { node, source, agg } => {
                let derived = agg.apply(tree.bound(*source).filter_map(|(_, e)| e.score));
                if let Some(score) = derived {
                    for entry in tree.entries_mut() {
                        if entry.vars.contains(node) {
                            entry.score = Some(score);
                        }
                    }
                }
            }
            ScoreRule::Combined {
                node,
                inputs,
                combine,
            } => {
                let values: Vec<f64> = inputs
                    .iter()
                    .map(|input| match input {
                        ScoreInput::Var(var, agg) => agg
                            .apply(tree.bound(*var).filter_map(|(_, e)| e.score))
                            .unwrap_or(0.0),
                        ScoreInput::Aux(var) => tree.aux(*var).unwrap_or(0.0),
                    })
                    .collect();
                let score = combine(&values);
                for entry in tree.entries_mut() {
                    if entry.vars.contains(node) {
                        entry.score = Some(score);
                    }
                }
            }
        }
    }
}
