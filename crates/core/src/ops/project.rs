//! Scored projection — π_{P,PL}(C) (Sec. 3.2.2).

use std::collections::HashMap;

use tix_store::{NodeRef, Store};

use crate::collection::Collection;
use crate::matching::matches;
use crate::pattern::{PatternNodeId, PatternTree};
use crate::scored_tree::ScoredTree;
use crate::scoring::ScoreContext;

use super::apply_derived_rules;

/// Scored projection: one output tree per input tree with at least one
/// pattern match, containing exactly the data nodes bound to variables in
/// the projection list `pl` (union over all matches, deduplicated), linked
/// by nearest-retained-ancestor.
///
/// Scoring follows Sec. 3.2.2: nodes matching primary IR-nodes are scored
/// independently by the scoring function; nodes matching secondary
/// IR-nodes get "the highest score [they] can possibly achieve" over the
/// retained matches. Zero-scored IR nodes are removed (Fig. 6's
/// parenthetical), unless they are also bound to a non-IR variable in `pl`.
pub fn project(
    store: &Store,
    input: &Collection,
    pattern: &PatternTree,
    pl: &[PatternNodeId],
) -> Collection {
    let ctx = ScoreContext::new(store);
    project_with_ctx(&ctx, input, pattern, pl)
}

/// [`project`] with an explicit scoring context.
pub fn project_with_ctx(
    ctx: &ScoreContext<'_>,
    input: &Collection,
    pattern: &PatternTree,
    pl: &[PatternNodeId],
) -> Collection {
    let store = ctx.store;
    let mut out = Collection::new();
    for tree in input.iter() {
        for root_entry in tree.entries().iter().filter(|e| e.parent.is_none()) {
            let Some(scope) = root_entry.source.stored() else {
                continue;
            };
            let bindings = matches(store, pattern, scope);
            if bindings.is_empty() {
                continue;
            }
            // Union of retained (node, var) pairs across matches.
            let mut vars_by_node: HashMap<NodeRef, Vec<PatternNodeId>> = HashMap::new();
            for binding in &bindings {
                for (pnode, &data) in pattern.nodes().iter().zip(binding) {
                    if !pl.contains(&pnode.id) {
                        continue;
                    }
                    let vars = vars_by_node.entry(data).or_default();
                    if !vars.contains(&pnode.id) {
                        vars.push(pnode.id);
                    }
                }
            }
            // Score each retained node: primary scorers run once per node.
            // A node scoring zero keeps its place only if it is also bound
            // to some non-IR variable in PL (like the paper's sname, which
            // appears in Fig. 6 unscored); otherwise it is removed — the
            // "(zero-score nodes are removed)" rule.
            let mut nodes: Vec<(NodeRef, Option<f64>, Vec<PatternNodeId>)> = Vec::new();
            for (node, vars) in vars_by_node {
                let score = vars
                    .iter()
                    .find_map(|&v| pattern.eval_primary(ctx, v, node));
                let has_non_ir = vars.iter().any(|&v| !pattern.is_ir_node(v));
                match score {
                    Some(0.0) => {
                        if has_non_ir {
                            nodes.push((node, None, vars));
                        }
                    }
                    other => nodes.push((node, other, vars)),
                }
            }
            let mut projected = ScoredTree::from_stored(store, nodes);
            apply_derived_rules(ctx, &mut projected, pattern.rules());
            if !projected.is_empty() {
                out.push(projected);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{EdgeKind, Predicate};
    use crate::scoring::paper::ScoreFoo;

    struct Fixture {
        store: Store,
        pattern: PatternTree,
        n1: PatternNodeId,
        n3: PatternNodeId,
        n4: PatternNodeId,
    }

    fn fixture() -> Fixture {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<article><author><sname>Doe</sname></author>\
                 <sec><p>search engine overview</p><p>nothing</p></sec></article>",
            )
            .unwrap();
        let mut pattern = PatternTree::new();
        let n1 = pattern.add_root(Predicate::tag("article"));
        let n2 = pattern.add_child(n1, EdgeKind::Child, Predicate::tag("author"));
        let n3 = pattern.add_child(
            n2,
            EdgeKind::Child,
            Predicate::And(vec![Predicate::tag("sname"), Predicate::content_eq("Doe")]),
        );
        let n4 = pattern.add_child(n1, EdgeKind::SelfOrDescendant, Predicate::True);
        pattern.score_primary(n4, ScoreFoo::shared(&["search engine"], &[]));
        pattern.score_from_descendant(n1, n4);
        Fixture {
            store,
            pattern,
            n1,
            n3,
            n4,
        }
    }

    #[test]
    fn single_tree_per_input() {
        let f = fixture();
        let input = Collection::documents(&f.store);
        let result = project(&f.store, &input, &f.pattern, &[f.n1, f.n3, f.n4]);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn zero_scored_ir_nodes_removed() {
        let f = fixture();
        let input = Collection::documents(&f.store);
        let result = project(&f.store, &input, &f.pattern, &[f.n1, f.n3, f.n4]);
        let tree = &result.trees()[0];
        // Retained: article ($1 and $4, score>0 via subtree), sname ($3),
        // sec (0.8), p (0.8). The zero-scored second p, and author (not in
        // PL), are gone.
        let tags: Vec<Option<&str>> = tree
            .entries()
            .iter()
            .map(|e| e.source.stored().and_then(|n| f.store.tag_name(n)))
            .collect();
        assert_eq!(
            tags,
            vec![Some("article"), Some("sname"), Some("sec"), Some("p")]
        );
    }

    #[test]
    fn secondary_score_is_max() {
        let f = fixture();
        let input = Collection::documents(&f.store);
        let result = project(&f.store, &input, &f.pattern, &[f.n1, f.n4]);
        let tree = &result.trees()[0];
        // article subtree contains "search engine" once → its own $4 score
        // is 0.8; sec and p also 0.8 → max is 0.8.
        assert_eq!(tree.score(), Some(0.8));
    }

    #[test]
    fn non_ir_nodes_keep_null_score() {
        let f = fixture();
        let input = Collection::documents(&f.store);
        let result = project(&f.store, &input, &f.pattern, &[f.n1, f.n3, f.n4]);
        let tree = &result.trees()[0];
        let sname = tree
            .entries()
            .iter()
            .find(|e| e.bound_to(f.n3))
            .expect("sname retained");
        assert_eq!(sname.score, None);
    }

    #[test]
    fn no_matches_no_output() {
        let f = fixture();
        let mut store2 = Store::new();
        store2.load_str("o.xml", "<other/>").unwrap();
        let input = Collection::documents(&store2);
        let result = project(&store2, &input, &f.pattern, &[f.n1]);
        assert!(result.is_empty());
    }

    #[test]
    fn pl_filters_vars() {
        let f = fixture();
        let input = Collection::documents(&f.store);
        // Only $3 in PL: output is just the sname node.
        let result = project(&f.store, &input, &f.pattern, &[f.n3]);
        let tree = &result.trees()[0];
        assert_eq!(tree.len(), 1);
        assert!(tree.entries()[0].bound_to(f.n3));
    }
}
