//! Scored product and join — C₁ × C₂ and C₁ ⨝′ C₂ (Sec. 3.2.3).

use std::sync::Arc;

use crate::collection::Collection;
use crate::pattern::{PatternNodeId, ScoreRule};
use crate::scored_tree::{NodeSource, ScoredTree, TreeEntry};
use crate::scoring::{JoinScorer, ScoreContext};

use super::apply_derived_rules;

/// A scored join condition: evaluate `scorer` between the nodes bound to
/// `left` (from the first collection) and `right` (from the second). The
/// best pair's score is attached to the output tree as the auxiliary
/// variable `output` (the paper's `$joinScore`). If `min_score` is set,
/// pairs that never reach it are dropped (an *IR value join* — Ex. 5.1).
pub struct JoinCondition {
    /// Variable bound in the left input's trees.
    pub left: PatternNodeId,
    /// Variable bound in the right input's trees.
    pub right: PatternNodeId,
    /// The similarity function.
    pub scorer: Arc<dyn JoinScorer>,
    /// Auxiliary variable receiving the join score.
    pub output: PatternNodeId,
    /// Minimum join score for the pair to survive, if any.
    pub min_score: Option<f64>,
}

/// The tag of the synthesized product root (the paper's `tix_prod_root`).
pub const PROD_ROOT_TAG: &str = "tix_prod_root";

/// Graft `tree`'s entries under a new synthetic root at index 0 of `out`.
fn graft(out: &mut ScoredTree, tree: &ScoredTree) {
    let offset = out.len() as u32;
    for entry in tree.entries() {
        let mut entry = entry.clone();
        entry.parent = Some(match entry.parent {
            Some(p) => p + offset,
            None => 0, // attach old roots to the synthetic root
        });
        out.push_entry(entry);
    }
}

/// The product: every pair of trees from the two inputs, joined under a
/// fresh `tix_prod_root` element bound to `root_var`.
pub fn product(c1: &Collection, c2: &Collection, root_var: PatternNodeId) -> Collection {
    let mut out = Collection::new();
    for t1 in c1.iter() {
        for t2 in c2.iter() {
            let mut tree = ScoredTree::new();
            tree.push_entry(TreeEntry {
                source: NodeSource::Synthetic(PROD_ROOT_TAG.to_string()),
                score: None,
                parent: None,
                vars: vec![root_var],
            });
            graft(&mut tree, t1);
            graft(&mut tree, t2);
            out.push(tree);
        }
    }
    out
}

/// Scored join: a selection over the product (Sec. 3.2.3). For each
/// surviving pair, every condition's best score is attached as an auxiliary
/// variable, and `root_rules` (e.g. `$1.score = ScoreBar($joinScore,
/// $6.score)`) then derive the root's score.
pub fn join(
    ctx: &ScoreContext<'_>,
    c1: &Collection,
    c2: &Collection,
    conditions: &[JoinCondition],
    root_var: PatternNodeId,
    root_rules: &[ScoreRule],
) -> Collection {
    let mut out = Collection::new();
    for t1 in c1.iter() {
        'pair: for t2 in c2.iter() {
            // Evaluate all conditions on the pair first (cheap reject).
            let mut aux = Vec::with_capacity(conditions.len());
            for cond in conditions {
                let mut best: Option<f64> = None;
                for (_, le) in t1.bound(cond.left) {
                    let Some(ln) = le.source.stored() else {
                        continue;
                    };
                    for (_, re) in t2.bound(cond.right) {
                        let Some(rn) = re.source.stored() else {
                            continue;
                        };
                        let s = cond.scorer.score(ctx, ln, rn);
                        best = Some(best.map_or(s, |b: f64| b.max(s)));
                    }
                }
                let score = match best {
                    Some(s) => s,
                    None => continue 'pair, // a condition variable was unbound
                };
                if let Some(min) = cond.min_score {
                    if score <= min {
                        continue 'pair;
                    }
                }
                aux.push((cond.output, score));
            }
            let mut tree = ScoredTree::new();
            tree.push_entry(TreeEntry {
                source: NodeSource::Synthetic(PROD_ROOT_TAG.to_string()),
                score: None,
                parent: None,
                vars: vec![root_var],
            });
            graft(&mut tree, t1);
            graft(&mut tree, t2);
            for (var, score) in aux {
                tree.set_aux(var, score);
            }
            apply_derived_rules(ctx, &mut tree, root_rules);
            out.push(tree);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Agg, PatternTree, Predicate, ScoreInput};
    use crate::scoring::paper::{score_bar_combiner, ScoreSim};
    use tix_store::Store;

    fn fixture() -> (Store, Collection, Collection, PatternNodeId, PatternNodeId) {
        let mut store = Store::new();
        store
            .load_str(
                "articles.xml",
                "<article><article-title>Internet Technologies</article-title>\
                 <p>search engine overview</p></article>",
            )
            .unwrap();
        store
            .load_str(
                "reviews.xml",
                "<reviews><review><title>Internet Technologies</title></review>\
                 <review><title>Cooking Basics</title></review></reviews>",
            )
            .unwrap();

        // Left: article with its title ($2=article, $3=title, $6=unit).
        let mut left = PatternTree::new();
        let a = left.add_root(Predicate::tag("article"));
        let at = left.add_child(
            a,
            crate::pattern::EdgeKind::Child,
            Predicate::tag("article-title"),
        );
        let unit = left.add_child(
            a,
            crate::pattern::EdgeKind::SelfOrDescendant,
            Predicate::True,
        );
        left.score_primary(
            unit,
            crate::scoring::paper::ScoreFoo::shared(&["search engine"], &[]),
        );
        let c1 = crate::ops::select(&store, &Collection::documents(&store), &left);
        let _ = (at, unit);

        // Right: reviews with titles.
        let mut right = PatternTree::new();
        let r = right.add_root(Predicate::tag("review"));
        let rt = right.add_child(r, crate::pattern::EdgeKind::Child, Predicate::tag("title"));
        let c2 = crate::ops::select(&store, &Collection::documents(&store), &right);
        let _ = rt;

        (store, c1, c2, at, rt)
    }

    #[test]
    fn product_pairs_everything() {
        let (_store, c1, c2, _, _) = fixture();
        let root_var = PatternNodeId(100);
        let prod = product(&c1, &c2, root_var);
        assert_eq!(prod.len(), c1.len() * c2.len());
        for tree in prod.iter() {
            let root = &tree.entries()[0];
            assert_eq!(root.source, NodeSource::Synthetic(PROD_ROOT_TAG.into()));
            assert!(root.bound_to(root_var));
        }
    }

    #[test]
    fn join_scores_and_filters() {
        let (store, c1, c2, at, rt) = fixture();
        let ctx = ScoreContext::new(&store);
        let root_var = PatternNodeId(100);
        let join_score = PatternNodeId(101);
        let conditions = [JoinCondition {
            left: at,
            right: rt,
            scorer: Arc::new(ScoreSim),
            output: join_score,
            min_score: Some(1.0),
        }];
        let result = join(&ctx, &c1, &c2, &conditions, root_var, &[]);
        // Left side has 3 witnesses ($6 over article, article-title, p);
        // only the "Internet Technologies" review survives min_score=1
        // ("Cooking Basics" shares 0 words; "Internet Technologies" shares 2).
        assert_eq!(result.len(), c1.len());
        for tree in result.iter() {
            assert_eq!(tree.aux(join_score), Some(2.0));
        }
    }

    #[test]
    fn join_root_rules_combine() {
        let (store, c1, c2, at, rt) = fixture();
        let ctx = ScoreContext::new(&store);
        let root_var = PatternNodeId(100);
        let join_score = PatternNodeId(101);
        let unit_var = PatternNodeId(3); // $3 = the ad* unit in `left`
        let conditions = [JoinCondition {
            left: at,
            right: rt,
            scorer: Arc::new(ScoreSim),
            output: join_score,
            min_score: None,
        }];
        let rules = [ScoreRule::Combined {
            node: root_var,
            inputs: vec![
                ScoreInput::Aux(join_score),
                ScoreInput::Var(unit_var, Agg::Max),
            ],
            combine: score_bar_combiner(),
        }];
        let result = join(&ctx, &c1, &c2, &conditions, root_var, &rules);
        // Witness where $3 bound the relevant p (0.8) and review matched
        // with simScore 2.0 → ScoreBar(2.0, 0.8) = 2.8 (the paper's Fig. 7).
        let best = result
            .iter()
            .filter_map(|t| t.score())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((best - 2.8).abs() < 1e-9, "best {best}");
    }

    #[test]
    fn empty_inputs() {
        let (store, c1, _, at, rt) = fixture();
        let ctx = ScoreContext::new(&store);
        let empty = Collection::new();
        let result = join(&ctx, &c1, &empty, &[], PatternNodeId(1), &[]);
        assert!(result.is_empty());
        let _ = (at, rt);
    }
}
