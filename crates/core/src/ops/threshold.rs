//! The Threshold operator — τ_{P,TC}(C) (Sec. 3.3.1).

use crate::collection::Collection;
use crate::pattern::PatternNodeId;

/// One threshold condition over a query IR-node.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdCond {
    /// Keep trees with at least one `var`-bound node scoring **higher than**
    /// `min` (the paper's value condition `V`).
    MinScore {
        /// The query IR-node.
        var: PatternNodeId,
        /// The exclusive lower bound.
        min: f64,
    },
    /// Keep trees with at least one `var`-bound node whose **global rank**
    /// (by score, across all input trees) is within the top `k` (the
    /// paper's rank condition `K`).
    TopK {
        /// The query IR-node.
        var: PatternNodeId,
        /// How many top-ranked nodes qualify.
        k: usize,
    },
}

/// Apply a set of threshold conditions; a tree must satisfy **all** of them
/// to be retained.
pub fn threshold(input: &Collection, conditions: &[ThresholdCond]) -> Collection {
    // Pre-compute rank cutoffs for TopK conditions: the k-th highest score
    // among var-bound nodes across the whole collection.
    let cutoffs: Vec<Option<f64>> = conditions
        .iter()
        .map(|cond| match cond {
            ThresholdCond::TopK { var, k } => {
                let mut scores: Vec<f64> = input
                    .iter()
                    .flat_map(|t| t.bound(*var).filter_map(|(_, e)| e.score))
                    .collect();
                scores.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                if *k == 0 || scores.is_empty() {
                    None
                } else {
                    scores.get((*k - 1).min(scores.len() - 1)).copied()
                }
            }
            ThresholdCond::MinScore { .. } => None,
        })
        .collect();

    let result: Collection = input
        .iter()
        .filter(|tree| {
            conditions
                .iter()
                .zip(&cutoffs)
                .all(|(cond, cutoff)| match cond {
                    ThresholdCond::MinScore { var, min } => tree
                        .bound(*var)
                        .any(|(_, e)| e.score.is_some_and(|s| s > *min)),
                    ThresholdCond::TopK { var, .. } => match cutoff {
                        Some(cut) => tree
                            .bound(*var)
                            .any(|(_, e)| e.score.is_some_and(|s| s >= *cut)),
                        None => false,
                    },
                })
        })
        .cloned()
        .collect();
    // §4.2: every retained tree's best var-bound score must clear the
    // value condition — Threshold may never let a sub-threshold tree
    // through.
    tix_invariants::check! {
        for cond in conditions {
            if let ThresholdCond::MinScore { var, min } = cond {
                tix_invariants::assert_scores_above(
                    result.iter().filter_map(|t| t.max_score(*var)),
                    *min,
                );
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scored_tree::ScoredTree;
    use tix_store::{DocId, NodeIdx, NodeRef, Store};

    fn fixture() -> (Store, Collection, PatternNodeId) {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><b/><c/><d/><e/></a>").unwrap();
        let var = PatternNodeId(4);
        let mk = |i: u32, score: f64| {
            ScoredTree::from_stored(
                &store,
                vec![(NodeRef::new(DocId(0), NodeIdx(i)), Some(score), vec![var])],
            )
        };
        let collection =
            Collection::from_trees(vec![mk(1, 0.5), mk(2, 2.0), mk(3, 5.0), mk(4, 1.0)]);
        (store, collection, var)
    }

    #[test]
    fn min_score_is_exclusive() {
        let (_s, input, var) = fixture();
        let kept = threshold(&input, &[ThresholdCond::MinScore { var, min: 1.0 }]);
        assert_eq!(kept.len(), 2); // 2.0 and 5.0; 1.0 itself is excluded
    }

    #[test]
    fn top_k_global_rank() {
        let (_s, input, var) = fixture();
        let kept = threshold(&input, &[ThresholdCond::TopK { var, k: 2 }]);
        let scores: Vec<_> = kept.iter().map(|t| t.score().unwrap()).collect();
        assert_eq!(scores, vec![2.0, 5.0]); // collection order preserved
    }

    #[test]
    fn top_zero_keeps_nothing() {
        let (_s, input, var) = fixture();
        assert!(threshold(&input, &[ThresholdCond::TopK { var, k: 0 }]).is_empty());
    }

    #[test]
    fn k_larger_than_population_keeps_all() {
        let (_s, input, var) = fixture();
        assert_eq!(
            threshold(&input, &[ThresholdCond::TopK { var, k: 100 }]).len(),
            4
        );
    }

    #[test]
    fn conditions_conjoin() {
        let (_s, input, var) = fixture();
        let kept = threshold(
            &input,
            &[
                ThresholdCond::TopK { var, k: 3 },
                ThresholdCond::MinScore { var, min: 1.5 },
            ],
        );
        assert_eq!(kept.len(), 2); // top-3 = {5.0, 2.0, 1.0}; >1.5 = {5.0, 2.0}
    }

    #[test]
    fn wrong_var_filters_everything() {
        let (_s, input, _) = fixture();
        let other = PatternNodeId(99);
        assert!(threshold(
            &input,
            &[ThresholdCond::MinScore {
                var: other,
                min: 0.0
            }]
        )
        .is_empty());
    }
}
