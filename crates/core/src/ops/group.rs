//! TAX-style grouping (inherited from the algebra TIX extends).
//!
//! The paper uses grouping once, to *define* rank-based thresholding
//! (Sec. 3.3.1): "[K-based thresholding] requires a grouping on the data
//! IR-nodes using an empty grouping basis with the ordering function based
//! on the score. A projection is then applied to retain the leftmost K
//! subtrees, which correspond to the top-K results." This module makes
//! that construction executable, and the unit tests verify it is
//! equivalent to the dedicated Threshold operator.

use crate::collection::Collection;
use crate::pattern::PatternNodeId;
use crate::scored_tree::{NodeSource, ScoredTree, TreeEntry};

/// The tag of the synthesized group root.
pub const GROUP_ROOT_TAG: &str = "tix_group_root";

/// Group with an **empty grouping basis**: every input tree becomes a
/// subtree of one synthetic group root (bound to `group_var`), ordered by
/// descending score of each tree's best `var`-bound entry. Trees without a
/// scored `var` binding sort last, in input order.
pub fn group_order_by_score(
    input: &Collection,
    var: PatternNodeId,
    group_var: PatternNodeId,
) -> ScoredTree {
    let mut order: Vec<usize> = (0..input.len()).collect();
    let key = |i: usize| input.trees().get(i).and_then(|t| t.max_score(var));
    order.sort_by(|&a, &b| match (key(a), key(b)) {
        (Some(x), Some(y)) => y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.cmp(&b),
    });
    let mut grouped = ScoredTree::new();
    grouped.push_entry(TreeEntry {
        source: NodeSource::Synthetic(GROUP_ROOT_TAG.to_string()),
        score: None,
        parent: None,
        vars: vec![group_var],
    });
    for i in order {
        let Some(tree) = input.trees().get(i) else {
            continue;
        };
        let offset = grouped.len() as u32;
        for entry in tree.entries() {
            let mut entry = entry.clone();
            entry.parent = Some(match entry.parent {
                Some(p) => p + offset,
                None => 0,
            });
            grouped.push_entry(entry);
        }
    }
    grouped
}

/// The complementary projection: split a grouped tree back into its
/// member subtrees, keeping only the **leftmost `k`** (the top-K results
/// when the group was score-ordered).
pub fn retain_leftmost(grouped: &ScoredTree, k: usize) -> Collection {
    let mut out = Collection::new();
    // Member subtrees are the children of entry 0, in entry order.
    let mut member_starts: Vec<usize> = grouped
        .entries()
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, e)| e.parent == Some(0))
        .map(|(i, _)| i)
        .collect();
    member_starts.truncate(k);
    for &start in &member_starts {
        // A member spans from its root entry to the next entry whose parent
        // chain does not include it; since grafting kept each input tree
        // contiguous, the member is the maximal contiguous run of entries
        // whose ancestor chain reaches `start`.
        let mut members = vec![start];
        for i in (start + 1)..grouped.len() {
            let mut cursor = grouped.entries().get(i).and_then(|e| e.parent);
            let mut inside = false;
            while let Some(p) = cursor {
                if p as usize == start {
                    inside = true;
                    break;
                }
                if p == 0 {
                    break;
                }
                cursor = grouped.entries().get(p as usize).and_then(|e| e.parent);
            }
            if inside {
                members.push(i);
            } else {
                break;
            }
        }
        let mut tree = ScoredTree::new();
        for &m in &members {
            let Some(entry) = grouped.entries().get(m) else {
                continue;
            };
            let mut entry = entry.clone();
            entry.parent = entry.parent.and_then(|p| {
                members
                    .iter()
                    .position(|&x| x == p as usize)
                    .map(|pos| pos as u32)
            });
            tree.push_entry(entry);
        }
        out.push(tree);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{threshold, ThresholdCond};
    use tix_store::{DocId, NodeIdx, NodeRef, Store};

    fn fixture() -> (Store, Collection, PatternNodeId) {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><b/><c/><d/><e/></a>").unwrap();
        let var = PatternNodeId(4);
        let mk = |i: u32, score: f64| {
            ScoredTree::from_stored(
                &store,
                vec![(NodeRef::new(DocId(0), NodeIdx(i)), Some(score), vec![var])],
            )
        };
        let coll = Collection::from_trees(vec![mk(1, 0.5), mk(2, 2.0), mk(3, 5.0), mk(4, 1.0)]);
        (store, coll, var)
    }

    #[test]
    fn grouping_orders_by_score() {
        let (_s, input, var) = fixture();
        let grouped = group_order_by_score(&input, var, PatternNodeId(9));
        // Root + 4 single-entry members, ordered 5.0, 2.0, 1.0, 0.5.
        assert_eq!(grouped.len(), 5);
        let scores: Vec<f64> = grouped.entries()[1..]
            .iter()
            .map(|e| e.score.unwrap())
            .collect();
        assert_eq!(scores, vec![5.0, 2.0, 1.0, 0.5]);
    }

    #[test]
    fn group_then_leftmost_equals_topk_threshold() {
        // The paper's claim: grouping + leftmost-K projection ≡ the
        // Threshold operator's K condition.
        let (_s, input, var) = fixture();
        let grouped = group_order_by_score(&input, var, PatternNodeId(9));
        let via_group = retain_leftmost(&grouped, 2);
        let via_threshold = threshold(&input, &[ThresholdCond::TopK { var, k: 2 }]);
        // Same member sets (grouping reorders; threshold keeps input order).
        let mut a: Vec<Option<f64>> = via_group.iter().map(|t| t.score()).collect();
        let mut b: Vec<Option<f64>> = via_threshold.iter().map(|t| t.score()).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn leftmost_with_multi_entry_members() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><b><c/></b><d/></a>").unwrap();
        let var = PatternNodeId(4);
        let t1 = ScoredTree::from_stored(
            &store,
            vec![
                (NodeRef::new(DocId(0), NodeIdx(1)), Some(3.0), vec![var]),
                (NodeRef::new(DocId(0), NodeIdx(2)), Some(1.0), vec![var]),
            ],
        );
        let t2 = ScoredTree::from_stored(
            &store,
            vec![(NodeRef::new(DocId(0), NodeIdx(3)), Some(9.0), vec![var])],
        );
        let input = Collection::from_trees(vec![t1, t2]);
        let grouped = group_order_by_score(&input, var, PatternNodeId(9));
        let top1 = retain_leftmost(&grouped, 1);
        assert_eq!(top1.len(), 1);
        // The 9.0 member wins and is a single entry.
        assert_eq!(top1.trees()[0].len(), 1);
        assert_eq!(top1.trees()[0].score(), Some(9.0));
        // k larger than members returns everything, structure intact.
        let all = retain_leftmost(&grouped, 10);
        assert_eq!(all.len(), 2);
        assert_eq!(all.trees()[1].len(), 2); // b→c member kept both entries
        assert_eq!(all.trees()[1].entries()[1].parent, Some(0));
    }

    #[test]
    fn empty_collection() {
        let input = Collection::new();
        let grouped = group_order_by_score(&input, PatternNodeId(4), PatternNodeId(9));
        assert_eq!(grouped.len(), 1); // just the group root
        assert!(retain_leftmost(&grouped, 3).is_empty());
    }
}
