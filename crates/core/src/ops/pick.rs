//! The Pick operator — ρ_{P,PC,AD}(C) (Sec. 3.3.2): result-granularity
//! control by redundancy elimination.
//!
//! This module holds the **reference implementation**: a direct, top-down
//! evaluation of the pick criterion. The efficient single-pass stack-based
//! access method of the paper's Fig. 12 lives in `tix-exec::pick` and is
//! differential-tested against this one.

use crate::collection::Collection;
use crate::pattern::{PatternNodeId, ScoreRule};
use crate::scored_tree::ScoredTree;
use crate::scoring::{count_f64, ScoreContext};

use super::apply_derived_rules;

/// A pick criterion `PC`: decides which data IR-nodes are worth returning.
///
/// The decision is *non-local* — "Pick needs information that may reside
/// elsewhere in the data tree" — which is why the trait sees the whole
/// scored tree and the entry's retained children rather than a single node.
pub trait PickCriterion: Send + Sync {
    /// Is this entry itself relevant? (The paper's example: score ≥ 0.8.)
    fn is_relevant(&self, tree: &ScoredTree, idx: usize) -> bool;

    /// Is this entry worth returning, given its retained children?
    /// (The paper's example: more than 50 % of children relevant; for a
    /// leaf, its own relevance.)
    fn is_worth(&self, tree: &ScoredTree, idx: usize, children: &[usize]) -> bool;
}

/// The paper's `PickFoo` (Fig. 9), generalized: an entry is *relevant* when
/// its score reaches `relevance_threshold`; an internal entry is *worth
/// returning* when the fraction of relevant children exceeds `fraction`;
/// a leaf is worth returning when it is itself relevant.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionPick {
    /// Minimum score for a node to count as relevant (paper: 0.8).
    pub relevance_threshold: f64,
    /// Required fraction of relevant children, exclusive (paper: 0.5).
    pub fraction: f64,
}

impl FractionPick {
    /// The exact parameters of the paper's `PickFoo`: threshold 0.8,
    /// fraction 50 %.
    pub fn paper() -> Self {
        FractionPick {
            relevance_threshold: 0.8,
            fraction: 0.5,
        }
    }
}

impl PickCriterion for FractionPick {
    fn is_relevant(&self, tree: &ScoredTree, idx: usize) -> bool {
        tree.entries()
            .get(idx)
            .and_then(|e| e.score)
            .is_some_and(|s| s >= self.relevance_threshold)
    }

    fn is_worth(&self, tree: &ScoredTree, idx: usize, children: &[usize]) -> bool {
        if children.is_empty() {
            return self.is_relevant(tree, idx);
        }
        let relevant = children
            .iter()
            .filter(|&&c| self.is_relevant(tree, c))
            .count();
        count_f64(relevant) / count_f64(children.len()) > self.fraction
    }
}

/// Compute which `var`-bound entries of `tree` are picked, without
/// modifying the tree. Exposed so the stack-based implementation in
/// `tix-exec` can be verified against it.
///
/// Semantics (Sec. 3.3.2): walking top-down (document order guarantees
/// parents precede children), an entry is picked iff the criterion deems it
/// worth returning **and** its direct parent in the tree is not itself
/// picked — the parent/child (vertical) redundancy-elimination rule.
pub fn picked_entries(
    tree: &ScoredTree,
    var: PatternNodeId,
    criterion: &dyn PickCriterion,
) -> Vec<bool> {
    let n = tree.len();
    // children lists in one pass.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, entry) in tree.entries().iter().enumerate() {
        if let Some(p) = entry.parent {
            // lint:allow(no-as-cast): u32 index → usize widening is lossless
            if let Some(list) = children.get_mut(p as usize) {
                list.push(i);
            }
        }
    }
    let mut picked = vec![false; n];
    for (i, entry) in tree.entries().iter().enumerate() {
        if !entry.bound_to(var) {
            continue;
        }
        let parent_picked = entry
            .parent
            // lint:allow(no-as-cast): u32 index → usize widening is lossless
            .is_some_and(|p| picked.get(p as usize).copied().unwrap_or(false));
        let kids: &[usize] = children.get(i).map_or(&[], Vec::as_slice);
        let worth = !parent_picked && criterion.is_worth(tree, i, kids);
        if let Some(slot) = picked.get_mut(i) {
            *slot = worth;
        }
    }
    // §4.3: the picked set must satisfy the vertical exclusivity rule —
    // no picked entry has a picked ancestor.
    tix_invariants::check! {
        tix_invariants::assert_picked_exclusive(
            n,
            |i| picked.get(i).copied().unwrap_or(false),
            |i| {
                tree.entries()
                    .get(i)
                    .and_then(|e| e.parent)
                    // lint:allow(no-as-cast): u32 index → usize widening is lossless
                    .map(|p| p as usize)
            },
        );
    }
    picked
}

/// The Pick operator: in each tree, data IR-nodes bound to `var` that are
/// not picked lose that binding (and their score); entries left with no
/// bindings are removed, with survivors re-linked to their nearest kept
/// ancestor. Secondary scores are then re-derived via `rules` — the
/// "dynamic" score update the paper describes when Pick prunes the
/// `$4`-matching set.
pub fn pick(
    ctx: &ScoreContext<'_>,
    input: &Collection,
    var: PatternNodeId,
    criterion: &dyn PickCriterion,
    rules: &[ScoreRule],
) -> Collection {
    let mut out = Collection::new();
    for tree in input.iter() {
        let picked = picked_entries(tree, var, criterion);
        let mut tree = tree.clone();
        for (i, entry) in tree.entries_mut().iter_mut().enumerate() {
            if entry.bound_to(var) && !picked.get(i).copied().unwrap_or(false) {
                entry.vars.retain(|&v| v != var);
                if entry.vars.is_empty() {
                    // Fully unpicked: marked for removal below.
                    entry.score = None;
                } else {
                    // Still bound as a non-pick variable (e.g. the paper's
                    // article matching both $1 and $4): clear the IR score;
                    // the derived rules below recompute it.
                    entry.score = None;
                }
            }
        }
        tree.retain(|_, entry| !entry.vars.is_empty());
        apply_derived_rules(ctx, &mut tree, rules);
        if !tree.is_empty() {
            out.push(tree);
        }
    }
    out
}

/// Horizontal (sibling) redundancy elimination: among picked `var`-bound
/// entries sharing the same parent and the same class (per `same_class`),
/// keep only the first in document order — the paper's "returning only the
/// first author of the relevant article" example.
pub fn horizontal_pick(
    input: &Collection,
    var: PatternNodeId,
    same_class: impl Fn(&ScoredTree, usize, usize) -> bool,
) -> Collection {
    let mut out = Collection::new();
    for tree in input.iter() {
        let mut tree = tree.clone();
        let n = tree.len();
        let mut drop = vec![false; n];
        for i in 0..n {
            let Some(ei) = tree.entries().get(i) else {
                continue;
            };
            if !ei.bound_to(var) || drop.get(i).copied().unwrap_or(false) {
                continue;
            }
            let ei_parent = ei.parent;
            for (j, drop_j) in drop.iter_mut().enumerate().skip(i + 1) {
                let Some(ej) = tree.entries().get(j) else {
                    continue;
                };
                if ej.bound_to(var) && ej.parent == ei_parent && !*drop_j && same_class(&tree, i, j)
                {
                    *drop_j = true;
                }
            }
        }
        // Sec. 3.3.2 horizontal rule: after elimination, at most one
        // var-bound entry survives per (parent, class) sibling group.
        tix_invariants::check! {
            tix_invariants::assert_horizontal_dedup(
                n,
                |i| {
                    tree.entries().get(i).is_some_and(|e| e.bound_to(var))
                        && !drop.get(i).copied().unwrap_or(false)
                },
                |i, j| {
                    let (Some(ei), Some(ej)) = (tree.entries().get(i), tree.entries().get(j))
                    else {
                        return false;
                    };
                    ei.bound_to(var)
                        && ej.bound_to(var)
                        && ei.parent == ej.parent
                        && same_class(&tree, i, j)
                },
            );
        }
        tree.retain(|i, _| !drop.get(i).copied().unwrap_or(false));
        out.push(tree);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::{DocId, NodeIdx, NodeRef, Store};

    fn nref(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeIdx(i))
    }

    /// Build the shape of the paper's Fig. 6 in miniature:
    /// root[5.6] → {title[0.6], chap[5.0] → {s1[0.8] → t1[0.8],
    /// s2[0.6] → t2[0.6], s3[3.6] → {p1[0.8], p2[1.4], p3[1.4]}}}.
    fn fig6ish() -> (Store, ScoredTree, PatternNodeId, PatternNodeId) {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<root><title/><chap><s1><t1/></s1><s2><t2/></s2>\
                 <s3><p1/><p2/><p3/></s3></chap></root>",
            )
            .unwrap();
        let v1 = PatternNodeId(1); // the structural root variable
        let v4 = PatternNodeId(4); // the IR unit variable
                                   // Node indexes: root=0 title=1 chap=2 s1=3 t1=4 s2=5 t2=6 s3=7
                                   // p1=8 p2=9 p3=10.
        let tree = ScoredTree::from_stored(
            &store,
            vec![
                (nref(0), Some(5.6), vec![v1, v4]),
                (nref(1), Some(0.6), vec![v4]),
                (nref(2), Some(5.0), vec![v4]),
                (nref(3), Some(0.8), vec![v4]),
                (nref(4), Some(0.8), vec![v4]),
                (nref(5), Some(0.6), vec![v4]),
                (nref(6), Some(0.6), vec![v4]),
                (nref(7), Some(3.6), vec![v4]),
                (nref(8), Some(0.8), vec![v4]),
                (nref(9), Some(1.4), vec![v4]),
                (nref(10), Some(1.4), vec![v4]),
            ],
        );
        (store, tree, v1, v4)
    }

    #[test]
    fn picked_set_matches_paper_fig8() {
        let (_store, tree, _v1, v4) = fig6ish();
        let picked = picked_entries(&tree, v4, &FractionPick::paper());
        // Picked: chap (2/3 relevant children), t1 (leaf, parent s1 not
        // picked), p1, p2, p3 (leaves under unpicked s3).
        let picked_idx: Vec<usize> = picked
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(picked_idx, vec![2, 4, 8, 9, 10]);
    }

    #[test]
    fn root_not_picked_but_retained_with_recomputed_score() {
        let (store, tree, v1, v4) = fig6ish();
        let ctx = ScoreContext::new(&store);
        let rules = [ScoreRule::FromDescendant {
            node: v1,
            source: v4,
            agg: crate::pattern::Agg::Max,
        }];
        let input = Collection::from_trees(vec![tree]);
        let result = pick(&ctx, &input, v4, &FractionPick::paper(), &rules);
        assert_eq!(result.len(), 1);
        let tree = &result.trees()[0];
        // Root stays ($1), score recomputed to max remaining $4 = 5.0 (the
        // paper's Fig. 8 root: article[5.0]).
        assert_eq!(tree.score(), Some(5.0));
        // Dropped entirely: title, s1, s2, t2, s3.
        assert_eq!(tree.len(), 6); // root, chap, t1, p1, p2, p3
    }

    #[test]
    fn unpicked_intermediate_relinks_children() {
        let (store, tree, v1, v4) = fig6ish();
        let ctx = ScoreContext::new(&store);
        let rules = [ScoreRule::FromDescendant {
            node: v1,
            source: v4,
            agg: crate::pattern::Agg::Max,
        }];
        let input = Collection::from_trees(vec![tree]);
        let result = pick(&ctx, &input, v4, &FractionPick::paper(), &rules);
        let tree = &result.trees()[0];
        // t1 (old parent s1, dropped) must now hang off chap — like the
        // paper's Fig. 8 where section-title #a13 hangs off chapter #a10.
        let chap_pos = tree
            .entries()
            .iter()
            .position(|e| e.source.stored() == Some(nref(2)))
            .unwrap();
        let t1 = tree
            .entries()
            .iter()
            .find(|e| e.source.stored() == Some(nref(4)))
            .unwrap();
        assert_eq!(t1.parent, Some(chap_pos as u32));
    }

    #[test]
    fn all_relevant_leaf_only_tree() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><b/></a>").unwrap();
        let v = PatternNodeId(4);
        let tree = ScoredTree::from_stored(&store, vec![(nref(1), Some(2.0), vec![v])]);
        let picked = picked_entries(&tree, v, &FractionPick::paper());
        assert_eq!(picked, vec![true]);
    }

    #[test]
    fn irrelevant_leaf_not_picked() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><b/></a>").unwrap();
        let v = PatternNodeId(4);
        let tree = ScoredTree::from_stored(&store, vec![(nref(1), Some(0.1), vec![v])]);
        let picked = picked_entries(&tree, v, &FractionPick::paper());
        assert_eq!(picked, vec![false]);
    }

    #[test]
    fn parent_child_exclusivity() {
        // Whatever the scores, a picked node's direct children are never
        // picked.
        let (_store, tree, _v1, v4) = fig6ish();
        let picked = picked_entries(&tree, v4, &FractionPick::paper());
        for (i, entry) in tree.entries().iter().enumerate() {
            if let Some(p) = entry.parent {
                assert!(
                    !(picked[i] && picked[p as usize]),
                    "entry {i} and its parent both picked"
                );
            }
        }
    }

    #[test]
    fn horizontal_pick_keeps_first_sibling() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><au/><au/><x/></a>").unwrap();
        let v = PatternNodeId(2);
        let tree = ScoredTree::from_stored(
            &store,
            vec![
                (nref(0), None, vec![PatternNodeId(1)]),
                (nref(1), None, vec![v]),
                (nref(2), None, vec![v]),
                (nref(3), None, vec![PatternNodeId(3)]),
            ],
        );
        let input = Collection::from_trees(vec![tree]);
        let result = horizontal_pick(&input, v, |tree, i, j| {
            // Same class = same tag.
            let a = tree.entries()[i].source.stored().unwrap();
            let b = tree.entries()[j].source.stored().unwrap();
            store.tag_name(a) == store.tag_name(b)
        });
        let tree = &result.trees()[0];
        // Second <au> dropped; <x> (different var) kept.
        assert_eq!(tree.len(), 3);
    }
}
