//! Scored selection — σ_P(C) (Sec. 3.2.1).

use tix_store::Store;

use crate::collection::Collection;
use crate::matching::matches;
use crate::pattern::PatternTree;
use crate::scored_tree::ScoredTree;
use crate::scoring::ScoreContext;

use super::apply_derived_rules;

/// Scored selection: each output tree is one **witness** of the pattern
/// against one input tree — the matched nodes only, structured by their
/// nearest-ancestor relationships (the paper's Fig. 5 trees).
///
/// Scoring: data nodes matching primary IR-nodes are scored by their
/// scoring function; secondary IR-nodes then derive their scores within
/// each witness (for a single witness, "max over matches" degenerates to
/// the one bound node, so `$1.score = $4.score` behaves exactly as in
/// Fig. 5).
pub fn select(store: &Store, input: &Collection, pattern: &PatternTree) -> Collection {
    let ctx = ScoreContext::new(store);
    select_with_ctx(&ctx, input, pattern)
}

/// [`select`] with an explicit scoring context (e.g. one carrying an
/// inverted index for index-based scorers).
pub fn select_with_ctx(
    ctx: &ScoreContext<'_>,
    input: &Collection,
    pattern: &PatternTree,
) -> Collection {
    let store = ctx.store;
    let mut out = Collection::new();
    for tree in input.iter() {
        for root_entry in tree.entries().iter().filter(|e| e.parent.is_none()) {
            let Some(scope) = root_entry.source.stored() else {
                continue;
            };
            for binding in matches(store, pattern, scope) {
                let nodes = pattern
                    .nodes()
                    .iter()
                    .zip(&binding)
                    .map(|(pnode, &data)| {
                        let score = pattern.eval_primary(ctx, pnode.id, data);
                        (data, score, vec![pnode.id])
                    })
                    .collect();
                let mut witness = ScoredTree::from_stored(store, nodes);
                apply_derived_rules(ctx, &mut witness, pattern.rules());
                out.push(witness);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{EdgeKind, Predicate};
    use crate::scoring::paper::ScoreFoo;

    fn fixture() -> Store {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<article><author><sname>Doe</sname></author>\
                 <p>search engine overview</p>\
                 <p>unrelated content</p></article>",
            )
            .unwrap();
        store
    }

    /// Query-2-shaped pattern: article / author / sname="Doe", plus an ad*
    /// IR variable scored on "search engine".
    fn query2ish(store: &Store) -> (PatternTree, crate::PatternNodeId) {
        let _ = store;
        let mut p = PatternTree::new();
        let n1 = p.add_root(Predicate::tag("article"));
        let n2 = p.add_child(n1, EdgeKind::Child, Predicate::tag("author"));
        let _n3 = p.add_child(
            n2,
            EdgeKind::Child,
            Predicate::And(vec![Predicate::tag("sname"), Predicate::content_eq("Doe")]),
        );
        let n4 = p.add_child(n1, EdgeKind::SelfOrDescendant, Predicate::True);
        p.score_primary(n4, ScoreFoo::shared(&["search engine"], &[]));
        p.score_from_descendant(n1, n4);
        (p, n4)
    }

    #[test]
    fn one_witness_per_match() {
        let store = fixture();
        let (pattern, _) = query2ish(&store);
        let input = Collection::documents(&store);
        let result = select(&store, &input, &pattern);
        // $4 ranges over all 5 elements (article, author, sname, p, p).
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn primary_and_secondary_scores() {
        let store = fixture();
        let (pattern, n4) = query2ish(&store);
        let input = Collection::documents(&store);
        let result = select(&store, &input, &pattern);
        // Find the witness where $4 bound the relevant paragraph.
        let relevant: Vec<_> = result
            .iter()
            .filter(|t| t.max_score(n4) == Some(0.8))
            .collect();
        assert!(!relevant.is_empty());
        // Secondary rule propagated to the root: tree score = 0.8.
        assert_eq!(relevant[0].score(), Some(0.8));
    }

    #[test]
    fn self_match_scores_root_as_unit() {
        let store = fixture();
        let (pattern, n4) = query2ish(&store);
        let input = Collection::documents(&store);
        let result = select(&store, &input, &pattern);
        // The witness where $4 = article itself: one merged root entry
        // bound to both $1 and $4 (the paper's Fig. 5(c) case).
        let self_match: Vec<_> = result
            .iter()
            .filter(|t| t.entries()[0].vars.len() == 2) // article bound $1 and $4
            .collect();
        assert_eq!(self_match.len(), 1);
        // article subtree contains "search engine" once → 0.8.
        assert_eq!(self_match[0].max_score(n4), Some(0.8));
    }

    #[test]
    fn no_match_for_wrong_author() {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<article><author><sname>Smith</sname></author><p>search engine</p></article>",
            )
            .unwrap();
        let (pattern, _) = query2ish(&store);
        let input = Collection::documents(&store);
        assert!(select(&store, &input, &pattern).is_empty());
    }

    #[test]
    fn empty_input_empty_output() {
        let store = fixture();
        let (pattern, _) = query2ish(&store);
        assert!(select(&store, &Collection::new(), &pattern).is_empty());
    }
}
