//! Collections of scored trees — the values the bulk algebra manipulates.

use tix_store::{NodeIdx, NodeRef, Store};

use crate::scored_tree::ScoredTree;

/// An ordered collection of scored trees. Every TIX operator consumes and
/// produces one of these (algebraic closure, Sec. 3 of the paper).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Collection {
    trees: Vec<ScoredTree>,
}

impl Collection {
    /// The empty collection.
    pub fn new() -> Self {
        Collection::default()
    }

    /// Wrap existing trees.
    pub fn from_trees(trees: Vec<ScoredTree>) -> Self {
        Collection { trees }
    }

    /// The initial collection over a store: one (unscored) tree per loaded
    /// document, rooted at the document element.
    pub fn documents(store: &Store) -> Self {
        Collection {
            trees: store
                .doc_ids()
                .map(|doc| ScoredTree::document(NodeRef::new(doc, NodeIdx(0))))
                .collect(),
        }
    }

    /// The collection holding just one named document's tree.
    pub fn document(store: &Store, name: &str) -> Option<Self> {
        store.doc_by_name(name).map(|doc| Collection {
            trees: vec![ScoredTree::document(NodeRef::new(doc, NodeIdx(0)))],
        })
    }

    /// The trees, in collection order.
    pub fn trees(&self) -> &[ScoredTree] {
        &self.trees
    }

    /// Mutable tree access for operators.
    pub fn trees_mut(&mut self) -> &mut Vec<ScoredTree> {
        &mut self.trees
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the collection holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Append a tree.
    pub fn push(&mut self, tree: ScoredTree) {
        self.trees.push(tree);
    }

    /// Iterate over the trees.
    pub fn iter(&self) -> std::slice::Iter<'_, ScoredTree> {
        self.trees.iter()
    }

    /// Sort trees by descending root score (`Sortby(score)` in the paper's
    /// extended XQuery); unscored trees sort last. Ties keep collection
    /// order (stable).
    pub fn sort_by_score_desc(&mut self) {
        self.trees.sort_by(|a, b| match (a.score(), b.score()) {
            (Some(x), Some(y)) => y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });
    }
}

impl IntoIterator for Collection {
    type Item = ScoredTree;
    type IntoIter = std::vec::IntoIter<ScoredTree>;

    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl FromIterator<ScoredTree> for Collection {
    fn from_iter<I: IntoIterator<Item = ScoredTree>>(iter: I) -> Self {
        Collection {
            trees: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternNodeId;
    use tix_store::DocId;

    #[test]
    fn documents_collection() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a/>").unwrap();
        store.load_str("b.xml", "<b/>").unwrap();
        let c = Collection::documents(&store);
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.trees()[0].entries()[0].source.stored().unwrap().doc,
            DocId(0)
        );
    }

    #[test]
    fn named_document() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a/>").unwrap();
        assert_eq!(Collection::document(&store, "a.xml").unwrap().len(), 1);
        assert!(Collection::document(&store, "zzz.xml").is_none());
    }

    #[test]
    fn sort_by_score() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><b/><c/></a>").unwrap();
        let mk = |i: u32, score: Option<f64>| {
            ScoredTree::from_stored(
                &store,
                vec![(
                    NodeRef::new(DocId(0), NodeIdx(i)),
                    score,
                    vec![PatternNodeId(1)],
                )],
            )
        };
        let mut c = Collection::from_trees(vec![mk(0, Some(1.0)), mk(1, None), mk(2, Some(5.0))]);
        c.sort_by_score_desc();
        let scores: Vec<_> = c.iter().map(|t| t.score()).collect();
        assert_eq!(scores, vec![Some(5.0), Some(1.0), None]);
    }
}
