//! User-definable scoring functions (the paper's Fig. 9), and the traits
//! through which the algebra invokes them.
//!
//! The paper stresses that scoring is *pluggable*: "Our system … enables
//! the user to specify scoring function by providing them with language
//! extensions with which user-defined functions can be plugged" (Sec. 7).
//! [`NodeScorer`] and [`JoinScorer`] are those plug points; the `paper`
//! module ships the exact functions used in the paper's running example so
//! its figures can be reproduced number-for-number.

use std::sync::Arc;

use tix_index::IndexReader;
use tix_store::{NodeRef, Store};

/// Everything a scoring function may consult.
pub struct ScoreContext<'a> {
    /// The database.
    pub store: &'a Store,
    /// The inverted index, when one has been built (scorers fall back to
    /// scanning subtree text without it).
    pub index: Option<&'a dyn IndexReader>,
}

impl<'a> ScoreContext<'a> {
    /// Context without an index.
    pub fn new(store: &'a Store) -> Self {
        ScoreContext { store, index: None }
    }

    /// Context with an index.
    pub fn with_index(store: &'a Store, index: &'a dyn IndexReader) -> Self {
        ScoreContext {
            store,
            index: Some(index),
        }
    }
}

/// A scoring function applied to a single matched node (a primary IR
/// predicate).
pub trait NodeScorer: Send + Sync {
    /// Compute the node's relevance score.
    fn score(&self, ctx: &ScoreContext<'_>, node: NodeRef) -> f64;

    /// Diagnostic name.
    fn name(&self) -> &str;
}

/// A scoring function applied to a pair of matched nodes (a scored join
/// condition, Sec. 3.2.3).
pub trait JoinScorer: Send + Sync {
    /// Compute the similarity score between `left` and `right`.
    fn score(&self, ctx: &ScoreContext<'_>, left: NodeRef, right: NodeRef) -> f64;

    /// Diagnostic name.
    fn name(&self) -> &str;
}

/// Count non-overlapping, case-insensitive occurrences of `phrase` in
/// `text` — the paper's `count(α, $a/alltext())` primitive.
pub fn phrase_count(text: &str, phrase: &str) -> usize {
    if phrase.is_empty() {
        return 0;
    }
    let haystack = text.to_lowercase();
    let needle = phrase.to_lowercase();
    let mut count = 0;
    let mut rest = haystack.as_str();
    while let Some(pos) = rest.find(&needle) {
        count += 1;
        // lint:allow(no-slice-index): pos + needle.len() is the end of the match find() located
        rest = &rest[pos + needle.len()..];
    }
    count
}

/// Convert an occurrence count to `f64` for score arithmetic.
///
/// Counts are bounded by the collection's token count, far below 2^53,
/// so the conversion is exact — this is the one sanctioned `as` cast on
/// the scoring path.
pub fn count_f64(n: usize) -> f64 {
    // lint:allow(no-as-cast): counts are < 2^53, conversion is exact
    n as f64
}

/// The functions of the paper's Figure 9.
pub mod paper {
    use super::*;
    use tix_index::terms;

    /// `ScoreFoo(A, B)` — weighted phrase-count sum (Fig. 9):
    /// `Σ_{α∈A} 0.8·count(α, alltext) + Σ_{β∈B} 0.6·count(β, alltext)`.
    ///
    /// `A` holds the primary phrases ("search engine"), `B` the desirable
    /// secondary phrases ("internet", "information retrieval").
    pub struct ScoreFoo {
        primary: Vec<String>,
        secondary: Vec<String>,
        /// Weight for primary phrases (paper: 0.8).
        pub primary_weight: f64,
        /// Weight for secondary phrases (paper: 0.6).
        pub secondary_weight: f64,
    }

    impl ScoreFoo {
        /// Build with the paper's weights (0.8 / 0.6).
        pub fn new(primary: Vec<String>, secondary: Vec<String>) -> Self {
            ScoreFoo {
                primary,
                secondary,
                primary_weight: 0.8,
                secondary_weight: 0.6,
            }
        }

        /// Convenience constructor returning an `Arc<dyn NodeScorer>`.
        pub fn shared(primary: &[&str], secondary: &[&str]) -> Arc<dyn NodeScorer> {
            Arc::new(ScoreFoo::new(
                primary.iter().map(|s| s.to_string()).collect(),
                secondary.iter().map(|s| s.to_string()).collect(),
            ))
        }
    }

    impl NodeScorer for ScoreFoo {
        fn score(&self, ctx: &ScoreContext<'_>, node: NodeRef) -> f64 {
            let text = ctx.store.text_content(node);
            let mut score = 0.0;
            for phrase in &self.primary {
                score += self.primary_weight * count_f64(phrase_count(&text, phrase));
            }
            for phrase in &self.secondary {
                score += self.secondary_weight * count_f64(phrase_count(&text, phrase));
            }
            score
        }

        fn name(&self) -> &str {
            "ScoreFoo"
        }
    }

    /// `ScoreSim(a, b)` — `count-same($a/text(), $b/text())`: the number of
    /// distinct words occurring in both nodes' text (Fig. 9). The paper
    /// notes a real system would use cosine similarity; see
    /// [`super::CosineScorer`] for that extension.
    pub struct ScoreSim;

    impl JoinScorer for ScoreSim {
        fn score(&self, ctx: &ScoreContext<'_>, left: NodeRef, right: NodeRef) -> f64 {
            let a = terms(&ctx.store.text_content(left));
            let b = terms(&ctx.store.text_content(right));
            let set_a: std::collections::HashSet<&str> = a.iter().map(String::as_str).collect();
            let set_b: std::collections::HashSet<&str> = b.iter().map(String::as_str).collect();
            count_f64(set_a.intersection(&set_b).count())
        }

        fn name(&self) -> &str {
            "ScoreSim"
        }
    }

    /// `ScoreBar(score1, score2)` — `if score2 > 0 { score1 + score2 } else
    /// { 0 }` (Fig. 9): the join score only counts when the article actually
    /// contains relevant components.
    pub fn score_bar(score1: f64, score2: f64) -> f64 {
        if score2 > 0.0 {
            score1 + score2
        } else {
            0.0
        }
    }

    /// `ScoreBar` as a combiner closure for
    /// [`crate::pattern::ScoreRule::Combined`] (inputs: `[score1, score2]`).
    pub fn score_bar_combiner() -> crate::pattern::ScoreCombiner {
        Arc::new(|inputs: &[f64]| {
            let score1 = inputs.first().copied().unwrap_or(0.0);
            let score2 = inputs.get(1).copied().unwrap_or(0.0);
            score_bar(score1, score2)
        })
    }
}

/// A tf·idf scorer over the inverted index — the "more sophisticated
/// methods involving term frequency and inverted document frequency" the
/// paper's Fig. 9 footnote gestures at.
///
/// `score(n) = Σ_t tf(t, subtree(n)) · idf(t)`, with tf counted through the
/// index's region-encoded subtree count.
pub struct TfIdfScorer {
    terms: Vec<String>,
}

impl TfIdfScorer {
    /// Score the given terms.
    pub fn new(terms: Vec<String>) -> Self {
        TfIdfScorer { terms }
    }

    /// Convenience constructor returning an `Arc<dyn NodeScorer>`.
    pub fn shared(terms: &[&str]) -> Arc<dyn NodeScorer> {
        Arc::new(TfIdfScorer::new(
            terms.iter().map(|s| s.to_string()).collect(),
        ))
    }
}

impl NodeScorer for TfIdfScorer {
    /// # Panics
    /// Panics if the context has no inverted index: tf·idf is undefined
    /// without document frequencies, and silently scoring 0 would corrupt
    /// rankings, so misconfiguration fails loudly.
    fn score(&self, ctx: &ScoreContext<'_>, node: NodeRef) -> f64 {
        let index = ctx
            .index
            // lint:allow(no-unwrap): documented panic contract above
            .expect("TfIdfScorer requires a ScoreContext with an inverted index");
        let docs = ctx.store.doc_count();
        self.terms
            .iter()
            .map(|t| count_f64(index.count_in_subtree(ctx.store, t, node)) * index.idf(t, docs))
            .sum()
    }

    fn name(&self) -> &str {
        "TfIdf"
    }
}

/// Cosine similarity between the term-frequency vectors of two nodes'
/// subtree text — the "vector space cosine similarity" the paper suggests
/// as the realistic `ScoreSim`.
pub struct CosineScorer;

impl JoinScorer for CosineScorer {
    fn score(&self, ctx: &ScoreContext<'_>, left: NodeRef, right: NodeRef) -> f64 {
        use std::collections::HashMap;
        let tf = |node: NodeRef| -> HashMap<String, f64> {
            let mut map = HashMap::new();
            for term in tix_index::terms(&ctx.store.text_content(node)) {
                *map.entry(term).or_insert(0.0) += 1.0;
            }
            map
        };
        let a = tf(left);
        let b = tf(right);
        let dot: f64 = a
            .iter()
            .filter_map(|(t, &w)| b.get(t).map(|&v| w * v))
            .sum();
        let norm = |m: &HashMap<String, f64>| m.values().map(|v| v * v).sum::<f64>().sqrt();
        // Norms are non-negative, so `<= 0.0` is exactly the zero test —
        // without comparing floats for equality.
        let denom = norm(&a) * norm(&b);
        if denom <= 0.0 {
            0.0
        } else {
            dot / denom
        }
    }

    fn name(&self) -> &str {
        "Cosine"
    }
}

#[cfg(test)]
mod tests {
    use super::paper::*;
    use super::*;
    use tix_store::{DocId, NodeIdx};

    fn nref(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeIdx(i))
    }

    #[test]
    fn phrase_count_basics() {
        assert_eq!(phrase_count("search engine", "search engine"), 1);
        assert_eq!(phrase_count("Search Engine Basics", "search engine"), 1);
        assert_eq!(
            phrase_count("search engines are search engines", "search engine"),
            2
        );
        assert_eq!(phrase_count("nothing here", "search engine"), 0);
        assert_eq!(phrase_count("anything", ""), 0);
    }

    #[test]
    fn scorefoo_weighted_sum() {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<p>search engine NewsInEssence uses a new information retrieval technology</p>",
            )
            .unwrap();
        let scorer = ScoreFoo::new(
            vec!["search engine".into()],
            vec!["internet".into(), "information retrieval".into()],
        );
        let ctx = ScoreContext::new(&store);
        // 1×0.8 + 0×0.6 + 1×0.6 = 1.4 — the paper's #a19 score.
        let score = scorer.score(&ctx, nref(0));
        assert!((score - 1.4).abs() < 1e-9, "got {score}");
    }

    #[test]
    fn scoresim_common_words() {
        let mut store = Store::new();
        store
            .load_str("t.xml", "<r><a>Internet Technologies</a><b>Internet Technologies</b><c>WWW Technologies</c></r>")
            .unwrap();
        let ctx = ScoreContext::new(&store);
        // a=1, b=3, c=5 (elements at odd indexes; text nodes between).
        assert_eq!(ScoreSim.score(&ctx, nref(1), nref(3)), 2.0);
        assert_eq!(ScoreSim.score(&ctx, nref(1), nref(5)), 1.0);
    }

    #[test]
    fn scorebar_gate() {
        assert_eq!(score_bar(2.0, 0.8), 2.8); // Fig. 7's root score
        assert_eq!(score_bar(2.0, 0.0), 0.0);
        assert_eq!(score_bar(2.0, -1.0), 0.0);
        let combiner = score_bar_combiner();
        assert_eq!(combiner(&[2.0, 0.8]), 2.8);
        assert_eq!(combiner(&[2.0]), 0.0);
    }

    #[test]
    fn tfidf_prefers_rare_terms() {
        let mut store = Store::new();
        store
            .load_str("a.xml", "<a><p>common rare</p></a>")
            .unwrap();
        store.load_str("b.xml", "<a><p>common</p></a>").unwrap();
        store.load_str("c.xml", "<a><p>common</p></a>").unwrap();
        let index = tix_index::InvertedIndex::build(&store);
        let ctx = ScoreContext::with_index(&store, &index);
        let common = TfIdfScorer::new(vec!["common".into()]);
        let rare = TfIdfScorer::new(vec!["rare".into()]);
        let a_root = nref(0);
        assert!(rare.score(&ctx, a_root) > common.score(&ctx, a_root));
    }

    #[test]
    fn cosine_identical_is_one() {
        let mut store = Store::new();
        store
            .load_str("t.xml", "<r><a>x y z</a><b>x y z</b><c>p q r</c></r>")
            .unwrap();
        let ctx = ScoreContext::new(&store);
        let sim_same = CosineScorer.score(&ctx, nref(1), nref(3));
        let sim_diff = CosineScorer.score(&ctx, nref(1), nref(5));
        assert!((sim_same - 1.0).abs() < 1e-9);
        assert_eq!(sim_diff, 0.0);
    }
}
