//! Score histograms — the auxiliary data of Sec. 5.3.
//!
//! The paper observes that users cannot state an absolute relevance-score
//! threshold for Pick "since they have no idea of the distribution of the
//! scores for a given query", and proposes a histogram "of the number of
//! data IR-nodes matching a query IR-node with respect to the score" so
//! thresholds can be given as quantiles.

use crate::scoring::count_f64;

/// An equi-width histogram over non-negative scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreHistogram {
    buckets: Vec<usize>,
    bucket_width: f64,
    min: f64,
    max: f64,
    count: usize,
}

impl ScoreHistogram {
    /// Build a histogram with `buckets` equal-width buckets over the
    /// observed score range.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(scores: impl IntoIterator<Item = f64>, buckets: usize) -> Self {
        assert!(buckets > 0, "at least one bucket required");
        let scores: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
        let (min, max) = scores
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        if scores.is_empty() {
            return ScoreHistogram {
                buckets: vec![0; buckets],
                bucket_width: 1.0,
                min: 0.0,
                max: 0.0,
                count: 0,
            };
        }
        let width = ((max - min) / count_f64(buckets)).max(f64::MIN_POSITIVE);
        let mut hist = vec![0usize; buckets];
        for &s in &scores {
            // lint:allow(no-as-cast): float→usize truncation is the bucket rule; clamped below
            let idx = (((s - min) / width) as usize).min(buckets - 1);
            // lint:allow(no-slice-index): idx clamped to buckets - 1 above
            hist[idx] += 1;
        }
        ScoreHistogram {
            buckets: hist,
            bucket_width: width,
            min,
            max,
            count: scores.len(),
        }
    }

    /// Total observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Smallest observed score.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed score.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The bucket counts.
    pub fn buckets(&self) -> &[usize] {
        &self.buckets
    }

    /// Approximate score at quantile `q ∈ [0, 1]` (q = 0.9 → "a score
    /// higher than 90 % of matching IR-nodes"). Linear interpolation within
    /// the containing bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if self.count == 0 {
            return 0.0;
        }
        let target = q * count_f64(self.count);
        let mut acc = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = acc + count_f64(c);
            if next >= target && c > 0 {
                let within = if c > 0 {
                    (target - acc) / count_f64(c)
                } else {
                    0.0
                };
                return self.min + (count_f64(i) + within.clamp(0.0, 1.0)) * self.bucket_width;
            }
            acc = next;
        }
        self.max
    }

    /// How many observations are ≥ `threshold` (approximate: bucket
    /// granularity).
    pub fn count_at_least(&self, threshold: f64) -> usize {
        if self.count == 0 || threshold <= self.min {
            return self.count;
        }
        if threshold > self.max {
            return 0;
        }
        // lint:allow(no-as-cast): float→usize truncation is the bucket rule; clamped below
        let raw = ((threshold - self.min) / self.bucket_width) as usize;
        let idx = raw.min(self.buckets.len() - 1);
        // lint:allow(no-slice-index): idx clamped to len - 1 above
        self.buckets[idx..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = ScoreHistogram::build(std::iter::empty(), 8);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count_at_least(1.0), 0);
    }

    #[test]
    fn uniform_quantiles() {
        let scores: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let h = ScoreHistogram::build(scores, 100);
        assert_eq!(h.count(), 1000);
        let median = h.quantile(0.5);
        assert!((median - 0.5).abs() < 0.05, "median {median}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 0.9).abs() < 0.05, "p90 {p90}");
    }

    #[test]
    fn count_at_least() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = ScoreHistogram::build(scores, 10);
        assert_eq!(h.count_at_least(0.0), 100);
        let above_half = h.count_at_least(50.0);
        assert!((40..=60).contains(&above_half), "got {above_half}");
        assert_eq!(h.count_at_least(1000.0), 0);
    }

    #[test]
    fn single_value() {
        let h = ScoreHistogram::build([2.5, 2.5, 2.5], 4);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 2.5);
        assert_eq!(h.max(), 2.5);
        assert_eq!(h.count_at_least(2.5), 3);
    }

    #[test]
    fn non_finite_filtered() {
        let h = ScoreHistogram::build([1.0, f64::NAN, 2.0, f64::INFINITY], 4);
        assert_eq!(h.count(), 2);
    }
}
