//! Scored data trees (Definition 1 of the paper).
//!
//! A [`ScoredTree`] is a *partial* view of stored documents: an ordered set
//! of entries, each referencing a store node (or a synthetic node such as
//! the join operator's `tix_prod_root`), carrying an optional score and the
//! pattern variables it was bound to. Entries are kept in document order
//! with nearest-retained-ancestor parent links, which makes projection
//! output (a sparse "slice" of the document, like the paper's Figure 6)
//! cheap to build and traverse.

use std::fmt;

use tix_store::{NodeRef, Store};

use crate::pattern::PatternNodeId;

/// What a tree entry refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSource {
    /// A node stored in the database.
    Stored(NodeRef),
    /// A synthesized element (e.g. `tix_prod_root` introduced by the
    /// product/join operator), identified by its tag.
    Synthetic(String),
}

impl NodeSource {
    /// The stored node reference, if any.
    pub fn stored(&self) -> Option<NodeRef> {
        match self {
            NodeSource::Stored(node) => Some(*node),
            NodeSource::Synthetic(_) => None,
        }
    }
}

/// One node of a scored tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeEntry {
    /// The underlying node.
    pub source: NodeSource,
    /// The node's score; `None` for non-IR nodes (the paper's "null" score).
    pub score: Option<f64>,
    /// Index of the nearest retained ancestor within the same tree, if any.
    pub parent: Option<u32>,
    /// Pattern variables this entry was bound to (a node can match several,
    /// e.g. an `article` matching both `$1` and the `ad*` variable `$4`).
    pub vars: Vec<PatternNodeId>,
}

impl TreeEntry {
    /// True when the entry was bound to `var`.
    pub fn bound_to(&self, var: PatternNodeId) -> bool {
        self.vars.contains(&var)
    }
}

/// A scored data tree (strictly: a forest — projection may retain disjoint
/// nodes — though operators usually produce a single root).
///
/// The score of the tree is the score of its root (Definition 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoredTree {
    entries: Vec<TreeEntry>,
    /// Auxiliary named scores that are not attached to a node, e.g. the
    /// join operator's `$joinScore` (Fig. 4 of the paper).
    aux: Vec<(PatternNodeId, f64)>,
}

impl ScoredTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        ScoredTree::default()
    }

    /// Build a tree from `(node, score, vars)` triples of stored nodes.
    ///
    /// The nodes are sorted into document order and linked to their nearest
    /// retained ancestor; duplicates (same stored node) are merged, with
    /// later scores overriding `None` and variable sets unioned.
    pub fn from_stored(
        store: &Store,
        nodes: Vec<(NodeRef, Option<f64>, Vec<PatternNodeId>)>,
    ) -> Self {
        let mut nodes = nodes;
        nodes.sort_by_key(|(node, _, _)| *node);
        // Merge duplicates.
        let mut merged: Vec<(NodeRef, Option<f64>, Vec<PatternNodeId>)> = Vec::new();
        for (node, score, vars) in nodes {
            match merged.last_mut() {
                Some(last) if last.0 == node => {
                    if last.1.is_none() {
                        last.1 = score;
                    }
                    for v in vars {
                        if !last.2.contains(&v) {
                            last.2.push(v);
                        }
                    }
                }
                _ => merged.push((node, score, vars)),
            }
        }
        // Nearest retained ancestor via a stack over document order.
        let mut entries = Vec::with_capacity(merged.len());
        let mut stack: Vec<(NodeRef, u32)> = Vec::new();
        for (node, score, vars) in merged {
            while let Some(&(candidate, _)) = stack.last() {
                if store.is_ancestor(candidate, node) {
                    break;
                }
                stack.pop();
            }
            let parent = stack.last().map(|&(_, idx)| idx);
            let idx = entries.len() as u32;
            entries.push(TreeEntry {
                source: NodeSource::Stored(node),
                score,
                parent,
                vars,
            });
            stack.push((node, idx));
        }
        ScoredTree {
            entries,
            aux: Vec::new(),
        }
    }

    /// Build a single-entry tree for a document root (the initial
    /// collection over a store).
    pub fn document(root: NodeRef) -> Self {
        ScoredTree {
            entries: vec![TreeEntry {
                source: NodeSource::Stored(root),
                score: None,
                parent: None,
                vars: Vec::new(),
            }],
            aux: Vec::new(),
        }
    }

    /// All entries in document order.
    pub fn entries(&self) -> &[TreeEntry] {
        &self.entries
    }

    /// Mutable access for operators in this crate and `tix-exec`.
    pub fn entries_mut(&mut self) -> &mut [TreeEntry] {
        &mut self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The first root entry's index, if any.
    pub fn root(&self) -> Option<usize> {
        self.entries.iter().position(|e| e.parent.is_none())
    }

    /// The score of the tree = the score of its (first) root (Def. 1).
    pub fn score(&self) -> Option<f64> {
        self.entries.iter().find(|e| e.parent.is_none())?.score
    }

    /// Indexes of the direct children of entry `idx`.
    pub fn children_of(&self, idx: usize) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.parent == Some(idx as u32))
            .map(|(i, _)| i)
            .collect()
    }

    /// Entries bound to `var`.
    pub fn bound(&self, var: PatternNodeId) -> impl Iterator<Item = (usize, &TreeEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.bound_to(var))
    }

    /// Highest score among entries bound to `var`.
    pub fn max_score(&self, var: PatternNodeId) -> Option<f64> {
        self.bound(var)
            .filter_map(|(_, e)| e.score)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Attach an auxiliary named score (e.g. `$joinScore`).
    pub fn set_aux(&mut self, var: PatternNodeId, score: f64) {
        if let Some(slot) = self.aux.iter_mut().find(|(v, _)| *v == var) {
            slot.1 = score;
        } else {
            self.aux.push((var, score));
        }
    }

    /// Read an auxiliary named score.
    pub fn aux(&self, var: PatternNodeId) -> Option<f64> {
        self.aux.iter().find(|(v, _)| *v == var).map(|(_, s)| *s)
    }

    /// Remove entries not satisfying `keep`, re-linking the survivors'
    /// parent pointers to their nearest surviving ancestor.
    pub fn retain(&mut self, mut keep: impl FnMut(usize, &TreeEntry) -> bool) {
        let n = self.entries.len();
        let kept: Vec<bool> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, entry)| keep(i, entry))
            .collect();
        // Map each old index to the nearest kept ancestor (old index).
        // Parents precede their children in document order, so each
        // lookup only consults already-computed prefixes.
        let mut nearest_kept_anc: Vec<Option<u32>> = Vec::with_capacity(n);
        for entry in &self.entries {
            let anc = match entry.parent {
                Some(p) if kept.get(p as usize).copied().unwrap_or(false) => Some(p),
                Some(p) => nearest_kept_anc.get(p as usize).copied().flatten(),
                None => None,
            };
            nearest_kept_anc.push(anc);
        }
        let mut new_index: Vec<Option<u32>> = Vec::with_capacity(n);
        let mut next = 0u32;
        for &k in &kept {
            if k {
                new_index.push(Some(next));
                next += 1;
            } else {
                new_index.push(None);
            }
        }
        let old_entries = std::mem::take(&mut self.entries);
        for ((mut entry, k), anc) in old_entries.into_iter().zip(kept).zip(nearest_kept_anc) {
            if !k {
                continue;
            }
            entry.parent = anc.and_then(|p| new_index.get(p as usize).copied().flatten());
            self.entries.push(entry);
        }
    }

    /// Push an entry (operators building synthetic structures, e.g. join).
    pub fn push_entry(&mut self, entry: TreeEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// Render the tree as an indented outline for debugging and golden
    /// tests (tags resolved through `store`).
    pub fn outline(&self, store: &Store) -> String {
        let mut out = String::new();
        // Depth of each entry within the retained tree (parents precede
        // children, so each lookup hits an already-filled slot).
        let mut depth: Vec<usize> = Vec::with_capacity(self.entries.len());
        for entry in self.entries.iter() {
            let d = entry
                .parent
                .and_then(|p| depth.get(p as usize).copied())
                .map_or(0, |pd| pd + 1);
            depth.push(d);
            for _ in 0..d {
                out.push_str("  ");
            }
            match &entry.source {
                NodeSource::Stored(node) => {
                    let label = store
                        .tag_name(*node)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("text({:?})", clip(store.text(*node))));
                    out.push_str(&label);
                }
                NodeSource::Synthetic(tag) => out.push_str(tag),
            }
            if let Some(score) = entry.score {
                out.push_str(&format!("[{score:.1}]"));
            }
            out.push('\n');
        }
        out
    }
}

fn clip(s: &str) -> String {
    s.chars().take(12).collect()
}

impl fmt::Display for ScoredTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ScoredTree({} entries, score {:?})",
            self.entries.len(),
            self.score()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::{DocId, NodeIdx};

    fn nref(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeIdx(i))
    }

    fn store() -> Store {
        let mut s = Store::new();
        // a=0 [b=1 [c=2] d=3] e=4
        s.load_str("t.xml", "<a><b><c/><d/></b><e/></a>").unwrap();
        s
    }

    #[test]
    fn from_stored_links_nearest_ancestor() {
        let store = store();
        let v = PatternNodeId(1);
        let tree = ScoredTree::from_stored(
            &store,
            vec![
                (nref(2), Some(1.0), vec![v]),
                (nref(0), None, vec![]),
                (nref(4), Some(2.0), vec![v]),
            ],
        );
        // Sorted: a(0), c(2), e(4). c's retained parent is a (b omitted).
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.entries()[0].parent, None);
        assert_eq!(tree.entries()[1].parent, Some(0));
        assert_eq!(tree.entries()[2].parent, Some(0));
    }

    #[test]
    fn duplicates_merged() {
        let store = store();
        let v1 = PatternNodeId(1);
        let v2 = PatternNodeId(2);
        let tree = ScoredTree::from_stored(
            &store,
            vec![(nref(0), None, vec![v1]), (nref(0), Some(3.0), vec![v2])],
        );
        assert_eq!(tree.len(), 1);
        let entry = &tree.entries()[0];
        assert_eq!(entry.score, Some(3.0));
        assert!(entry.bound_to(v1) && entry.bound_to(v2));
    }

    #[test]
    fn tree_score_is_root_score() {
        let store = store();
        let tree = ScoredTree::from_stored(
            &store,
            vec![(nref(0), Some(5.0), vec![]), (nref(1), Some(1.0), vec![])],
        );
        assert_eq!(tree.score(), Some(5.0));
    }

    #[test]
    fn max_score_over_var() {
        let store = store();
        let v = PatternNodeId(4);
        let tree = ScoredTree::from_stored(
            &store,
            vec![
                (nref(1), Some(1.0), vec![v]),
                (nref(2), Some(7.0), vec![v]),
                (nref(4), Some(3.0), vec![]),
            ],
        );
        assert_eq!(tree.max_score(v), Some(7.0));
    }

    #[test]
    fn retain_relinks_parents() {
        let store = store();
        let tree_nodes = vec![
            (nref(0), None, vec![]),
            (nref(1), Some(0.0), vec![]),
            (nref(2), Some(2.0), vec![]),
        ];
        let mut tree = ScoredTree::from_stored(&store, tree_nodes);
        // Drop b (index 1); c should re-link to a.
        tree.retain(|i, _| i != 1);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.entries()[1].parent, Some(0));
    }

    #[test]
    fn aux_scores() {
        let mut tree = ScoredTree::new();
        let j = PatternNodeId(99);
        assert_eq!(tree.aux(j), None);
        tree.set_aux(j, 2.5);
        assert_eq!(tree.aux(j), Some(2.5));
        tree.set_aux(j, 3.0);
        assert_eq!(tree.aux(j), Some(3.0));
    }

    #[test]
    fn children_of() {
        let store = store();
        let tree = ScoredTree::from_stored(
            &store,
            vec![
                (nref(0), None, vec![]),
                (nref(2), None, vec![]),
                (nref(3), None, vec![]),
                (nref(4), None, vec![]),
            ],
        );
        // c, d, e all link to a (b not retained).
        assert_eq!(tree.children_of(0), vec![1, 2, 3]);
    }

    #[test]
    fn outline_renders() {
        let store = store();
        let tree = ScoredTree::from_stored(
            &store,
            vec![(nref(0), Some(1.5), vec![]), (nref(1), None, vec![])],
        );
        let outline = tree.outline(&store);
        assert!(outline.contains("a[1.5]"));
        assert!(outline.contains("  b"));
    }

    #[test]
    fn forest_allowed() {
        let store = store();
        // Two disjoint retained nodes: c and e (no common retained ancestor).
        let tree = ScoredTree::from_stored(
            &store,
            vec![(nref(2), None, vec![]), (nref(4), None, vec![])],
        );
        assert_eq!(tree.entries()[0].parent, None);
        assert_eq!(tree.entries()[1].parent, None);
    }
}
