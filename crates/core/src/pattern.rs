//! Scored pattern trees (Definition 2 of the paper): `P = (T, F, S)`.
//!
//! `T` is a node- and edge-labeled tree (edges: `pc`, `ad`, `ad*`), `F` a
//! boolean formula of node predicates, and `S` a set of scoring rules that
//! say how matched nodes acquire scores. Figure 3 of the paper (the pattern
//! for Query 2) looks like this here:
//!
//! ```
//! use tix_core::pattern::{EdgeKind, PatternTree, Predicate};
//! use tix_core::scoring::paper::ScoreFoo;
//!
//! let mut p = PatternTree::new();
//! let n1 = p.add_root(Predicate::tag("article"));
//! let n2 = p.add_child(n1, EdgeKind::Child, Predicate::tag("author"));
//! let n3 = p.add_child(n2, EdgeKind::Child, Predicate::And(vec![
//!     Predicate::tag("sname"),
//!     Predicate::content_eq("Doe"),
//! ]));
//! let n4 = p.add_child(n1, EdgeKind::SelfOrDescendant, Predicate::True);
//! p.score_primary(n4, ScoreFoo::shared(
//!     &["search engine"],
//!     &["internet", "information retrieval"],
//! ));
//! p.score_from_descendant(n1, n4); // $1.score = $4.score
//! assert_eq!(p.len(), 4);
//! ```

use std::fmt;
use std::sync::Arc;

use tix_store::{NodeKind, NodeRef, Store};

use crate::scoring::{JoinScorer, NodeScorer, ScoreContext};

/// Identifier of a pattern node (the paper labels them `$1`, `$2`, …).
/// Also used as the identifier space for auxiliary score variables such as
/// `$joinScore`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternNodeId(pub u32);

impl fmt::Display for PatternNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// Edge labels of the pattern tree (Def. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `pc`: parent-child.
    Child,
    /// `ad`: ancestor-descendant (proper).
    Descendant,
    /// `ad*`: self-or-descendant — "especially common in IR-style queries
    /// against XML" (the unit-of-retrieval variable).
    SelfOrDescendant,
}

/// A node predicate — the formula `F` is the conjunction over all pattern
/// nodes of their predicate expressions (arbitrary boolean combinations are
/// expressible per node via `And`/`Or`/`Not`).
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true (unconstrained node, e.g. the paper's `$4`).
    True,
    /// `node.tag = t`.
    TagEq(String),
    /// `node.content = s` — the concatenated subtree text, trimmed.
    ContentEq(String),
    /// The subtree text contains `s` (case-insensitive).
    ContentContains(String),
    /// `node.attr = v`.
    AttrEq(String, String),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Shorthand for [`Predicate::TagEq`].
    pub fn tag(t: &str) -> Self {
        Predicate::TagEq(t.to_string())
    }

    /// Shorthand for [`Predicate::ContentEq`].
    pub fn content_eq(s: &str) -> Self {
        Predicate::ContentEq(s.to_string())
    }

    /// Evaluate the predicate against a stored node.
    ///
    /// Only element nodes can match a pattern node (the algebra's trees are
    /// element trees; text is reached through `content`).
    pub fn eval(&self, store: &Store, node: NodeRef) -> bool {
        if store.kind(node) != NodeKind::Element {
            return false;
        }
        self.eval_element(store, node)
    }

    fn eval_element(&self, store: &Store, node: NodeRef) -> bool {
        match self {
            Predicate::True => true,
            Predicate::TagEq(t) => store.tag_name(node) == Some(t.as_str()),
            Predicate::ContentEq(s) => store.text_content(node).trim() == s,
            Predicate::ContentContains(s) => store
                .text_content(node)
                .to_lowercase()
                .contains(&s.to_lowercase()),
            Predicate::AttrEq(name, value) => store.attribute(node, name) == Some(value.as_str()),
            Predicate::And(parts) => parts.iter().all(|p| p.eval_element(store, node)),
            Predicate::Or(parts) => parts.iter().any(|p| p.eval_element(store, node)),
            Predicate::Not(inner) => !inner.eval_element(store, node),
        }
    }
}

/// Aggregation used when a secondary IR-node draws its score from the
/// nodes matching a descendant variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Highest score ("selecting the highest score it can possibly
    /// achieve", Sec. 3.2.2) — the paper's default for secondary IR-nodes.
    Max,
    /// Sum of scores.
    Sum,
}

impl Agg {
    /// Apply the aggregate to an iterator of scores.
    pub fn apply(self, scores: impl Iterator<Item = f64>) -> Option<f64> {
        let mut any = false;
        let mut acc = 0.0f64;
        for s in scores {
            if !any {
                acc = s;
                any = true;
            } else {
                acc = match self {
                    Agg::Max => acc.max(s),
                    Agg::Sum => acc + s,
                };
            }
        }
        any.then_some(acc)
    }
}

/// The combining function of a [`ScoreRule::Combined`] rule: maps the
/// gathered input scores (missing inputs arrive as 0) to the node's score.
pub type ScoreCombiner = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// An input to a [`ScoreRule::Combined`] rule.
#[derive(Clone)]
pub enum ScoreInput {
    /// Aggregate of the scores of nodes bound to a variable.
    Var(PatternNodeId, Agg),
    /// An auxiliary score attached to the tree (e.g. `$joinScore`).
    Aux(PatternNodeId),
}

/// One entry of the scoring set `S`.
#[derive(Clone)]
pub enum ScoreRule {
    /// A **primary IR-node**: an IR predicate scores the matched node
    /// directly (e.g. `$4.score = ScoreFoo(...)`).
    Primary {
        /// The pattern node being scored.
        node: PatternNodeId,
        /// The user-defined scoring function.
        scorer: Arc<dyn NodeScorer>,
    },
    /// A **secondary IR-node** whose score derives from the nodes matching
    /// a descendant variable (e.g. `$1.score = $4.score`).
    FromDescendant {
        /// The pattern node being scored.
        node: PatternNodeId,
        /// The variable supplying scores.
        source: PatternNodeId,
        /// How multiple matches combine (Max reproduces the paper).
        agg: Agg,
    },
    /// A scored **join condition** between two variables (Fig. 4:
    /// `$joinScore = ScoreSim($3.content, $8.content)`); the result is
    /// stored as an auxiliary score under `output`.
    Join {
        /// Left input variable.
        left: PatternNodeId,
        /// Right input variable.
        right: PatternNodeId,
        /// The similarity function.
        scorer: Arc<dyn JoinScorer>,
        /// Auxiliary variable that receives the score.
        output: PatternNodeId,
    },
    /// A general combination (Fig. 4: `$1.score = ScoreBar($joinScore,
    /// $6.score)`).
    Combined {
        /// The pattern node being scored.
        node: PatternNodeId,
        /// Input scores, in the order the combiner expects them.
        inputs: Vec<ScoreInput>,
        /// The combining function; missing inputs arrive as 0.
        combine: ScoreCombiner,
    },
}

impl fmt::Debug for ScoreRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreRule::Primary { node, scorer } => {
                write!(f, "Primary({node} <- {})", scorer.name())
            }
            ScoreRule::FromDescendant { node, source, agg } => {
                write!(f, "FromDescendant({node} <- {agg:?} {source})")
            }
            ScoreRule::Join {
                left,
                right,
                output,
                scorer,
            } => {
                write!(f, "Join({output} <- {}({left}, {right}))", scorer.name())
            }
            ScoreRule::Combined { node, inputs, .. } => {
                write!(f, "Combined({node} <- {} inputs)", inputs.len())
            }
        }
    }
}

/// One node of the pattern tree `T`.
#[derive(Debug, Clone)]
pub struct PatternNode {
    /// The node's identifier (`$n`).
    pub id: PatternNodeId,
    /// Parent pattern node, if any.
    pub parent: Option<PatternNodeId>,
    /// Label of the edge to the parent (meaningless for roots).
    pub edge: EdgeKind,
    /// The node's predicate (its conjunct of the formula `F`).
    pub predicate: Predicate,
}

/// A scored pattern tree `(T, F, S)`.
#[derive(Debug, Clone, Default)]
pub struct PatternTree {
    nodes: Vec<PatternNode>,
    rules: Vec<ScoreRule>,
    next_id: u32,
}

impl PatternTree {
    /// Create an empty pattern.
    pub fn new() -> Self {
        PatternTree::default()
    }

    /// Create an empty pattern whose node ids start at `first` instead of
    /// `$1` — used to keep the variable spaces of two patterns disjoint
    /// when their matches are combined by the join operator (the paper's
    /// Fig. 4 numbers the two sides `$2…$6` and `$7…$8`).
    pub fn with_first_id(first: u32) -> Self {
        assert!(first >= 1, "pattern ids start at 1");
        PatternTree {
            next_id: first - 1,
            ..PatternTree::default()
        }
    }

    fn fresh_id(&mut self) -> PatternNodeId {
        self.next_id += 1;
        PatternNodeId(self.next_id)
    }

    /// Add a root pattern node. Multiple roots are allowed (the product
    /// operator matches two independent patterns).
    pub fn add_root(&mut self, predicate: Predicate) -> PatternNodeId {
        let id = self.fresh_id();
        self.nodes.push(PatternNode {
            id,
            parent: None,
            edge: EdgeKind::Child,
            predicate,
        });
        id
    }

    /// Add a child pattern node under `parent` with the given edge label.
    ///
    /// # Panics
    /// Panics if `parent` is not a node of this pattern.
    pub fn add_child(
        &mut self,
        parent: PatternNodeId,
        edge: EdgeKind,
        predicate: Predicate,
    ) -> PatternNodeId {
        assert!(
            self.node(parent).is_some(),
            "unknown parent pattern node {parent}"
        );
        let id = self.fresh_id();
        self.nodes.push(PatternNode {
            id,
            parent: Some(parent),
            edge,
            predicate,
        });
        id
    }

    /// Declare `node` a primary IR-node scored by `scorer`.
    pub fn score_primary(&mut self, node: PatternNodeId, scorer: Arc<dyn NodeScorer>) {
        self.rules.push(ScoreRule::Primary { node, scorer });
    }

    /// Declare `node` a secondary IR-node with `node.score = max(source.score)`.
    pub fn score_from_descendant(&mut self, node: PatternNodeId, source: PatternNodeId) {
        self.rules.push(ScoreRule::FromDescendant {
            node,
            source,
            agg: Agg::Max,
        });
    }

    /// Declare a scored join condition; returns the auxiliary variable
    /// holding the join score.
    pub fn score_join(
        &mut self,
        left: PatternNodeId,
        right: PatternNodeId,
        scorer: Arc<dyn JoinScorer>,
    ) -> PatternNodeId {
        let output = self.fresh_id();
        self.rules.push(ScoreRule::Join {
            left,
            right,
            scorer,
            output,
        });
        output
    }

    /// Declare a combined scoring rule for `node`.
    pub fn score_combined(
        &mut self,
        node: PatternNodeId,
        inputs: Vec<ScoreInput>,
        combine: ScoreCombiner,
    ) {
        self.rules.push(ScoreRule::Combined {
            node,
            inputs,
            combine,
        });
    }

    /// Strengthen existing pattern nodes with additional attribute-equality
    /// constraints `(node, attribute name, value)` — used by the query
    /// front end for `[@name="v"]` predicates, which constrain an already-
    /// added step rather than introducing a new one.
    pub fn strengthen(&mut self, constraints: &[(PatternNodeId, String, String)]) {
        for (id, name, value) in constraints {
            if let Some(node) = self.nodes.iter_mut().find(|n| n.id == *id) {
                let existing = std::mem::replace(&mut node.predicate, Predicate::True);
                node.predicate = Predicate::And(vec![
                    existing,
                    Predicate::AttrEq(name.clone(), value.clone()),
                ]);
            }
        }
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the pattern has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The pattern nodes in insertion (preorder) order.
    pub fn nodes(&self) -> &[PatternNode] {
        &self.nodes
    }

    /// Look up a pattern node by id.
    pub fn node(&self, id: PatternNodeId) -> Option<&PatternNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// The scoring rules `S`.
    pub fn rules(&self) -> &[ScoreRule] {
        &self.rules
    }

    /// Root pattern nodes.
    pub fn roots(&self) -> impl Iterator<Item = &PatternNode> {
        self.nodes.iter().filter(|n| n.parent.is_none())
    }

    /// Children of pattern node `id`.
    pub fn children(&self, id: PatternNodeId) -> impl Iterator<Item = &PatternNode> {
        self.nodes.iter().filter(move |n| n.parent == Some(id))
    }

    /// The primary scorer attached to `id`, if any.
    pub fn primary_scorer(&self, id: PatternNodeId) -> Option<&Arc<dyn NodeScorer>> {
        self.rules.iter().find_map(|r| match r {
            ScoreRule::Primary { node, scorer } if *node == id => Some(scorer),
            _ => None,
        })
    }

    /// True when `id` is an IR-node (primary or secondary) — i.e. some rule
    /// assigns it a score.
    pub fn is_ir_node(&self, id: PatternNodeId) -> bool {
        self.rules.iter().any(|r| match r {
            ScoreRule::Primary { node, .. }
            | ScoreRule::FromDescendant { node, .. }
            | ScoreRule::Combined { node, .. } => *node == id,
            ScoreRule::Join { .. } => false,
        })
    }

    /// Evaluate the primary score for a data node bound to pattern node
    /// `id`; `None` when `id` has no primary scorer.
    pub fn eval_primary(
        &self,
        ctx: &ScoreContext<'_>,
        id: PatternNodeId,
        node: NodeRef,
    ) -> Option<f64> {
        self.primary_scorer(id)
            .map(|scorer| scorer.score(ctx, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::paper::ScoreFoo;
    use tix_store::{DocId, NodeIdx, Store};

    fn nref(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeIdx(i))
    }

    #[test]
    fn build_query2_pattern() {
        let mut p = PatternTree::new();
        let n1 = p.add_root(Predicate::tag("article"));
        let n2 = p.add_child(n1, EdgeKind::Child, Predicate::tag("author"));
        let _n3 = p.add_child(
            n2,
            EdgeKind::Child,
            Predicate::And(vec![Predicate::tag("sname"), Predicate::content_eq("Doe")]),
        );
        let n4 = p.add_child(n1, EdgeKind::SelfOrDescendant, Predicate::True);
        p.score_primary(n4, ScoreFoo::shared(&["search engine"], &[]));
        p.score_from_descendant(n1, n4);
        assert_eq!(p.len(), 4);
        assert!(p.is_ir_node(n1));
        assert!(p.is_ir_node(n4));
        assert!(!p.is_ir_node(n2));
        assert!(p.primary_scorer(n4).is_some());
        assert!(p.primary_scorer(n1).is_none());
    }

    #[test]
    fn predicates_eval() {
        let mut store = Store::new();
        store
            .load_str("t.xml", r#"<a id="7"><b>Doe</b><c>unrelated</c></a>"#)
            .unwrap();
        let a = nref(0);
        let b = nref(1);
        assert!(Predicate::tag("a").eval(&store, a));
        assert!(!Predicate::tag("a").eval(&store, b));
        assert!(Predicate::content_eq("Doe").eval(&store, b));
        assert!(Predicate::AttrEq("id".into(), "7".into()).eval(&store, a));
        assert!(Predicate::ContentContains("DOE".into()).eval(&store, b));
        assert!(
            Predicate::And(vec![Predicate::tag("b"), Predicate::content_eq("Doe")]).eval(&store, b)
        );
        assert!(Predicate::Or(vec![Predicate::tag("z"), Predicate::tag("b")]).eval(&store, b));
        assert!(Predicate::Not(Box::new(Predicate::tag("z"))).eval(&store, b));
        // Text nodes never match.
        assert!(!Predicate::True.eval(&store, nref(2)));
    }

    #[test]
    fn agg_apply() {
        assert_eq!(Agg::Max.apply([1.0, 5.0, 3.0].into_iter()), Some(5.0));
        assert_eq!(Agg::Sum.apply([1.0, 5.0, 3.0].into_iter()), Some(9.0));
        assert_eq!(Agg::Max.apply(std::iter::empty()), None);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn bad_parent_panics() {
        let mut p = PatternTree::new();
        p.add_child(PatternNodeId(42), EdgeKind::Child, Predicate::True);
    }

    #[test]
    fn ids_are_sequential_dollar_names() {
        let mut p = PatternTree::new();
        let n1 = p.add_root(Predicate::True);
        let n2 = p.add_child(n1, EdgeKind::Child, Predicate::True);
        assert_eq!(n1.to_string(), "$1");
        assert_eq!(n2.to_string(), "$2");
    }
}
