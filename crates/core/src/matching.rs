//! Pattern-tree matching: enumerate the witness bindings of a scored
//! pattern tree against a subtree of the store.
//!
//! This is the reference (logical-level) matcher used by the algebra
//! operators. It walks the pattern in preorder and backtracks over
//! candidate data nodes, using the tag index where a pattern node has a
//! known tag and the region encoding for the structural checks. The
//! high-performance access methods in `tix-exec` specialize frequent
//! operator combinations away from this generic path — exactly the paper's
//! framing in Sec. 5.1.

use tix_store::{NodeRef, Store};

use crate::pattern::{EdgeKind, PatternNode, PatternTree, Predicate};

/// One witness: the data node bound to each pattern node, in
/// [`PatternTree::nodes`] order.
pub type Binding = Vec<NodeRef>;

/// Enumerate all bindings of `pattern` within the subtree rooted at
/// `scope` (the pattern root may bind to `scope` itself or any descendant
/// element).
///
/// # Panics
/// Panics if the pattern does not have exactly one root.
pub fn matches(store: &Store, pattern: &PatternTree, scope: NodeRef) -> Vec<Binding> {
    let mut roots = pattern.roots();
    // lint:allow(no-unwrap): documented panic contract above
    let root = roots.next().expect("pattern must have a root");
    assert!(roots.next().is_none(), "pattern must have exactly one root");

    let order = pattern.nodes();
    let mut out = Vec::new();
    let mut binding: Vec<Option<NodeRef>> = vec![None; order.len()];
    extend(store, order, scope, root, 0, &mut binding, &mut out);
    out
}

/// Recursive backtracking over pattern nodes in their (preorder) insertion
/// order. `pos` indexes `order`.
#[allow(clippy::too_many_arguments)]
fn extend(
    store: &Store,
    order: &[PatternNode],
    scope: NodeRef,
    _root: &PatternNode,
    pos: usize,
    binding: &mut Vec<Option<NodeRef>>,
    out: &mut Vec<Binding>,
) {
    let Some(pnode) = order.get(pos) else {
        // Every slot is filled on the way down (binding[i] is set before
        // recursing to i + 1), so flatten preserves the arity.
        out.push(binding.iter().flatten().copied().collect());
        return;
    };
    let candidates: Vec<NodeRef> = match pnode.parent {
        None => candidates_in_scope(store, scope, &pnode.predicate),
        Some(parent_id) => {
            let anchor = order
                .iter()
                .position(|n| n.id == parent_id)
                .and_then(|parent_pos| binding.get(parent_pos).copied().flatten())
                // lint:allow(no-unwrap): PatternTree insertion order guarantees the parent precedes its child and is bound
                .expect("parent bound before child");
            candidates_under(store, anchor, pnode.edge, &pnode.predicate)
        }
    };
    for candidate in candidates {
        if let Some(slot) = binding.get_mut(pos) {
            *slot = Some(candidate);
        }
        extend(store, order, scope, _root, pos + 1, binding, out);
    }
    if let Some(slot) = binding.get_mut(pos) {
        *slot = None;
    }
}

/// Candidates for the pattern root: `scope` itself or any descendant
/// element satisfying the predicate.
fn candidates_in_scope(store: &Store, scope: NodeRef, predicate: &Predicate) -> Vec<NodeRef> {
    if let Some(tag) = known_tag(predicate) {
        // Tag-index access path, narrowed to the scope's region.
        let list = store.elements_with_tag(tag);
        let end = store.end_key(scope);
        let lo = list.partition_point(|n| *n < scope);
        let hi =
            list.partition_point(|n| n.doc < scope.doc || (n.doc == scope.doc && n.node <= end));
        list.get(lo..hi)
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|&n| predicate.eval(store, n))
            .collect()
    } else {
        store
            .descendants_or_self(scope)
            .filter(|&n| predicate.eval(store, n))
            .collect()
    }
}

/// Candidates related to `anchor` by `edge` and satisfying the predicate.
fn candidates_under(
    store: &Store,
    anchor: NodeRef,
    edge: EdgeKind,
    predicate: &Predicate,
) -> Vec<NodeRef> {
    match edge {
        EdgeKind::Child => store
            .children(anchor)
            .filter(|&n| predicate.eval(store, n))
            .collect(),
        EdgeKind::Descendant => store
            .descendants_or_self(anchor)
            .skip(1)
            .filter(|&n| predicate.eval(store, n))
            .collect(),
        EdgeKind::SelfOrDescendant => store
            .descendants_or_self(anchor)
            .filter(|&n| predicate.eval(store, n))
            .collect(),
    }
}

/// Extract the single tag a predicate requires, if statically known
/// (a top-level `TagEq`, or one inside a conjunction).
fn known_tag(predicate: &Predicate) -> Option<&str> {
    match predicate {
        Predicate::TagEq(t) => Some(t),
        Predicate::And(parts) => parts.iter().find_map(known_tag),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{EdgeKind, PatternTree, Predicate};
    use tix_store::{DocId, NodeIdx};

    fn nref(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeIdx(i))
    }

    fn store() -> Store {
        let mut s = Store::new();
        // a=0 [ b=1 [c=2] b=3 [d=4 [c=5]] ]
        s.load_str("t.xml", "<a><b><c/></b><b><d><c/></d></b></a>")
            .unwrap();
        s
    }

    #[test]
    fn child_edge() {
        let store = store();
        let mut p = PatternTree::new();
        let a = p.add_root(Predicate::tag("a"));
        p.add_child(a, EdgeKind::Child, Predicate::tag("b"));
        let bindings = matches(&store, &p, nref(0));
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0], vec![nref(0), nref(1)]);
        assert_eq!(bindings[1], vec![nref(0), nref(3)]);
    }

    #[test]
    fn descendant_edge() {
        let store = store();
        let mut p = PatternTree::new();
        let b = p.add_root(Predicate::tag("b"));
        p.add_child(b, EdgeKind::Descendant, Predicate::tag("c"));
        let bindings = matches(&store, &p, nref(0));
        // b(1)→c(2) and b(3)→c(5) (through d).
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0], vec![nref(1), nref(2)]);
        assert_eq!(bindings[1], vec![nref(3), nref(5)]);
    }

    #[test]
    fn self_or_descendant_includes_self() {
        let store = store();
        let mut p = PatternTree::new();
        let a = p.add_root(Predicate::tag("a"));
        p.add_child(a, EdgeKind::SelfOrDescendant, Predicate::True);
        let bindings = matches(&store, &p, nref(0));
        // Every element of the document, including a itself.
        assert_eq!(bindings.len(), 6);
        assert_eq!(bindings[0][1], nref(0));
    }

    #[test]
    fn proper_descendant_excludes_self() {
        let store = store();
        let mut p = PatternTree::new();
        let a = p.add_root(Predicate::tag("a"));
        p.add_child(a, EdgeKind::Descendant, Predicate::True);
        let bindings = matches(&store, &p, nref(0));
        assert_eq!(bindings.len(), 5);
        assert!(bindings.iter().all(|b| b[1] != nref(0)));
    }

    #[test]
    fn scope_restricts_matches() {
        let store = store();
        let mut p = PatternTree::new();
        p.add_root(Predicate::tag("c"));
        // Scoped to the second b: only c=5 matches.
        let bindings = matches(&store, &p, nref(3));
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0], vec![nref(5)]);
    }

    #[test]
    fn sibling_pattern_nodes() {
        let store = store();
        let mut p = PatternTree::new();
        let a = p.add_root(Predicate::tag("a"));
        p.add_child(a, EdgeKind::Child, Predicate::tag("b"));
        p.add_child(a, EdgeKind::Descendant, Predicate::tag("d"));
        let bindings = matches(&store, &p, nref(0));
        // Both b bindings pair with the single d.
        assert_eq!(bindings.len(), 2);
        assert!(bindings.iter().all(|b| b[2] == nref(4)));
    }

    #[test]
    fn no_match_empty() {
        let store = store();
        let mut p = PatternTree::new();
        p.add_root(Predicate::tag("nothere"));
        assert!(matches(&store, &p, nref(0)).is_empty());
    }

    #[test]
    fn content_predicate_filters() {
        let mut s = Store::new();
        s.load_str("t.xml", "<r><x>keep</x><x>drop</x></r>")
            .unwrap();
        let mut p = PatternTree::new();
        p.add_root(Predicate::And(vec![
            Predicate::tag("x"),
            Predicate::content_eq("keep"),
        ]));
        let bindings = matches(&s, &p, nref(0));
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0][0], nref(1));
    }

    #[test]
    fn multi_doc_tag_index_respects_scope() {
        let mut s = Store::new();
        s.load_str("a.xml", "<r><x/></r>").unwrap();
        s.load_str("b.xml", "<r><x/><x/></r>").unwrap();
        let mut p = PatternTree::new();
        p.add_root(Predicate::tag("x"));
        let scope_b = NodeRef::new(DocId(1), NodeIdx(0));
        assert_eq!(matches(&s, &p, scope_b).len(), 2);
        let scope_a = NodeRef::new(DocId(0), NodeIdx(0));
        assert_eq!(matches(&s, &p, scope_a).len(), 1);
    }
}
