//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Generates values of one type from a deterministic RNG. Unlike the real
/// crate there is no shrinking: `generate` *is* the whole contract.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Keep only values satisfying `pred`, regenerating on rejection.
    fn prop_filter<R, P>(self, whence: R, pred: P) -> Filter<Self, P>
    where
        Self: Sized,
        R: Into<String>,
        P: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Type-erase into a clonable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` is the leaf; `recurse` wraps a
    /// strategy for depth *n* into one for depth *n + 1*. The `_desired_size`
    /// and `_expected_branch` hints of the real API are accepted and
    /// ignored; recursion depth is bounded by `depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    source: S,
    whence: String,
    pred: P,
}

impl<S, P> Strategy for Filter<S, P>
where
    S: Strategy,
    P: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice over same-typed strategies (the engine behind
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + rng.below(span.saturating_add(1).max(1)) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// String strategies from a regex-like pattern (see [`crate::pattern`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($(ref $name,)+) = *self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0usize..1).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn map_filter_compose() {
        let strat = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |&v| v != 0);
        let mut rng = rng();
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v > 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let strat = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut rng = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).boxed().prop_recursive(4, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = rng();
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 5);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let strat = (0u32..4, Just("x"), 1usize..2);
        let mut rng = rng();
        let (a, b, c) = strat.generate(&mut rng);
        assert!(a < 4);
        assert_eq!(b, "x");
        assert_eq!(c, 1);
    }
}
