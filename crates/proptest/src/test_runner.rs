//! Deterministic RNG and per-test configuration.

/// Seed used when `TIX_PROPTEST_SEED` is not set. Fixed so every `cargo
/// test` run generates the same cases — failures always reproduce.
pub const DEFAULT_SEED: u64 = 0x7115_5EED_CAFE_F00D;

/// The effective base seed: `TIX_PROPTEST_SEED` (decimal) or
/// [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("TIX_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Per-test configuration. Only `cases` is honoured; the `PROPTEST_CASES`
/// environment variable overrides it (matching the real runner).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A small, fast, deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The RNG for one case of one named test: mixes the base seed, the
    /// test name, and the case index so every case is independent.
    pub fn for_case(seed: u64, test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(seed ^ h ^ ((case as u64) << 17 | 1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TestRng::for_case(1, "t", 0);
        let mut b = TestRng::for_case(1, "t", 0);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_diverge() {
        let mut a = TestRng::for_case(1, "t", 0);
        let mut b = TestRng::for_case(1, "t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            assert!(rng.below(13) < 13);
        }
        assert_eq!(rng.below(0), 0);
    }
}
