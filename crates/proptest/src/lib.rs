//! In-tree stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no route to a crates registry, so this crate
//! implements — dependency-free — exactly the API subset the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, tuple and range strategies,
//! regex-like string strategies, [`collection::vec`] /
//! [`collection::btree_map`] / [`option::of`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case prints its generated inputs and the
//!   seed instead;
//! * **fully deterministic** — every run uses a fixed seed
//!   ([`test_runner::DEFAULT_SEED`]) unless `TIX_PROPTEST_SEED` overrides
//!   it, so failures always reproduce;
//! * the case count honours `PROPTEST_CASES` (env) over the per-test
//!   [`test_runner::ProptestConfig`], exactly like the real runner.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run a block of property tests. Supports the same surface syntax as the
/// real macro for the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, s in "[a-z]{1,4}") { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __cases: u32 = std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(__config.cases);
                let __seed: u64 = $crate::test_runner::seed_from_env();
                let __strategies = ( $($strat,)+ );
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        __seed,
                        stringify!($name),
                        __case,
                    );
                    let ( $($arg,)+ ) = {
                        let ( $(ref $arg,)+ ) = __strategies;
                        ( $($crate::strategy::Strategy::generate($arg, &mut __rng),)+ )
                    };
                    let __values = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg,)+
                    );
                    let __outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || { $body }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "[proptest] {} failed at case {}/{} (seed {}; rerun with \
                             TIX_PROPTEST_SEED={})\ninputs:\n{}",
                            stringify!($name), __case, __cases, __seed, __seed, __values,
                        );
                        std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property test (panics with the formatted
/// message on failure; the runner prints the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
/// (The real macro supports weighted arms; the workspace only uses the
/// unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
