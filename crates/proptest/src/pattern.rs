//! Generation of strings from the regex subset used as string strategies.
//!
//! Supported syntax: literal characters, `\`-escapes (`\n`, `\t`, `\r`,
//! `\.`…), character classes `[a-z0-9_.-]` (ranges, escapes, literal `-`
//! last), groups `( … )`, and the quantifiers `{n}`, `{n,m}`, `?`, `*`,
//! `+` (`*`/`+` are capped at 8 repetitions — generation, not matching).

use crate::test_runner::TestRng;

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut pos = 0;
    gen_seq(&chars, &mut pos, chars.len(), rng, &mut out);
    out
}

fn gen_seq(p: &[char], pos: &mut usize, end: usize, rng: &mut TestRng, out: &mut String) {
    while *pos < end {
        gen_atom(p, pos, rng, out);
    }
}

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    /// Group body span `[start, end)` (parens excluded).
    Group(usize, usize),
}

fn gen_atom(p: &[char], pos: &mut usize, rng: &mut TestRng, out: &mut String) {
    let atom = match p[*pos] {
        '[' => {
            *pos += 1;
            Atom::Class(parse_class(p, pos))
        }
        '(' => {
            let open = *pos;
            let close = matching_paren(p, open);
            *pos = close + 1;
            Atom::Group(open + 1, close)
        }
        '\\' => {
            *pos += 1;
            let c = unescape(p[*pos]);
            *pos += 1;
            Atom::Literal(c)
        }
        c => {
            *pos += 1;
            Atom::Literal(c)
        }
    };
    let (lo, hi) = parse_quantifier(p, pos);
    let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
    for _ in 0..reps {
        match &atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Class(ranges) => out.push(pick_from_class(ranges, rng)),
            Atom::Group(start, end) => {
                let mut inner = *start;
                gen_seq(p, &mut inner, *end, rng, out);
            }
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parse a class body after the opening `[`, consuming the closing `]`.
fn parse_class(p: &[char], pos: &mut usize) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    while p[*pos] != ']' {
        let lo = if p[*pos] == '\\' {
            *pos += 1;
            let c = unescape(p[*pos]);
            *pos += 1;
            c
        } else {
            let c = p[*pos];
            *pos += 1;
            c
        };
        // A `-` is a range separator only between two class members.
        if p[*pos] == '-' && p[*pos + 1] != ']' {
            *pos += 1;
            let hi = if p[*pos] == '\\' {
                *pos += 1;
                let c = unescape(p[*pos]);
                *pos += 1;
                c
            } else {
                let c = p[*pos];
                *pos += 1;
                c
            };
            assert!(lo <= hi, "invalid class range {lo}-{hi}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    *pos += 1; // consume ']'
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
        .sum();
    let mut i = rng.below(total);
    for &(lo, hi) in ranges {
        let span = (hi as u64) - (lo as u64) + 1;
        if i < span {
            return char::from_u32(lo as u32 + i as u32).expect("class chars are valid");
        }
        i -= span;
    }
    unreachable!("index within total span")
}

fn matching_paren(p: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < p.len() {
        match p[i] {
            '\\' => i += 1,
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    panic!("unbalanced parentheses in pattern");
}

/// Parse an optional quantifier; `(1, 1)` when absent.
fn parse_quantifier(p: &[char], pos: &mut usize) -> (usize, usize) {
    if *pos >= p.len() {
        return (1, 1);
    }
    match p[*pos] {
        '?' => {
            *pos += 1;
            (0, 1)
        }
        '*' => {
            *pos += 1;
            (0, 8)
        }
        '+' => {
            *pos += 1;
            (1, 8)
        }
        '{' => {
            *pos += 1;
            let lo = parse_number(p, pos);
            let hi = if p[*pos] == ',' {
                *pos += 1;
                parse_number(p, pos)
            } else {
                lo
            };
            assert_eq!(p[*pos], '}', "unterminated quantifier");
            *pos += 1;
            (lo, hi)
        }
        _ => (1, 1),
    }
}

fn parse_number(p: &[char], pos: &mut usize) -> usize {
    let start = *pos;
    while p[*pos].is_ascii_digit() {
        *pos += 1;
    }
    p[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .expect("quantifier number")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::new(99);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn literal_and_escape() {
        for s in samples("ab\\.c", 5) {
            assert_eq!(s, "ab.c");
        }
    }

    #[test]
    fn class_with_range_and_literals() {
        for s in samples("[a-z0-9_.-]", 200) {
            let c = s.chars().next().unwrap();
            assert!(
                c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c),
                "unexpected {c:?}"
            );
        }
    }

    #[test]
    fn bounded_quantifier() {
        for s in samples("[a-z]{2,5}", 100) {
            assert!((2..=5).contains(&s.len()), "{s:?}");
        }
        for s in samples("x{3}", 5) {
            assert_eq!(s, "xxx");
        }
    }

    #[test]
    fn group_with_quantifier() {
        // The query-crate phrase pattern.
        for s in samples("[a-z]( [a-z]{1,6}){0,2}", 100) {
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "{s:?}");
            assert_eq!(words[0].len(), 1);
            for w in &words[1..] {
                assert!((1..=6).contains(&w.len()), "{s:?}");
            }
        }
    }

    #[test]
    fn printable_class_with_specials() {
        for s in samples("[ -~<>&\"']{0,20}", 50) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn newline_escape_in_class() {
        let joined = samples("[ -~\\n]{0,40}", 50).concat();
        assert!(joined
            .chars()
            .all(|c| c == '\n' || (' '..='~').contains(&c)));
    }
}
