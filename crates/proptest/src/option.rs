//! The [`of`] strategy for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`, `Some` three times out of four
/// (matching the real crate's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let strat = of(0u32..10);
        let mut rng = TestRng::new(5);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > none, "Some should dominate ({some} vs {none})");
        assert!(none > 0);
    }
}
