//! The [`Arbitrary`] trait and [`any`], for `any::<T>()` call sites.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`: `any::<bool>()`, `any::<u32>()`, …
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy behind the integer/bool [`Arbitrary`] impls.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Strategy for FullRange<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }

            impl Arbitrary for $ty {
                type Strategy = FullRange<$ty>;

                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let strat = any::<bool>();
        let mut rng = TestRng::new(3);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn integers_vary() {
        let strat = any::<u32>();
        let mut rng = TestRng::new(3);
        let a = strat.generate(&mut rng);
        let b = strat.generate(&mut rng);
        assert_ne!(a, b);
    }
}
