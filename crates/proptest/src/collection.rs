//! Collection strategies: [`vec`] and [`btree_map`].

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive size bound for collection strategies, converted
/// from the `usize` and `Range<usize>` forms the call sites use.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<E::Value>` with a size drawn from `size`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with a size drawn from
/// `size`. Duplicate keys are re-rolled a bounded number of times, so the
/// map can come up short only when the key space is nearly exhausted.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord + Debug,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 100 {
            attempts += 1;
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(0u32..5, 2..6);
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn vec_exact_size() {
        let strat = vec(0u32..5, 3);
        let mut rng = TestRng::new(11);
        assert_eq!(strat.generate(&mut rng).len(), 3);
    }

    #[test]
    fn btree_map_reaches_target_size() {
        let strat = btree_map(0u32..1000, 0u32..10, 4..5);
        let mut rng = TestRng::new(11);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 4);
        }
    }

    #[test]
    fn btree_map_tolerates_small_key_space() {
        // Only 3 possible keys but a target of up to 7: must terminate.
        let strat = btree_map(0u32..3, 0u32..10, 0..8);
        let mut rng = TestRng::new(11);
        for _ in 0..50 {
            assert!(strat.generate(&mut rng).len() <= 3);
        }
    }
}
