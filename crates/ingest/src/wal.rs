//! The write-ahead log: an append-only record stream with per-record
//! checksums and prefix-durable recovery.
//!
//! ## File layout
//!
//! ```text
//! +--------+---------+----------------------------------------------+
//! | magic  | version | record*                                      |
//! | TIXWAL | u8 (=1) |                                              |
//! +--------+---------+----------------------------------------------+
//! ```
//!
//! Each record is framed exactly like a v2 snapshot section
//! (`tix_store::persist::write_section`): a `u32` little-endian payload
//! length, the payload, then the payload's CRC-32. The payload itself is
//!
//! ```text
//! lsn: u64 LE | op: u8 | name: u32 LE + bytes | xml: u32 LE + bytes (op=Add only)
//! ```
//!
//! with `op` 1 = AddDocument, 2 = RemoveDocument. LSNs are strictly
//! increasing across the log; the first record after a fresh header may
//! carry any LSN (recovery gates on the checkpoint's LSN, not on 1).
//!
//! ## Durability contract
//!
//! * The header is only ever written through
//!   [`tix_store::persist::atomic_write`] — a WAL file either has a
//!   complete, valid header or does not exist.
//! * [`Wal::append`] writes one whole frame with a single `write_all`
//!   followed by `sync_all`; [`Wal::append_frames`] does the same for a
//!   group-commit batch of pre-encoded frames. A record is **committed**
//!   iff its full frame (including the trailing CRC) reached the file.
//! * A failed write or sync **rolls back**: the file is truncated to the
//!   pre-append offset so a torn frame never lingers ahead of the write
//!   cursor (where the next append would strand it as unreachable
//!   garbage, silently cutting replay short). If the rollback truncation
//!   itself fails the log is **poisoned**: every later operation errors
//!   out instead of appending after bytes in an unknown state.
//! * [`Wal::open`] scans the log and recovers the longest committed
//!   prefix: the scan stops at the first frame that is torn (short),
//!   fails its CRC, decodes to a malformed payload, or breaks LSN
//!   monotonicity — and the file is truncated back to the end of the last
//!   good frame. Recovery never panics and never "repairs" bytes: a torn
//!   tail is dropped, a committed prefix is kept, nothing else.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tix_store::persist::atomic_write;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8] = b"TIXWAL";
/// Current WAL format version.
pub const WAL_VERSION: u8 = 1;

/// Header length in bytes (magic + version), as a usize for slicing.
const WAL_HEADER_USIZE: usize = WAL_MAGIC.len() + 1;

/// Header length in bytes: magic + version.
// lint:allow(no-as-cast): widening usize -> u64 of a 7-byte constant
pub const WAL_HEADER_LEN: u64 = WAL_HEADER_USIZE as u64;

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;

/// Checked `usize -> u64` widening. Infallible on every supported target
/// (usize is at most 64 bits); the saturating fallback only exists so no
/// `as` cast and no panic path is needed.
pub(crate) fn len_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Load a new document (fails on a duplicate name — see the engine's
    /// apply-before-stage protocol).
    AddDocument {
        /// Unique document name.
        name: String,
        /// The document's XML source.
        xml: String,
    },
    /// Remove a document by name.
    RemoveDocument {
        /// Name of the document to drop.
        name: String,
    },
}

/// One committed record as recovered by [`Wal::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Byte offset of the record's frame in the file (for tail
    /// truncation when a replayed record fails to apply).
    pub offset: u64,
    /// The record's log sequence number.
    pub lsn: u64,
    /// The mutation itself.
    pub record: WalRecord,
}

/// The result of scanning a WAL file: the committed prefix and whether a
/// torn/corrupt tail had to be dropped.
#[derive(Debug)]
pub struct WalScan {
    /// Committed records in append order.
    pub entries: Vec<WalEntry>,
    /// Byte length of the committed prefix (header included).
    pub valid_len: u64,
    /// True when bytes past `valid_len` were torn or corrupt.
    pub torn: bool,
}

/// An open write-ahead log. See the module docs for the format and the
/// durability contract.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    len: u64,
    /// Set when a failed append could not be rolled back: the bytes past
    /// `len` are in an unknown state, so every further operation must
    /// error instead of appending after potential garbage.
    poisoned: Option<String>,
    /// Test-only injected write fault: fail after this many bytes of the
    /// next frame write (see [`Wal::inject_write_fault`]).
    write_fault: Option<u64>,
}

/// Minimal bounds-checked cursor over a record payload. Every accessor
/// returns `None` past the end, so a corrupt length field can never cause
/// a panic or an over-read.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Option<u32> {
        let mut out = [0u8; 4];
        out.copy_from_slice(self.take(4)?);
        Some(u32::from_le_bytes(out))
    }

    fn u64(&mut self) -> Option<u64> {
        let mut out = [0u8; 8];
        out.copy_from_slice(self.take(8)?);
        Some(u64::from_le_bytes(out))
    }

    fn string(&mut self) -> Option<String> {
        let len = usize::try_from(self.u32()?).ok()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_str(payload: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len = u32::try_from(s.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "WAL string exceeds u32 bytes"))?;
    payload.extend_from_slice(&len.to_le_bytes());
    payload.extend_from_slice(s.as_bytes());
    Ok(())
}

fn encode_payload(lsn: u64, record: &WalRecord) -> io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&lsn.to_le_bytes());
    match record {
        WalRecord::AddDocument { name, xml } => {
            payload.push(OP_ADD);
            put_str(&mut payload, name)?;
            put_str(&mut payload, xml)?;
        }
        WalRecord::RemoveDocument { name } => {
            payload.push(OP_REMOVE);
            put_str(&mut payload, name)?;
        }
    }
    Ok(payload)
}

/// Encode one record as a complete frame (length prefix + payload + CRC),
/// ready to be concatenated into a group-commit batch.
pub(crate) fn encode_frame(lsn: u64, record: &WalRecord) -> io::Result<Vec<u8>> {
    let payload = encode_payload(lsn, record)?;
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "WAL record too large"))?;
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&tix_invariants::crc32(&payload).to_le_bytes());
    Ok(frame)
}

fn decode_payload(payload: &[u8]) -> Option<(u64, WalRecord)> {
    let mut cur = Cursor {
        buf: payload,
        pos: 0,
    };
    let lsn = cur.u64()?;
    let record = match cur.u8()? {
        OP_ADD => {
            let name = cur.string()?;
            let xml = cur.string()?;
            WalRecord::AddDocument { name, xml }
        }
        OP_REMOVE => WalRecord::RemoveDocument {
            name: cur.string()?,
        },
        _ => return None,
    };
    // Trailing payload bytes mean the frame is not what the writer wrote.
    if !cur.at_end() {
        return None;
    }
    Some((lsn, record))
}

/// Scan `bytes` (a whole WAL file image) for the committed prefix.
///
/// Public because WAL-shipping replication reuses the exact same framing
/// for its wire format: a follower pulling `/wal?from_lsn=` receives a
/// valid WAL image and runs it through this scanner, so a torn or
/// bit-flipped transfer yields only the committed prefix — a corrupt
/// frame is **never** decoded into an op, let alone applied.
pub fn scan_bytes(bytes: &[u8]) -> io::Result<WalScan> {
    scan(bytes)
}

/// Serialize `entries` back into a standalone WAL image (header +
/// frames), the inverse of [`scan_bytes`]. Used by tests, recovery-time
/// log consolidation, and the replication layer to synthesize op streams.
pub fn encode_entries(entries: &[(u64, WalRecord)]) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(WAL_HEADER_USIZE);
    out.extend_from_slice(WAL_MAGIC);
    out.push(WAL_VERSION);
    for (lsn, record) in entries {
        out.extend_from_slice(&encode_frame(*lsn, record)?);
    }
    Ok(out)
}

/// Scan `bytes` (a whole WAL file image) for the committed prefix.
fn scan(bytes: &[u8]) -> io::Result<WalScan> {
    let header_ok = bytes.len() >= WAL_HEADER_USIZE
        && bytes.starts_with(WAL_MAGIC)
        && bytes.get(WAL_MAGIC.len()).copied() == Some(WAL_VERSION);
    if !header_ok {
        // The header is written atomically, so a bad header is disk
        // damage, not a torn append — surface it, don't guess.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "corrupt WAL header",
        ));
    }
    let mut entries = Vec::new();
    let mut pos = WAL_HEADER_USIZE;
    let mut prev_lsn: Option<u64> = None;
    loop {
        let frame_start = pos;
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            break; // torn inside the length prefix (or clean EOF)
        };
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(len_bytes);
        // u32 -> usize cannot fail on supported targets; saturate instead
        // of casting so a (hypothetical) 16-bit build still just stops.
        let payload_len = usize::try_from(u32::from_le_bytes(len_buf)).unwrap_or(usize::MAX);
        let Some(payload_end) = (pos + 4).checked_add(payload_len) else {
            break;
        };
        let Some(payload) = bytes.get(pos + 4..payload_end) else {
            break; // torn inside the payload
        };
        let Some(crc_bytes) = bytes.get(payload_end..payload_end + 4) else {
            break; // torn inside the checksum
        };
        let mut crc_buf = [0u8; 4];
        crc_buf.copy_from_slice(crc_bytes);
        if u32::from_le_bytes(crc_buf) != tix_invariants::crc32(payload) {
            break; // corrupt frame
        }
        let Some((lsn, record)) = decode_payload(payload) else {
            break; // checksummed but malformed: treat as corrupt tail
        };
        if prev_lsn.is_some_and(|prev| lsn <= prev) {
            break; // LSN monotonicity broken: corrupt tail
        }
        prev_lsn = Some(lsn);
        entries.push(WalEntry {
            offset: len_u64(frame_start),
            lsn,
            record,
        });
        pos = payload_end + 4;
    }
    Ok(WalScan {
        entries,
        valid_len: len_u64(pos),
        torn: pos < bytes.len(),
    })
}

impl Wal {
    /// Open (creating if missing) the WAL at `path`, recover its committed
    /// prefix, and truncate any torn tail. Returns the open log positioned
    /// for appending, plus the scan result for the caller to replay.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Wal, WalScan)> {
        let path = path.into();
        if !path.exists() {
            write_header(&path)?;
        }
        let bytes = fs::read(&path)?;
        let scan = scan(&bytes)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        let mut wal = Wal {
            path,
            file,
            len: len_u64(bytes.len()),
            poisoned: None,
            write_fault: None,
        };
        if scan.torn {
            wal.truncate_to(scan.valid_len)?;
        }
        Ok((wal, scan))
    }

    /// Total file length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// The poison reason, if a failed rollback has poisoned this log.
    pub fn poison_reason(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    fn check_poisoned(&self) -> io::Result<()> {
        match &self.poisoned {
            Some(reason) => Err(io::Error::other(format!("WAL poisoned: {reason}"))),
            None => Ok(()),
        }
    }

    /// Append one record durably: the whole frame is written with a single
    /// `write_all` and fsynced before this returns. Returns the frame's
    /// byte offset.
    ///
    /// On a write or sync error the file is truncated back to the
    /// pre-append offset, so the torn frame never sits ahead of the write
    /// cursor (where the next append would strand it as unreachable
    /// garbage and silently cut replay short). If that rollback fails, the
    /// log is poisoned and every later operation errors.
    pub fn append(&mut self, lsn: u64, record: &WalRecord) -> io::Result<u64> {
        let frame = encode_frame(lsn, record)?;
        let offset = self.len;
        self.append_frames(&frame, true)?;
        Ok(offset)
    }

    /// Append a batch of pre-encoded frames (see [`encode_frame`]) with a
    /// single `write_all`, fsyncing iff `sync`. Same rollback/poison
    /// contract as [`Wal::append`]: on any error nothing of the batch
    /// remains in the committed region.
    pub(crate) fn append_frames(&mut self, frames: &[u8], sync: bool) -> io::Result<()> {
        self.check_poisoned()?;
        let offset = self.len;
        let write_result = match self.write_fault.take() {
            None => self.file.write_all(frames),
            Some(limit) => {
                // Route the write through the shared fault-injection
                // writer so integration tests can exercise a mid-frame
                // failure against the real file: the first `limit` bytes
                // genuinely land on disk, then the write errors.
                let mut failing = tix_store::faultio::FailingWriter::fail_after(&self.file, limit);
                failing.write_all(frames)
            }
        };
        let result = write_result.and_then(|()| if sync { self.file.sync_all() } else { Ok(()) });
        match result {
            Ok(()) => {
                self.len += len_u64(frames.len());
                Ok(())
            }
            Err(e) => {
                if let Err(rollback) = self
                    .file
                    .set_len(offset)
                    .and_then(|()| self.file.sync_all())
                {
                    self.poisoned = Some(format!(
                        "append failed ({e}) and rollback truncation failed ({rollback})"
                    ));
                }
                Err(e)
            }
        }
    }

    /// Fsync every previously written frame (the group-commit leader's
    /// deferred flush under `Batched`/`Flush` durability). The frames are
    /// already acknowledged as written, so a failed sync cannot be rolled
    /// back — it poisons the log instead.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        if let Err(e) = self.file.sync_all() {
            self.poisoned = Some(format!("deferred fsync failed: {e}"));
            return Err(e);
        }
        Ok(())
    }

    /// Truncate the log back to `offset` bytes (used to drop a frame whose
    /// apply failed, and to drop a torn tail on open).
    pub fn truncate_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.set_len(offset)?;
        self.file.sync_all()?;
        self.len = offset;
        Ok(())
    }

    /// Reset the log to an empty (header-only) file, atomically: a crash
    /// during reset leaves either the old log or the fresh one, never a
    /// partial file. Used by checkpointing after the meta file commits.
    pub fn reset(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        write_header(&self.path)?;
        // The rename replaced the inode our append handle points at.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.len = WAL_HEADER_LEN;
        Ok(())
    }

    /// Rotate the log aside for a non-blocking checkpoint: the current
    /// file moves to `prev` and a fresh header-only log takes its place,
    /// so new appends proceed while the checkpoint folds the frozen state.
    ///
    /// Crash safety: if the process dies after the rename but before the
    /// fresh header lands, recovery finds `prev` without a current log,
    /// creates a fresh one, and consolidates — no committed frame is lost
    /// (see `Ingest::open`).
    pub(crate) fn rotate(&mut self, prev: &Path) -> io::Result<()> {
        self.check_poisoned()?;
        fs::rename(&self.path, prev)?;
        let reopened = write_header(&self.path)
            .and_then(|()| OpenOptions::new().append(true).open(&self.path));
        match reopened {
            Ok(file) => {
                self.file = file;
                self.len = WAL_HEADER_LEN;
                Ok(())
            }
            Err(e) => {
                // The old log is already renamed away; without a fresh
                // file there is nowhere safe to append.
                self.poisoned = Some(format!("rotation failed after rename: {e}"));
                Err(e)
            }
        }
    }

    /// Test-only: make the next frame write fail after `fail_after` bytes,
    /// leaving a genuinely torn frame on disk (driven through
    /// `tix_store::faultio::FailingWriter`).
    #[doc(hidden)]
    pub fn inject_write_fault(&mut self, fail_after: u64) {
        self.write_fault = Some(fail_after);
    }
}

fn write_header(path: &Path) -> io::Result<()> {
    atomic_write::<io::Error, _>(path, |w| {
        w.write_all(WAL_MAGIC)?;
        w.write_all(&[WAL_VERSION])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tix-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn add(name: &str, xml: &str) -> WalRecord {
        WalRecord::AddDocument {
            name: name.into(),
            xml: xml.into(),
        }
    }

    #[test]
    fn roundtrip_append_and_scan() {
        let path = tmp_dir("roundtrip").join("wal.log");
        let (mut wal, scan) = Wal::open(&path).unwrap();
        assert!(wal.is_empty());
        assert!(scan.entries.is_empty());
        assert!(!scan.torn);
        wal.append(1, &add("a.xml", "<a>x</a>")).unwrap();
        wal.append(
            2,
            &WalRecord::RemoveDocument {
                name: "a.xml".into(),
            },
        )
        .unwrap();
        drop(wal);
        let (wal, scan) = Wal::open(&path).unwrap();
        assert!(!wal.is_empty());
        assert!(!scan.torn);
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.entries[0].lsn, 1);
        assert_eq!(scan.entries[0].record, add("a.xml", "<a>x</a>"));
        assert_eq!(
            scan.entries[1].record,
            WalRecord::RemoveDocument {
                name: "a.xml".into()
            }
        );
        assert_eq!(scan.valid_len, wal.len());
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_offset() {
        let dir = tmp_dir("torn");
        let full = dir.join("full.log");
        let (mut wal, _) = Wal::open(&full).unwrap();
        let committed_end = {
            wal.append(1, &add("a.xml", "<a>first</a>")).unwrap();
            wal.len()
        };
        wal.append(2, &add("b.xml", "<b>second torn victim</b>"))
            .unwrap();
        let bytes = fs::read(&full).unwrap();
        // Tear the second record at every byte offset: recovery must keep
        // exactly the first record, truncate the rest, and never panic.
        for cut in committed_end as usize..bytes.len() {
            let torn_path = dir.join("torn.log");
            fs::write(&torn_path, &bytes[..cut]).unwrap();
            let (wal, scan) = Wal::open(&torn_path).unwrap();
            assert_eq!(scan.entries.len(), 1, "cut at {cut}");
            assert_eq!(scan.entries[0].lsn, 1);
            assert_eq!(scan.valid_len, committed_end, "cut at {cut}");
            // A cut exactly on the committed boundary is a clean EOF.
            assert_eq!(scan.torn, cut as u64 != committed_end, "cut at {cut}");
            assert_eq!(wal.len(), committed_end);
            assert_eq!(
                fs::metadata(&torn_path).unwrap().len(),
                committed_end,
                "file not truncated at cut {cut}"
            );
        }
    }

    #[test]
    fn failed_append_rolls_back_the_torn_frame() {
        let path = tmp_dir("rollback").join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, &add("a.xml", "<a>keep</a>")).unwrap();
        let committed_end = wal.len();
        // Fail mid-frame: 5 bytes of the second frame land, then an error.
        wal.inject_write_fault(5);
        let err = wal.append(2, &add("b.xml", "<b>torn</b>")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // The torn bytes were truncated away, on disk and in the cursor.
        assert_eq!(wal.len(), committed_end);
        assert_eq!(fs::metadata(&path).unwrap().len(), committed_end);
        assert!(wal.poison_reason().is_none());
        // A retry (the same LSN — the failed append never committed) and a
        // later record both land cleanly after the rollback.
        wal.append(2, &add("b.xml", "<b>retry</b>")).unwrap();
        wal.append(3, &add("c.xml", "<c/>")).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(!scan.torn);
        let lsns: Vec<u64> = scan.entries.iter().map(|e| e.lsn).collect();
        assert_eq!(lsns, [1, 2, 3]);
        assert_eq!(scan.entries[1].record, add("b.xml", "<b>retry</b>"));
    }

    #[test]
    fn batch_append_is_all_or_nothing() {
        let path = tmp_dir("batch").join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut batch = Vec::new();
        batch.extend_from_slice(&encode_frame(1, &add("a.xml", "<a/>")).unwrap());
        batch.extend_from_slice(&encode_frame(2, &add("b.xml", "<b/>")).unwrap());
        wal.append_frames(&batch, true).unwrap();
        drop(wal);
        let (mut wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.entries.len(), 2);
        let committed_end = wal.len();
        // A batch that tears mid-way rolls back entirely.
        let mut torn = Vec::new();
        torn.extend_from_slice(&encode_frame(3, &add("c.xml", "<c/>")).unwrap());
        torn.extend_from_slice(&encode_frame(4, &add("d.xml", "<d/>")).unwrap());
        wal.inject_write_fault(len_u64(torn.len()) - 3);
        wal.append_frames(&torn, true).unwrap_err();
        assert_eq!(wal.len(), committed_end);
        assert_eq!(fs::metadata(&path).unwrap().len(), committed_end);
    }

    #[test]
    fn corrupt_record_stops_the_scan() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let second_start = {
            wal.append(1, &add("a.xml", "<a>keep</a>")).unwrap();
            wal.len()
        };
        wal.append(2, &add("b.xml", "<b>flip a bit in me</b>"))
            .unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        let mid = second_start as usize + 10;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, second_start);
    }

    #[test]
    fn non_monotonic_lsn_is_a_corrupt_tail() {
        let path = tmp_dir("lsn").join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(5, &add("a.xml", "<a/>")).unwrap();
        let good_end = wal.len();
        wal.append(5, &add("b.xml", "<b/>")).unwrap(); // duplicate LSN
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.valid_len, good_end);
    }

    #[test]
    fn corrupt_header_is_a_typed_error() {
        let path = tmp_dir("header").join("wal.log");
        fs::write(&path, b"NOTAWAL").unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reset_leaves_an_empty_log_and_appends_continue() {
        let path = tmp_dir("reset").join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, &add("a.xml", "<a/>")).unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(9, &add("b.xml", "<b/>")).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].lsn, 9);
    }

    #[test]
    fn rotate_moves_records_aside_and_appends_continue() {
        let dir = tmp_dir("rotate");
        let path = dir.join("wal.log");
        let prev = dir.join("wal.prev");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, &add("a.xml", "<a/>")).unwrap();
        wal.append(2, &add("b.xml", "<b/>")).unwrap();
        wal.rotate(&prev).unwrap();
        assert!(wal.is_empty());
        wal.append(3, &add("c.xml", "<c/>")).unwrap();
        drop(wal);
        let prev_scan = scan_bytes(&fs::read(&prev).unwrap()).unwrap();
        assert_eq!(prev_scan.entries.len(), 2);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].lsn, 3);
    }

    #[test]
    fn no_temp_files_litter_the_directory() {
        let dir = tmp_dir("litter");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, &add("a.xml", "<a/>")).unwrap();
        wal.reset().unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
    }
}
