//! # tix-ingest — live ingestion for TIX
//!
//! The paper's TIMBER host was a full database: documents arrived and
//! departed while queries ran. This crate grows our reproduction the same
//! capability on top of the batch-built store and index:
//!
//! * a **write-ahead log** ([`wal`]) — every mutation is an appended,
//!   CRC-32-checksummed frame; a failed append rolls the torn bytes back
//!   off the file, and recovery replays the log over the last checkpoint,
//!   truncating at the first torn or corrupt tail record (prefix
//!   durability — never a panic, never a silently wrong load);
//! * **group commit** ([`commit`]) — concurrent writers stage frames into
//!   a bounded queue; one leader writes and fsyncs the whole batch, so N
//!   concurrent commits cost one fsync instead of N. Acknowledgement
//!   timing is configurable per engine via [`DurabilityMode`]
//!   (`Strict` / `Batched` / `Flush`);
//! * **incremental index maintenance** — mutations flow through
//!   [`tix::Database::insert_document`] / [`remove_document`], which keep
//!   the inverted index byte-identical to a from-scratch rebuild (asserted
//!   under `debug_assertions` / `--features check-invariants`) instead of
//!   rebuilding it per mutation;
//! * **non-blocking checkpoints** ([`engine`]) — `begin_checkpoint`
//!   quiesces the log, rotates it aside, and O(documents)-freezes the
//!   store; `complete_checkpoint` persists the v2 store + index snapshots
//!   and commits a tiny checksummed meta file while writers keep
//!   mutating. Crashes in any window recover correctly because replay is
//!   gated on the checkpoint's LSN and an interrupted rotation is
//!   consolidated on open.
//!
//! ## Usage
//!
//! ```
//! use tix_ingest::{Ingest, IngestOptions};
//!
//! let dir = std::env::temp_dir().join(format!("tix-ingest-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
//! ingest.insert_document(&mut db, "a.xml", "<a><p>live rust docs</p></a>").unwrap();
//! assert_eq!(db.store().doc_count(), 1);
//! // A crash here loses nothing: reopening replays the WAL.
//! let (_ingest2, db2) = Ingest::open(&dir, IngestOptions::default()).unwrap();
//! assert_eq!(db2.store().doc_count(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! Concurrent writers split the call: [`Ingest::stage_insert`] /
//! [`Ingest::stage_remove`] under exclusive database access (a `&mut`
//! borrow or a held write lock), then [`Ingest::commit`] with no lock
//! held — committers ride the same group-commit batch. Readers see
//! coherent pre- or post-mutation views through their usual read lock.
//!
//! [`remove_document`]: tix::Database::remove_document

pub mod commit;
pub mod engine;
pub mod wal;

pub use commit::{CommitAck, CommitStats, CommitTicket, DurabilityMode};
pub use engine::{
    Ingest, IngestError, IngestOptions, PreparedCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use wal::{
    encode_entries, scan_bytes, Wal, WalEntry, WalRecord, WalScan, WAL_HEADER_LEN, WAL_MAGIC,
    WAL_VERSION,
};
