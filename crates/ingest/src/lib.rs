//! # tix-ingest — live ingestion for TIX
//!
//! The paper's TIMBER host was a full database: documents arrived and
//! departed while queries ran. This crate grows our reproduction the same
//! capability on top of the batch-built store and index:
//!
//! * a **write-ahead log** ([`wal`]) — every mutation is an appended,
//!   CRC-32-checksummed, fsynced frame; recovery replays the log over the
//!   last checkpoint and truncates at the first torn or corrupt tail
//!   record (prefix durability — never a panic, never a silently wrong
//!   load);
//! * **incremental index maintenance** — mutations flow through
//!   [`tix::Database::insert_document`] / [`remove_document`], which keep
//!   the inverted index byte-identical to a from-scratch rebuild (asserted
//!   under `debug_assertions` / `--features check-invariants`) instead of
//!   rebuilding it per mutation;
//! * **checkpointing and log compaction** ([`engine`]) — a checkpoint
//!   persists v2 store + index snapshots through the atomic-replace
//!   protocol, commits a tiny checksummed meta file, then truncates the
//!   WAL; crashes between any two steps recover correctly because replay
//!   is gated on the checkpoint's LSN.
//!
//! ## Usage
//!
//! ```
//! use tix_ingest::{Ingest, IngestOptions};
//!
//! let dir = std::env::temp_dir().join(format!("tix-ingest-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
//! ingest.insert_document(&mut db, "a.xml", "<a><p>live rust docs</p></a>").unwrap();
//! assert_eq!(db.store().doc_count(), 1);
//! // A crash here loses nothing: reopening replays the WAL.
//! let (_ingest2, db2) = Ingest::open(&dir, IngestOptions::default()).unwrap();
//! assert_eq!(db2.store().doc_count(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! The engine is **single-writer / multi-reader**: exactly one [`Ingest`]
//! may own a durable directory at a time (the serving layer enforces this
//! with a mutex ordered before the database lock), while any number of
//! readers see coherent pre- or post-mutation views through their usual
//! read lock.
//!
//! [`remove_document`]: tix::Database::remove_document

pub mod engine;
pub mod wal;

pub use engine::{Ingest, IngestError, IngestOptions, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use wal::{
    encode_entries, scan_bytes, Wal, WalEntry, WalRecord, WalScan, WAL_HEADER_LEN, WAL_MAGIC,
    WAL_VERSION,
};
