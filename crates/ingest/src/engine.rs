//! The ingestion engine: crash recovery, logged mutations, and
//! checkpoint/compaction over a directory of durable state.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/
//!   CHECKPOINT          # tiny meta file: which snapshot pair is live, and
//!                       # through which LSN it is complete
//!   store.{seq}.tixsnap # v2 store snapshot written by checkpoint `seq`
//!   index.{seq}.tixidx  # v2 index snapshot written by checkpoint `seq`
//!   wal.log             # the write-ahead log (see `wal` module docs)
//!   wal.prev            # rotated-away log of an in-flight checkpoint
//!                       # (transient; consolidated on recovery)
//! ```
//!
//! ## Commit protocol
//!
//! A mutation runs apply-first through the group-commit pipeline (see the
//! [`crate::commit`] module docs for the full protocol):
//!
//! 1. **admission** — [`crate::commit`]'s admission check rejects up
//!    front (poisoned pipeline, full commit queue) while nothing has been
//!    applied yet;
//! 2. **apply** — the mutation runs against the in-memory [`Database`]
//!    under the caller's exclusive access; a typed failure (duplicate
//!    name, XML parse error, missing removal target) returns here and
//!    never touches the log;
//! 3. **stage** — the pipeline assigns the next LSN and queues the
//!    encoded frame ([`Ingest::stage_insert`] / [`Ingest::stage_remove`]
//!    return a [`CommitTicket`]);
//! 4. **commit** — [`Ingest::commit`] rides the group-commit batch and
//!    returns once the frame meets the configured
//!    [`DurabilityMode`]'s bar.
//!
//! Because only successfully applied mutations are ever staged, every
//! frame in the log applied cleanly once, and replaying the same frames
//! over the same base state is deterministic.
//!
//! ## Checkpoint protocol
//!
//! Checkpoints are split so the expensive half runs without stalling
//! writers. [`Ingest::begin_checkpoint`] (caller holds the database
//! exclusively; cheap):
//!
//! 1. quiesce the commit pipeline: write + fsync every staged frame, so
//!    the checkpoint LSN `L` covers everything applied;
//! 2. unless the log is retained, **rotate** `wal.log` aside to
//!    `wal.prev` — new appends go to a fresh log immediately;
//! 3. O(documents) freeze of the store (Arc-clone per document — no node
//!    data is copied).
//!
//! [`Ingest::complete_checkpoint`] (database lock released; slow):
//!
//! 4. thaw the frozen store, write `store.{N}.tixsnap`, rebuild and write
//!    `index.{N}.tixidx` — fresh names, never touching the live pair;
//! 5. atomically replace `CHECKPOINT` with `{seq: N, lsn: L}` — the
//!    commit point;
//! 6. best-effort delete `wal.prev` and the superseded snapshot pair.
//!
//! A crash in any window recovers correctly: before step 5 the old meta
//! plus the full history (consolidated from `wal.prev` ++ `wal.log`, both
//! fsynced through `L` by step 1) reproduce the state; after step 5 a
//! surviving `wal.prev` holds only records with `lsn <= meta.lsn`, which
//! consolidation discards. Replay always skips `lsn <= meta.lsn`, so
//! nothing applies twice.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use tix::persist::PersistError;
use tix::Database;
use tix_index::InvertedIndex;
use tix_store::persist::atomic_write;
use tix_store::{DocId, FrozenStore, LoadError, RemoveError};

use crate::commit::{CommitAck, CommitPipeline, CommitStats, CommitTicket, DurabilityMode};
use crate::wal::{
    encode_entries, len_u64, scan_bytes, Wal, WalRecord, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION,
};

/// Magic bytes opening the `CHECKPOINT` meta file.
pub const CHECKPOINT_MAGIC: &[u8] = b"TIXCKPT";
/// Current meta-file format version.
pub const CHECKPOINT_VERSION: u8 = 1;

const META_FILE: &str = "CHECKPOINT";
const WAL_FILE: &str = "wal.log";
const WAL_PREV_FILE: &str = "wal.prev";
/// magic + version + seq + lsn + crc32.
const META_LEN: usize = CHECKPOINT_MAGIC.len() + 1 + 8 + 8 + 4;

fn store_file(seq: u64) -> String {
    format!("store.{seq}.tixsnap")
}

fn index_file(seq: u64) -> String {
    format!("index.{seq}.tixidx")
}

/// Errors raised by the ingestion engine.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure (WAL append, truncation, directory setup),
    /// including a poisoned commit pipeline (`ErrorKind::Other` with a
    /// "poisoned" message) and a full commit queue
    /// (`ErrorKind::WouldBlock`).
    Io(io::Error),
    /// A document failed to load (duplicate name, XML parse error,
    /// document limits). Applies run before staging, so the mutation
    /// never reached the WAL.
    Load(LoadError),
    /// A removal named a document that does not exist. The mutation
    /// never reached the WAL.
    Remove(RemoveError),
    /// A snapshot failed to save or load.
    Persist(PersistError),
    /// The `CHECKPOINT` meta file exists but is damaged. The meta is
    /// written atomically, so this is disk corruption, not a torn write —
    /// it needs operator attention rather than a silent empty start.
    CorruptMeta(&'static str),
    /// A WAL suffix was requested from an LSN the log no longer holds
    /// (a checkpoint without [`IngestOptions::retain_wal`] truncated it).
    /// The requester must fall back to a full resync.
    WalGap {
        /// The LSN the suffix was requested from (exclusive).
        requested: u64,
        /// The earliest LSN the log can still serve a suffix from.
        earliest: u64,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Load(e) => write!(f, "{e}"),
            IngestError::Remove(e) => write!(f, "{e}"),
            IngestError::Persist(e) => write!(f, "{e}"),
            IngestError::CorruptMeta(why) => write!(f, "corrupt checkpoint meta: {why}"),
            IngestError::WalGap {
                requested,
                earliest,
            } => write!(
                f,
                "WAL gap: suffix from lsn {requested} requested but the log starts at {earliest}"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Load(e) => Some(e),
            IngestError::Remove(e) => Some(e),
            IngestError::Persist(e) => Some(e),
            IngestError::CorruptMeta(_) => None,
            IngestError::WalGap { .. } => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<PersistError> for IngestError {
    fn from(e: PersistError) -> Self {
        IngestError::Persist(e)
    }
}

/// Tuning knobs for the engine.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// [`Ingest::maybe_checkpoint`] fires once the WAL file reaches this
    /// many bytes. `u64::MAX` disables size-triggered checkpoints.
    pub checkpoint_bytes: u64,
    /// Keep the WAL intact across checkpoints instead of rotating it.
    ///
    /// Recovery is already correct either way — replay skips every record
    /// with `lsn <= CHECKPOINT.lsn`, so a retained log merely replays
    /// nothing for its pre-checkpoint prefix. Retention exists for
    /// **WAL-shipping replication**: a shard primary that retains its log
    /// can serve [`Ingest::wal_suffix`] from any LSN a follower asks for,
    /// so a replica (even a brand-new one starting at LSN 0) can always
    /// catch up from the op stream alone. The cost is an append-only log
    /// that grows with total history; see DESIGN.md §13 for the
    /// snapshot-shipping follow-up that would bound it.
    pub retain_wal: bool,
    /// When a committed mutation's acknowledgement is released relative
    /// to its WAL frame reaching stable storage. See [`DurabilityMode`].
    pub durability: DurabilityMode,
    /// Bound on staged-but-unwritten frames: admission fails with
    /// `ErrorKind::WouldBlock` once this many frames are queued, instead
    /// of buffering without limit while writers outrun the log.
    pub commit_queue: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            // Small WALs replay in well under a second; 8 MiB keeps
            // recovery cheap without checkpointing on every mutation.
            checkpoint_bytes: 8 * 1024 * 1024,
            retain_wal: false,
            durability: DurabilityMode::Strict,
            // Roomy enough that admission only trips when the disk is
            // genuinely behind, small enough to bound memory.
            commit_queue: 1024,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CheckpointMeta {
    seq: u64,
    lsn: u64,
}

fn read_u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(bytes.get(at..at + 8)?);
    Some(u64::from_le_bytes(buf))
}

fn read_meta(path: &Path) -> Result<Option<CheckpointMeta>, IngestError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(IngestError::Io(e)),
    };
    if bytes.len() != META_LEN {
        return Err(IngestError::CorruptMeta("wrong length"));
    }
    if !bytes.starts_with(CHECKPOINT_MAGIC) {
        return Err(IngestError::CorruptMeta("bad magic"));
    }
    if bytes.get(CHECKPOINT_MAGIC.len()).copied() != Some(CHECKPOINT_VERSION) {
        return Err(IngestError::CorruptMeta("unsupported version"));
    }
    let body_len = META_LEN - 4;
    let (body, tail) = (bytes.get(..body_len), bytes.get(body_len..));
    let (Some(body), Some(tail)) = (body, tail) else {
        return Err(IngestError::CorruptMeta("wrong length"));
    };
    let mut crc_buf = [0u8; 4];
    crc_buf.copy_from_slice(tail);
    if u32::from_le_bytes(crc_buf) != tix_invariants::crc32(body) {
        return Err(IngestError::CorruptMeta("checksum mismatch"));
    }
    let base = CHECKPOINT_MAGIC.len() + 1;
    match (read_u64_at(&bytes, base), read_u64_at(&bytes, base + 8)) {
        (Some(seq), Some(lsn)) => Ok(Some(CheckpointMeta { seq, lsn })),
        _ => Err(IngestError::CorruptMeta("wrong length")),
    }
}

fn write_meta(path: &Path, meta: CheckpointMeta) -> Result<(), IngestError> {
    let mut body = Vec::with_capacity(META_LEN);
    body.extend_from_slice(CHECKPOINT_MAGIC);
    body.push(CHECKPOINT_VERSION);
    body.extend_from_slice(&meta.seq.to_le_bytes());
    body.extend_from_slice(&meta.lsn.to_le_bytes());
    let crc = tix_invariants::crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    atomic_write::<io::Error, _>(path, |w| w.write_all(&body))?;
    Ok(())
}

/// A `wal.prev` left behind means a checkpoint rotated the log aside but
/// died before (or while) committing its meta: the durable history is
/// split across two files, with `wal.prev` holding the older frames.
/// Merge both committed prefixes back into a single `wal.log`, dropping
/// frames the live meta already covers, so the rest of recovery — and
/// suffix serving — sees one log again.
fn consolidate_rotated_log(prev: &Path, live: &Path, base_lsn: u64) -> Result<(), IngestError> {
    let prev_bytes = fs::read(prev)?;
    let mut entries = scan_bytes(&prev_bytes)?.entries;
    match fs::read(live) {
        Ok(bytes) => entries.extend(scan_bytes(&bytes)?.entries),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            // Died between the rename and the fresh header: the rotated
            // file *is* the whole log.
        }
        Err(e) => return Err(IngestError::Io(e)),
    }
    let surviving: Vec<(u64, WalRecord)> = entries
        .into_iter()
        .filter(|e| e.lsn > base_lsn)
        .map(|e| (e.lsn, e.record))
        .collect();
    let image = encode_entries(&surviving)?;
    atomic_write::<io::Error, _>(live, |w| w.write_all(&image))?;
    fs::remove_file(prev)?;
    Ok(())
}

/// Mutable checkpoint bookkeeping, serialized by its own lock so at most
/// one checkpoint runs at a time while mutations keep flowing.
#[derive(Debug)]
struct CkptState {
    /// The live checkpoint sequence number (0 before any checkpoint).
    seq: u64,
    /// WAL size when the live checkpoint was taken; the size-triggered
    /// checkpoint fires on growth *since* then, not on absolute length.
    wal_growth_base: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned std mutex only means another thread panicked while
    // holding it; the commit pipeline's own poison flag tracks logical
    // damage.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A begun-but-uncompleted checkpoint: the frozen store, the checkpoint
/// LSN, and the exclusive checkpoint slot. Dropping it without calling
/// [`Ingest::complete_checkpoint`] abandons the checkpoint (recovery
/// consolidates the rotated log; nothing is lost).
#[must_use = "a begun checkpoint persists nothing until completed"]
pub struct PreparedCheckpoint<'a> {
    guard: MutexGuard<'a, CkptState>,
    frozen: FrozenStore,
    lsn: u64,
    seq: u64,
    wal_len_after_prepare: u64,
}

impl PreparedCheckpoint<'_> {
    /// The LSN this checkpoint covers: every mutation with `lsn <= L` is
    /// both durable and captured in the frozen store.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// The sequence number the completed checkpoint will carry.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl fmt::Debug for PreparedCheckpoint<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedCheckpoint")
            .field("lsn", &self.lsn)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

/// The ingestion engine for one durable directory. Pair it with the
/// [`Database`] returned by [`Ingest::open`]; every mutation goes through
/// the engine (apply, stage, group-commit), never through the database
/// alone.
///
/// All methods take `&self`: concurrent writers stage under whatever
/// exclusive access they hold on the [`Database`] (a `&mut` borrow or a
/// write lock) and then ride the same group-commit batch with no lock
/// held, which is what collapses N concurrent fsyncs into one.
#[derive(Debug)]
pub struct Ingest {
    dir: PathBuf,
    options: IngestOptions,
    pipeline: CommitPipeline,
    ckpt: Mutex<CkptState>,
}

impl Ingest {
    /// Open (creating if needed) the durable directory and recover its
    /// state: consolidate a rotated log left by an interrupted
    /// checkpoint, load the snapshot pair named by `CHECKPOINT` (or start
    /// empty), then replay every WAL record with `lsn > meta.lsn` through
    /// the incremental maintenance path. Returns the engine and the
    /// recovered, fully indexed database.
    pub fn open(
        dir: impl Into<PathBuf>,
        options: IngestOptions,
    ) -> Result<(Ingest, Database), IngestError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let meta = read_meta(&dir.join(META_FILE))?;
        let mut db = Database::new();
        let (seq, base_lsn) = match meta {
            Some(m) => {
                let mut opened = Database::open(dir.join(store_file(m.seq)))?;
                opened.load_index_from(dir.join(index_file(m.seq)))?;
                db = opened;
                (m.seq, m.lsn)
            }
            None => {
                // Fresh directory: an empty store with an empty (but
                // present) index, so maintenance starts immediately.
                db.build_index();
                (0, 0)
            }
        };
        let wal_path = dir.join(WAL_FILE);
        let prev_path = dir.join(WAL_PREV_FILE);
        if prev_path.exists() {
            consolidate_rotated_log(&prev_path, &wal_path, base_lsn)?;
        }
        let (mut wal, scan) = Wal::open(wal_path)?;
        let mut last_lsn = base_lsn;
        for entry in scan.entries {
            if entry.lsn <= base_lsn {
                // Already folded into the checkpoint: the crash window
                // between meta commit and wal.prev deletion leaves these
                // behind (on a retained log they are simply history).
                continue;
            }
            let applied = match &entry.record {
                WalRecord::AddDocument { name, xml } => {
                    db.insert_document(name, xml).map(|_| ()).is_ok()
                }
                WalRecord::RemoveDocument { name } => db.remove_document(name).is_ok(),
            };
            if !applied {
                // Every surviving frame applied cleanly when it was
                // written, so a replay failure can only be a batch whose
                // rollback truncation raced a crash — necessarily the
                // tail. Drop it.
                wal.truncate_to(entry.offset)?;
                break;
            }
            last_lsn = entry.lsn;
        }
        let wal_growth_base = if options.retain_wal {
            // The retained log's pre-`base_lsn` prefix predates the live
            // checkpoint; only growth past the recovered length should
            // count toward the next size-triggered checkpoint.
            wal.len()
        } else {
            0
        };
        let pipeline = CommitPipeline::new(wal, options.durability, last_lsn, options.commit_queue);
        Ok((
            Ingest {
                dir,
                options,
                pipeline,
                ckpt: Mutex::new(CkptState {
                    seq,
                    wal_growth_base,
                }),
            },
            db,
        ))
    }

    /// Apply a document insertion and stage its WAL frame, returning the
    /// new id plus the [`CommitTicket`] to pass to [`Ingest::commit`].
    ///
    /// The caller's exclusive access to `db` (the `&mut` borrow, or the
    /// write lock it came from) is what orders concurrent stagers: LSN
    /// order equals apply order. Release that access *before* committing
    /// so other writers can stage into the same batch.
    pub fn stage_insert(
        &self,
        db: &mut Database,
        name: &str,
        xml: &str,
    ) -> Result<(DocId, CommitTicket), IngestError> {
        self.pipeline.check_admission()?;
        let id = db.insert_document(name, xml).map_err(IngestError::Load)?;
        let ticket = self.pipeline.stage(&WalRecord::AddDocument {
            name: name.to_string(),
            xml: xml.to_string(),
        })?;
        Ok((id, ticket))
    }

    /// Apply a document removal and stage its WAL frame. Same contract as
    /// [`Ingest::stage_insert`].
    pub fn stage_remove(
        &self,
        db: &mut Database,
        name: &str,
    ) -> Result<(DocId, CommitTicket), IngestError> {
        self.pipeline.check_admission()?;
        let id = db.remove_document(name).map_err(IngestError::Remove)?;
        let ticket = self.pipeline.stage(&WalRecord::RemoveDocument {
            name: name.to_string(),
        })?;
        Ok((id, ticket))
    }

    /// Wait until a staged mutation meets the configured
    /// [`DurabilityMode`]'s bar, leading a group-commit batch if no other
    /// writer is already flushing. Call with no database access held.
    pub fn commit(&self, ticket: CommitTicket) -> Result<CommitAck, IngestError> {
        self.pipeline.commit(ticket).map_err(IngestError::Io)
    }

    /// Stage and commit a document insertion in one call (the
    /// single-writer convenience path).
    pub fn insert_document(
        &self,
        db: &mut Database,
        name: &str,
        xml: &str,
    ) -> Result<DocId, IngestError> {
        let (id, ticket) = self.stage_insert(db, name, xml)?;
        self.commit(ticket)?;
        Ok(id)
    }

    /// Stage and commit a document removal in one call.
    pub fn remove_document(&self, db: &mut Database, name: &str) -> Result<DocId, IngestError> {
        let (id, ticket) = self.stage_remove(db, name)?;
        self.commit(ticket)?;
        Ok(id)
    }

    /// Begin a checkpoint: quiesce the commit pipeline (every staged
    /// frame becomes durable), rotate the log aside (unless retained),
    /// and freeze the store. Cheap — O(documents) reference bumps, one
    /// fsync, one rename — and the only part that needs the database held
    /// exclusively. Pass the result to [`Ingest::complete_checkpoint`]
    /// after releasing the database.
    pub fn begin_checkpoint<'a>(
        &'a self,
        db: &mut Database,
    ) -> Result<PreparedCheckpoint<'a>, IngestError> {
        if !db.has_index() {
            db.build_index();
        }
        let guard = lock(&self.ckpt);
        let prev = self.dir.join(WAL_PREV_FILE);
        // Never rotate over an existing wal.prev (left by a failed
        // complete): it still holds the only copy of frames the live meta
        // does not cover. Skipping rotation is safe — this checkpoint's
        // meta will cover both files, and recovery consolidates.
        let rotate_to = if self.options.retain_wal || prev.exists() {
            None
        } else {
            Some(prev)
        };
        let lsn = self.pipeline.prepare_checkpoint(rotate_to.as_deref())?;
        let frozen = db.store().freeze();
        let seq = guard.seq + 1;
        let wal_len_after_prepare = self.pipeline.wal_len();
        Ok(PreparedCheckpoint {
            guard,
            frozen,
            lsn,
            seq,
            wal_len_after_prepare,
        })
    }

    /// Complete a begun checkpoint: thaw the frozen store, persist the
    /// snapshot pair under the fresh sequence number, commit the meta
    /// file, and clean up the rotated log plus the superseded pair.
    /// Writers run concurrently throughout. Returns the new sequence
    /// number.
    ///
    /// The persisted index is rebuilt from the frozen store rather than
    /// serialized from the live one (which has moved on past the
    /// checkpoint LSN); incremental maintenance keeps the live index
    /// byte-identical to a rebuild, so recovery sees the exact index
    /// state at the checkpoint LSN either way.
    pub fn complete_checkpoint(
        &self,
        prepared: PreparedCheckpoint<'_>,
    ) -> Result<u64, IngestError> {
        let PreparedCheckpoint {
            mut guard,
            frozen,
            lsn,
            seq,
            wal_len_after_prepare,
        } = prepared;
        let store = frozen.thaw();
        tix::persist::save_store(&store, self.dir.join(store_file(seq)))?;
        let index = InvertedIndex::build(&store);
        // v3 pack sidecar: recovery opens it by reference (lazy block
        // decode), so reopen cost no longer scales with postings.
        tix::persist::save_index_v3(&index, self.dir.join(index_file(seq)))?;
        write_meta(&self.dir.join(META_FILE), CheckpointMeta { seq, lsn })?;
        // The meta is committed: everything `<= lsn` is folded into the
        // snapshot pair, so the rotated-away log is redundant and the
        // remaining deletes are best-effort (a failed delete costs disk
        // space; recovery discards the stale frames regardless).
        let old = guard.seq;
        guard.seq = seq;
        guard.wal_growth_base = wal_len_after_prepare;
        let _ = fs::remove_file(self.dir.join(WAL_PREV_FILE));
        if old > 0 {
            let _ = fs::remove_file(self.dir.join(store_file(old)));
            let _ = fs::remove_file(self.dir.join(index_file(old)));
        }
        Ok(seq)
    }

    /// Run a full checkpoint — begin and complete back to back — holding
    /// the database for the whole duration. See
    /// [`Ingest::begin_checkpoint`] for the non-blocking split.
    pub fn checkpoint(&self, db: &mut Database) -> Result<u64, IngestError> {
        let prepared = self.begin_checkpoint(db)?;
        self.complete_checkpoint(prepared)
    }

    /// Checkpoint iff the WAL has grown past the configured threshold
    /// since the last one. Returns the new sequence number when one was
    /// taken. Blocking variant of [`Ingest::maybe_begin_checkpoint`].
    pub fn maybe_checkpoint(&self, db: &mut Database) -> Result<Option<u64>, IngestError> {
        if !self.checkpoint_due() {
            return Ok(None);
        }
        self.checkpoint(db).map(Some)
    }

    /// Begin a checkpoint iff the WAL has grown past the configured
    /// threshold since the last one; the caller completes it after
    /// releasing the database.
    pub fn maybe_begin_checkpoint<'a>(
        &'a self,
        db: &mut Database,
    ) -> Result<Option<PreparedCheckpoint<'a>>, IngestError> {
        if !self.checkpoint_due() {
            return Ok(None);
        }
        self.begin_checkpoint(db).map(Some)
    }

    fn checkpoint_due(&self) -> bool {
        // try_lock, not lock: the guard is held across the whole (slow)
        // complete phase of an in-flight checkpoint, and while one runs
        // another is definitionally not due — writers checking after
        // their commit must not stall behind it.
        let guard = match self.ckpt.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return false,
        };
        let base = guard.wal_growth_base;
        self.pipeline.wal_len().saturating_sub(base) >= self.options.checkpoint_bytes
    }

    /// The durability mode acknowledgements run under.
    pub fn durability(&self) -> DurabilityMode {
        self.pipeline.mode()
    }

    /// Write and fsync everything staged, regardless of mode; returns the
    /// durable LSN. The explicit flush for [`DurabilityMode::Flush`] and
    /// the shutdown path for every mode.
    pub fn flush(&self) -> Result<u64, IngestError> {
        self.pipeline.flush().map_err(IngestError::Io)
    }

    /// Under [`DurabilityMode::Batched`], flush if the oldest unsynced
    /// frame has exceeded `max_delay` — the background flusher's entry
    /// point. Returns the durable LSN if a flush ran.
    pub fn flush_if_due(&self) -> Result<Option<u64>, IngestError> {
        self.pipeline.flush_if_due().map_err(IngestError::Io)
    }

    /// The last staged log sequence number (0 before any mutation): the
    /// LSN of the newest mutation applied in memory.
    pub fn last_lsn(&self) -> u64 {
        self.pipeline.staged_lsn()
    }

    /// Highest LSN known fsynced. Equal to [`Ingest::last_lsn`] under
    /// [`DurabilityMode::Strict`] whenever no commit is in flight; may
    /// lag under `Batched`/`Flush`.
    pub fn durable_lsn(&self) -> u64 {
        self.pipeline.durable_lsn()
    }

    /// The live checkpoint sequence number (0 before any checkpoint).
    pub fn checkpoint_seq(&self) -> u64 {
        lock(&self.ckpt).seq
    }

    /// Current WAL file size in bytes (header included).
    pub fn wal_len(&self) -> u64 {
        self.pipeline.wal_len()
    }

    /// Snapshot of the group-commit counters (batches, frames, fsyncs,
    /// checkpoint stall time).
    pub fn commit_stats(&self) -> CommitStats {
        self.pipeline.stats()
    }

    /// The fatal-failure reason if the write path has poisoned itself
    /// (a batch write failed after its mutations were applied in memory).
    /// A poisoned engine rejects every further mutation; restarting the
    /// process recovers the durable prefix.
    pub fn poison_reason(&self) -> Option<String> {
        self.pipeline.poison_reason()
    }

    /// The durable directory this engine owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Test hook: make the underlying WAL fail after `fail_after` more
    /// bytes of frame data have been written (see
    /// [`Wal::inject_write_fault`](crate::wal::Wal::inject_write_fault)).
    #[doc(hidden)]
    pub fn inject_wal_write_fault(&self, fail_after: u64) {
        self.pipeline.with_wal(|w| w.inject_write_fault(fail_after));
    }

    /// Serve the WAL suffix strictly after `from_lsn` as a standalone WAL
    /// image (header + CRC frames), capped at roughly `max_bytes` but
    /// always carrying at least one frame when one is due. This is the
    /// payload of the replication `/wal?from_lsn=` endpoint: because the
    /// wire format *is* the on-disk format, a follower runs the response
    /// through [`crate::wal::scan_bytes`] and gets torn-transfer safety
    /// for free.
    ///
    /// Only **durable** frames are served: under `Batched`/`Flush`
    /// durability a written-but-unsynced frame could vanish in a crash,
    /// and a replica must never hold state its primary can lose. A
    /// requester at or past the durable LSN gets an empty image (header
    /// only). If the log no longer holds `from_lsn + 1` (a checkpoint
    /// without [`IngestOptions::retain_wal`] truncated it), returns
    /// [`IngestError::WalGap`] and the requester must resync from a
    /// snapshot instead.
    pub fn wal_suffix(&self, from_lsn: u64, max_bytes: u64) -> Result<Vec<u8>, IngestError> {
        let header = || {
            let mut out = Vec::new();
            out.extend_from_slice(WAL_MAGIC);
            out.push(WAL_VERSION);
            out
        };
        let durable = self.pipeline.durable_lsn();
        if from_lsn >= durable {
            return Ok(header());
        }
        // Read under the WAL lock so no batch write or rotation moves the
        // file mid-read; the bytes are a clean committed prefix.
        let bytes = self
            .pipeline
            .with_wal(|_| fs::read(self.dir.join(WAL_FILE)))?;
        let scan = scan_bytes(&bytes)?;
        let start = match scan.entries.iter().position(|e| e.lsn > from_lsn) {
            Some(i) => i,
            None => {
                // Durable mutations exist past `from_lsn` (checked above)
                // but the log holds none of them: everything is folded
                // into the checkpoint and gone.
                return Err(IngestError::WalGap {
                    requested: from_lsn,
                    earliest: durable + 1,
                });
            }
        };
        let entries = scan.entries.get(start..).unwrap_or_default();
        let Some(first) = entries.first() else {
            return Err(IngestError::WalGap {
                requested: from_lsn,
                earliest: durable + 1,
            });
        };
        if first.lsn != from_lsn + 1 {
            return Err(IngestError::WalGap {
                requested: from_lsn,
                earliest: first.lsn,
            });
        }
        // Cut at a frame boundary: frame i ends where frame i+1 starts
        // (or at the committed prefix's end). Slicing the raw file keeps
        // the shipped frames byte-identical to the durable ones, CRCs
        // included.
        let start_off = usize::try_from(first.offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WAL offset overflow"))?;
        let committed_end = usize::try_from(scan.valid_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WAL length overflow"))?;
        let mut cut = start_off;
        for (i, entry) in entries.iter().enumerate() {
            if entry.lsn > durable {
                break;
            }
            let frame_end = match entries.get(i + 1) {
                Some(next) => usize::try_from(next.offset).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "WAL offset overflow")
                })?,
                None => committed_end,
            };
            let image_len = WAL_HEADER_LEN + len_u64(frame_end - start_off);
            if i > 0 && image_len > max_bytes {
                break;
            }
            cut = frame_end;
        }
        let mut out = header();
        let frames = bytes
            .get(start_off..cut)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "WAL cut out of range"))?;
        out.extend_from_slice(frames);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix::exec::pick::PickParams;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tix-ingest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn pick() -> PickParams {
        PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        }
    }

    #[test]
    fn fresh_directory_starts_empty_and_indexed() {
        let (ingest, db) = Ingest::open(tmp_dir("fresh"), IngestOptions::default()).unwrap();
        assert_eq!(db.store().doc_count(), 0);
        assert!(db.has_index());
        assert_eq!(ingest.last_lsn(), 0);
        assert_eq!(ingest.durable_lsn(), 0);
        assert_eq!(ingest.checkpoint_seq(), 0);
    }

    #[test]
    fn mutations_survive_reopen_via_replay() {
        let dir = tmp_dir("replay");
        {
            let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
            ingest
                .insert_document(&mut db, "a.xml", "<a><p>rust xml</p></a>")
                .unwrap();
            ingest
                .insert_document(&mut db, "b.xml", "<b><p>gone soon</p></b>")
                .unwrap();
            ingest.remove_document(&mut db, "b.xml").unwrap();
            assert_eq!(ingest.last_lsn(), 3);
            assert_eq!(ingest.durable_lsn(), 3, "strict commits are durable");
            // No checkpoint: everything lives in the WAL.
        }
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert_eq!(ingest.last_lsn(), 3);
        assert_eq!(db.store().doc_count(), 1);
        assert!(!db.search(&["rust"], pick(), 5).is_empty());
        assert!(db.search(&["gone"], pick(), 5).is_empty());
    }

    #[test]
    fn checkpoint_rotates_wal_and_reopen_uses_snapshots() {
        let dir = tmp_dir("checkpoint");
        {
            let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
            ingest
                .insert_document(&mut db, "a.xml", "<a>alpha</a>")
                .unwrap();
            assert_eq!(ingest.checkpoint(&mut db).unwrap(), 1);
            assert_eq!(ingest.wal_len(), crate::wal::WAL_HEADER_LEN);
            assert!(!dir.join(WAL_PREV_FILE).exists(), "rotated log cleaned up");
            // Post-checkpoint mutations land in the fresh WAL.
            ingest
                .insert_document(&mut db, "b.xml", "<b>beta</b>")
                .unwrap();
        }
        assert!(dir.join("store.1.tixsnap").exists());
        assert!(dir.join("index.1.tixidx").exists());
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert_eq!(ingest.checkpoint_seq(), 1);
        assert_eq!(db.store().doc_count(), 2);
        assert!(!db.search(&["alpha"], pick(), 5).is_empty());
        assert!(!db.search(&["beta"], pick(), 5).is_empty());
    }

    #[test]
    fn second_checkpoint_deletes_the_superseded_pair() {
        let dir = tmp_dir("compact");
        let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>x</a>")
            .unwrap();
        ingest.checkpoint(&mut db).unwrap();
        ingest
            .insert_document(&mut db, "b.xml", "<b>y</b>")
            .unwrap();
        ingest.checkpoint(&mut db).unwrap();
        assert!(!dir.join("store.1.tixsnap").exists());
        assert!(!dir.join("index.1.tixidx").exists());
        assert!(dir.join("store.2.tixsnap").exists());
        assert!(dir.join("index.2.tixidx").exists());
    }

    #[test]
    fn failed_apply_never_reaches_the_wal() {
        let dir = tmp_dir("rollback");
        let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>x</a>")
            .unwrap();
        let wal_after_good = ingest.wal_len();
        // Duplicate name, unparsable XML, missing removal target: each is
        // a typed error and leaves the WAL exactly as it was.
        assert!(matches!(
            ingest.insert_document(&mut db, "a.xml", "<a>dup</a>"),
            Err(IngestError::Load(LoadError::DuplicateName(_)))
        ));
        assert!(matches!(
            ingest.insert_document(&mut db, "b.xml", "<unclosed>"),
            Err(IngestError::Load(LoadError::Xml(_)))
        ));
        assert!(matches!(
            ingest.remove_document(&mut db, "nope.xml"),
            Err(IngestError::Remove(RemoveError::NotFound(_)))
        ));
        assert_eq!(ingest.wal_len(), wal_after_good);
        assert_eq!(ingest.last_lsn(), 1);
        // Reopen sees only the good mutation.
        drop(ingest);
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert_eq!(ingest.last_lsn(), 1);
        assert_eq!(db.store().doc_count(), 1);
    }

    #[test]
    fn size_threshold_triggers_maybe_checkpoint() {
        let dir = tmp_dir("threshold");
        let options = IngestOptions {
            checkpoint_bytes: 64,
            ..IngestOptions::default()
        };
        let (ingest, mut db) = Ingest::open(&dir, options).unwrap();
        assert_eq!(ingest.maybe_checkpoint(&mut db).unwrap(), None);
        ingest
            .insert_document(&mut db, "a.xml", "<a>some words to cross the threshold</a>")
            .unwrap();
        assert_eq!(ingest.maybe_checkpoint(&mut db).unwrap(), Some(1));
        assert_eq!(ingest.maybe_checkpoint(&mut db).unwrap(), None);
    }

    #[test]
    fn crash_window_between_meta_and_wal_cleanup_skips_replay() {
        let dir = tmp_dir("lsn-gate");
        let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>alpha</a>")
            .unwrap();
        let wal_bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        ingest.checkpoint(&mut db).unwrap();
        // Simulate the crash: the meta committed but the rotated log's
        // cleanup was lost — restore the pre-checkpoint WAL contents.
        fs::write(dir.join(WAL_PREV_FILE), &wal_bytes).unwrap();
        drop(ingest);
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        // The add of a.xml must not apply twice (it would be a duplicate).
        assert_eq!(db.store().doc_count(), 1);
        assert_eq!(ingest.last_lsn(), 1);
        assert!(!dir.join(WAL_PREV_FILE).exists(), "stale rotation removed");
        assert!(!db.search(&["alpha"], pick(), 5).is_empty());
    }

    #[test]
    fn abandoned_checkpoint_recovers_from_the_rotated_log() {
        let dir = tmp_dir("abandon");
        {
            let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
            ingest
                .insert_document(&mut db, "a.xml", "<a>alpha</a>")
                .unwrap();
            // Begin rotates wal.log aside; dropping the preparation
            // models a crash before complete_checkpoint committed meta.
            let prepared = ingest.begin_checkpoint(&mut db).unwrap();
            assert_eq!(prepared.lsn(), 1);
            drop(prepared);
            assert!(dir.join(WAL_PREV_FILE).exists());
            // Writers kept going after the rotation.
            ingest
                .insert_document(&mut db, "b.xml", "<b>beta</b>")
                .unwrap();
        }
        // Recovery consolidates wal.prev ++ wal.log into one log and
        // replays the full history (no meta was ever committed).
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert!(!dir.join(WAL_PREV_FILE).exists());
        assert_eq!(ingest.last_lsn(), 2);
        assert_eq!(db.store().doc_count(), 2);
        assert!(!db.search(&["alpha"], pick(), 5).is_empty());
        assert!(!db.search(&["beta"], pick(), 5).is_empty());
        // The consolidated log is a single servable stream.
        let image = ingest.wal_suffix(0, u64::MAX).unwrap();
        let scan = scan_bytes(&image).unwrap();
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn checkpoint_after_abandoned_checkpoint_skips_rotation_and_heals() {
        let dir = tmp_dir("abandon-heal");
        let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>alpha</a>")
            .unwrap();
        drop(ingest.begin_checkpoint(&mut db).unwrap());
        assert!(dir.join(WAL_PREV_FILE).exists());
        ingest
            .insert_document(&mut db, "b.xml", "<b>beta</b>")
            .unwrap();
        // The next full checkpoint must not rename over the stranded
        // rotation; its meta covers both files, then the leftover goes.
        // (The abandoned attempt never committed, so seq 1 is reused.)
        assert_eq!(ingest.checkpoint(&mut db).unwrap(), 1);
        assert!(!dir.join(WAL_PREV_FILE).exists());
        drop(ingest);
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert_eq!(ingest.checkpoint_seq(), 1);
        assert_eq!(ingest.last_lsn(), 2);
        assert_eq!(db.store().doc_count(), 2);
    }

    #[test]
    fn corrupt_meta_is_a_typed_error() {
        let dir = tmp_dir("meta");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(META_FILE), b"garbage").unwrap();
        let err = Ingest::open(&dir, IngestOptions::default()).unwrap_err();
        assert!(matches!(err, IngestError::CorruptMeta(_)), "{err:?}");
    }

    #[test]
    fn meta_roundtrip_and_bitflip_rejection() {
        let dir = tmp_dir("meta-crc");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(META_FILE);
        write_meta(&path, CheckpointMeta { seq: 7, lsn: 42 }).unwrap();
        let meta = read_meta(&path).unwrap().unwrap();
        assert_eq!((meta.seq, meta.lsn), (7, 42));
        let mut bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x04;
            fs::write(&path, &bytes).unwrap();
            assert!(read_meta(&path).is_err(), "flip at byte {i} accepted");
            bytes[i] ^= 0x04;
        }
    }

    #[test]
    fn flush_mode_defers_durability_until_flush() {
        let dir = tmp_dir("flush-mode");
        let options = IngestOptions {
            durability: DurabilityMode::Flush,
            ..IngestOptions::default()
        };
        let (ingest, mut db) = Ingest::open(&dir, options).unwrap();
        let (_, ticket) = ingest.stage_insert(&mut db, "a.xml", "<a>x</a>").unwrap();
        let ack = ingest.commit(ticket).unwrap();
        assert_eq!(ack.lsn, 1);
        assert_eq!(ack.durable_lsn, 0, "written, not yet fsynced");
        assert_eq!(ingest.flush().unwrap(), 1);
        assert_eq!(ingest.durable_lsn(), 1);
        let stats = ingest.commit_stats();
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.fsyncs, 1, "only the explicit flush synced");
    }

    fn retained() -> IngestOptions {
        IngestOptions {
            retain_wal: true,
            ..IngestOptions::default()
        }
    }

    #[test]
    fn retain_wal_checkpoint_keeps_full_history_and_recovers() {
        let dir = tmp_dir("retain");
        {
            let (ingest, mut db) = Ingest::open(&dir, retained()).unwrap();
            ingest
                .insert_document(&mut db, "a.xml", "<a>alpha</a>")
                .unwrap();
            let before = ingest.wal_len();
            ingest.checkpoint(&mut db).unwrap();
            // The log survives the checkpoint byte-for-byte.
            assert_eq!(ingest.wal_len(), before);
            assert!(
                !dir.join(WAL_PREV_FILE).exists(),
                "retained logs never rotate"
            );
            ingest
                .insert_document(&mut db, "b.xml", "<b>beta</b>")
                .unwrap();
        }
        // Recovery replays only lsn > checkpoint lsn from the retained log.
        let (ingest, db) = Ingest::open(&dir, retained()).unwrap();
        assert_eq!(ingest.last_lsn(), 2);
        assert_eq!(db.store().doc_count(), 2);
        // The full history from LSN 1 is still servable.
        let image = ingest.wal_suffix(0, u64::MAX).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(!scan.torn);
    }

    #[test]
    fn wal_suffix_roundtrips_through_scan_bytes() {
        let dir = tmp_dir("suffix");
        let (ingest, mut db) = Ingest::open(&dir, retained()).unwrap();
        for i in 1..=4 {
            ingest
                .insert_document(&mut db, &format!("d{i}.xml"), &format!("<d>doc {i}</d>"))
                .unwrap();
        }
        let image = ingest.wal_suffix(2, u64::MAX).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        let lsns: Vec<u64> = scan.entries.iter().map(|e| e.lsn).collect();
        assert_eq!(lsns, vec![3, 4]);
        match &scan.entries[0].record {
            WalRecord::AddDocument { name, xml } => {
                assert_eq!(name, "d3.xml");
                assert_eq!(xml, "<d>doc 3</d>");
            }
            other => panic!("unexpected record {other:?}"),
        }
        // Caught-up requester gets a bare header.
        let empty = ingest.wal_suffix(4, u64::MAX).unwrap();
        assert_eq!(empty.len() as u64, WAL_HEADER_LEN);
    }

    #[test]
    fn wal_suffix_serves_only_durable_frames() {
        let dir = tmp_dir("suffix-durable");
        let options = IngestOptions {
            durability: DurabilityMode::Flush,
            retain_wal: true,
            ..IngestOptions::default()
        };
        let (ingest, mut db) = Ingest::open(&dir, options).unwrap();
        let (_, t1) = ingest.stage_insert(&mut db, "a.xml", "<a>x</a>").unwrap();
        ingest.commit(t1).unwrap();
        ingest.flush().unwrap();
        let (_, t2) = ingest.stage_insert(&mut db, "b.xml", "<b>y</b>").unwrap();
        ingest.commit(t2).unwrap();
        assert_eq!(ingest.last_lsn(), 2);
        assert_eq!(ingest.durable_lsn(), 1);
        // Frame 2 is written but not fsynced: a crash could lose it, so
        // it must never ship to a replica.
        let image = ingest.wal_suffix(0, u64::MAX).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1]
        );
        // An up-to-date-with-durable requester gets an empty image.
        let empty = ingest.wal_suffix(1, u64::MAX).unwrap();
        assert_eq!(empty.len() as u64, WAL_HEADER_LEN);
        // Once flushed, the frame becomes servable.
        ingest.flush().unwrap();
        let caught_up = ingest.wal_suffix(1, u64::MAX).unwrap();
        let scan2 = crate::wal::scan_bytes(&caught_up).unwrap();
        assert_eq!(
            scan2.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn wal_suffix_respects_max_bytes_but_ships_at_least_one_frame() {
        let dir = tmp_dir("suffix-cap");
        let (ingest, mut db) = Ingest::open(&dir, retained()).unwrap();
        for i in 1..=3 {
            ingest
                .insert_document(&mut db, &format!("d{i}.xml"), "<d>payload body</d>")
                .unwrap();
        }
        // A 1-byte budget still carries the first due frame.
        let image = ingest.wal_suffix(0, 1).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].lsn, 1);
        // A budget covering two frames ships exactly two.
        let two = ingest.wal_suffix(0, image.len() as u64 * 2).unwrap();
        let scan2 = crate::wal::scan_bytes(&two).unwrap();
        assert_eq!(
            scan2.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn wal_suffix_reports_gap_after_unretained_checkpoint() {
        let dir = tmp_dir("suffix-gap");
        let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>x</a>")
            .unwrap();
        ingest
            .insert_document(&mut db, "b.xml", "<b>y</b>")
            .unwrap();
        ingest.checkpoint(&mut db).unwrap();
        ingest
            .insert_document(&mut db, "c.xml", "<c>z</c>")
            .unwrap();
        // LSNs 1–2 were rotated away; asking from 0 must not silently
        // skip them.
        match ingest.wal_suffix(0, u64::MAX) {
            Err(IngestError::WalGap {
                requested,
                earliest,
            }) => {
                assert_eq!(requested, 0);
                assert_eq!(earliest, 3);
            }
            other => panic!("expected WalGap, got {other:?}"),
        }
        // From the checkpoint LSN onward the suffix is servable.
        let image = ingest.wal_suffix(2, u64::MAX).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![3]
        );
    }
}
