//! The ingestion engine: crash recovery, logged mutations, and
//! checkpoint/compaction over a directory of durable state.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/
//!   CHECKPOINT          # tiny meta file: which snapshot pair is live, and
//!                       # through which LSN it is complete
//!   store.{seq}.tixsnap # v2 store snapshot written by checkpoint `seq`
//!   index.{seq}.tixidx  # v2 index snapshot written by checkpoint `seq`
//!   wal.log             # the write-ahead log (see `wal` module docs)
//! ```
//!
//! ## Commit protocol
//!
//! A mutation is *committed* when its WAL frame is fsynced; the in-memory
//! [`Database`] (store + incrementally maintained index) is updated only
//! after that. If the in-memory apply fails (duplicate name, XML parse
//! error, document limits), the frame is truncated back off the log before
//! the error returns — so every frame that survives in the log applied
//! cleanly once, and replaying the same frames over the same base state is
//! deterministic. Recovery therefore treats an apply failure the same way:
//! it can only be an append whose rollback truncation never reached disk,
//! and it is dropped (it is by construction the last frame).
//!
//! ## Checkpoint protocol
//!
//! Checkpoint `N` (sequence numbers increase monotonically):
//!
//! 1. write `store.{N}.tixsnap` and `index.{N}.tixidx` — **fresh names**,
//!    so the pair the current meta points to is never touched;
//! 2. atomically replace `CHECKPOINT` with `{seq: N, lsn: last_lsn}` —
//!    this is the commit point;
//! 3. atomically reset `wal.log` to empty;
//! 4. best-effort delete the previous snapshot pair.
//!
//! A crash between any two steps recovers correctly: before step 2 the old
//! meta + full WAL replay reproduce the state; between steps 2 and 3 the
//! WAL still holds pre-checkpoint records, but replay skips every record
//! with `lsn <= meta.lsn`, so nothing is applied twice.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tix::persist::PersistError;
use tix::Database;
use tix_store::persist::atomic_write;
use tix_store::{DocId, LoadError, RemoveError};

use crate::wal::{Wal, WalRecord, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION};

/// Magic bytes opening the `CHECKPOINT` meta file.
pub const CHECKPOINT_MAGIC: &[u8] = b"TIXCKPT";
/// Current meta-file format version.
pub const CHECKPOINT_VERSION: u8 = 1;

const META_FILE: &str = "CHECKPOINT";
const WAL_FILE: &str = "wal.log";
/// magic + version + seq + lsn + crc32.
const META_LEN: usize = CHECKPOINT_MAGIC.len() + 1 + 8 + 8 + 4;

fn store_file(seq: u64) -> String {
    format!("store.{seq}.tixsnap")
}

fn index_file(seq: u64) -> String {
    format!("index.{seq}.tixidx")
}

/// Errors raised by the ingestion engine.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure (WAL append, truncation, directory setup).
    Io(io::Error),
    /// A document failed to load (duplicate name, XML parse error,
    /// document limits). The mutation was rolled back off the WAL.
    Load(LoadError),
    /// A removal named a document that does not exist. The mutation was
    /// rolled back off the WAL.
    Remove(RemoveError),
    /// A snapshot failed to save or load.
    Persist(PersistError),
    /// The `CHECKPOINT` meta file exists but is damaged. The meta is
    /// written atomically, so this is disk corruption, not a torn write —
    /// it needs operator attention rather than a silent empty start.
    CorruptMeta(&'static str),
    /// A WAL suffix was requested from an LSN the log no longer holds
    /// (a checkpoint without [`IngestOptions::retain_wal`] truncated it).
    /// The requester must fall back to a full resync.
    WalGap {
        /// The LSN the suffix was requested from (exclusive).
        requested: u64,
        /// The earliest LSN the log can still serve a suffix from.
        earliest: u64,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Load(e) => write!(f, "{e}"),
            IngestError::Remove(e) => write!(f, "{e}"),
            IngestError::Persist(e) => write!(f, "{e}"),
            IngestError::CorruptMeta(why) => write!(f, "corrupt checkpoint meta: {why}"),
            IngestError::WalGap {
                requested,
                earliest,
            } => write!(
                f,
                "WAL gap: suffix from lsn {requested} requested but the log starts at {earliest}"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Load(e) => Some(e),
            IngestError::Remove(e) => Some(e),
            IngestError::Persist(e) => Some(e),
            IngestError::CorruptMeta(_) => None,
            IngestError::WalGap { .. } => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<PersistError> for IngestError {
    fn from(e: PersistError) -> Self {
        IngestError::Persist(e)
    }
}

/// Tuning knobs for the engine.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// [`Ingest::maybe_checkpoint`] fires once the WAL file reaches this
    /// many bytes. `u64::MAX` disables size-triggered checkpoints.
    pub checkpoint_bytes: u64,
    /// Keep the WAL intact across checkpoints instead of resetting it.
    ///
    /// Recovery is already correct either way — replay skips every record
    /// with `lsn <= CHECKPOINT.lsn`, so a retained log merely replays
    /// nothing for its pre-checkpoint prefix. Retention exists for
    /// **WAL-shipping replication**: a shard primary that retains its log
    /// can serve [`Ingest::wal_suffix`] from any LSN a follower asks for,
    /// so a replica (even a brand-new one starting at LSN 0) can always
    /// catch up from the op stream alone. The cost is an append-only log
    /// that grows with total history; see DESIGN.md §13 for the
    /// snapshot-shipping follow-up that would bound it.
    pub retain_wal: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            // Small WALs replay in well under a second; 8 MiB keeps
            // recovery cheap without checkpointing on every mutation.
            checkpoint_bytes: 8 * 1024 * 1024,
            retain_wal: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CheckpointMeta {
    seq: u64,
    lsn: u64,
}

fn read_u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(bytes.get(at..at + 8)?);
    Some(u64::from_le_bytes(buf))
}

fn read_meta(path: &Path) -> Result<Option<CheckpointMeta>, IngestError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(IngestError::Io(e)),
    };
    if bytes.len() != META_LEN {
        return Err(IngestError::CorruptMeta("wrong length"));
    }
    if !bytes.starts_with(CHECKPOINT_MAGIC) {
        return Err(IngestError::CorruptMeta("bad magic"));
    }
    if bytes.get(CHECKPOINT_MAGIC.len()).copied() != Some(CHECKPOINT_VERSION) {
        return Err(IngestError::CorruptMeta("unsupported version"));
    }
    let body_len = META_LEN - 4;
    let (body, tail) = (bytes.get(..body_len), bytes.get(body_len..));
    let (Some(body), Some(tail)) = (body, tail) else {
        return Err(IngestError::CorruptMeta("wrong length"));
    };
    let mut crc_buf = [0u8; 4];
    crc_buf.copy_from_slice(tail);
    if u32::from_le_bytes(crc_buf) != tix_invariants::crc32(body) {
        return Err(IngestError::CorruptMeta("checksum mismatch"));
    }
    let base = CHECKPOINT_MAGIC.len() + 1;
    match (read_u64_at(&bytes, base), read_u64_at(&bytes, base + 8)) {
        (Some(seq), Some(lsn)) => Ok(Some(CheckpointMeta { seq, lsn })),
        _ => Err(IngestError::CorruptMeta("wrong length")),
    }
}

fn write_meta(path: &Path, meta: CheckpointMeta) -> Result<(), IngestError> {
    let mut body = Vec::with_capacity(META_LEN);
    body.extend_from_slice(CHECKPOINT_MAGIC);
    body.push(CHECKPOINT_VERSION);
    body.extend_from_slice(&meta.seq.to_le_bytes());
    body.extend_from_slice(&meta.lsn.to_le_bytes());
    let crc = tix_invariants::crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    atomic_write::<io::Error, _>(path, |w| w.write_all(&body))?;
    Ok(())
}

/// The single-writer ingestion engine for one durable directory. Pair it
/// with the [`Database`] returned by [`Ingest::open`]; every mutation goes
/// through the engine (WAL first), never through the database directly.
#[derive(Debug)]
pub struct Ingest {
    dir: PathBuf,
    wal: Wal,
    last_lsn: u64,
    seq: u64,
    options: IngestOptions,
    /// WAL size when the live checkpoint was taken. With
    /// [`IngestOptions::retain_wal`] the log never resets, so the
    /// size-triggered checkpoint fires on growth *since* the last
    /// checkpoint, not on absolute length.
    wal_len_at_checkpoint: u64,
}

impl Ingest {
    /// Open (creating if needed) the durable directory and recover its
    /// state: load the snapshot pair named by `CHECKPOINT` (or start
    /// empty), then replay every WAL record with `lsn > meta.lsn` through
    /// the incremental maintenance path. Returns the engine and the
    /// recovered, fully indexed database.
    pub fn open(
        dir: impl Into<PathBuf>,
        options: IngestOptions,
    ) -> Result<(Ingest, Database), IngestError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let meta = read_meta(&dir.join(META_FILE))?;
        let mut db = Database::new();
        let (seq, base_lsn) = match meta {
            Some(m) => {
                let mut opened = Database::open(dir.join(store_file(m.seq)))?;
                opened.load_index_from(dir.join(index_file(m.seq)))?;
                db = opened;
                (m.seq, m.lsn)
            }
            None => {
                // Fresh directory: an empty store with an empty (but
                // present) index, so maintenance starts immediately.
                db.build_index();
                (0, 0)
            }
        };
        let (mut wal, scan) = Wal::open(dir.join(WAL_FILE))?;
        let mut last_lsn = base_lsn;
        for entry in scan.entries {
            if entry.lsn <= base_lsn {
                // Already folded into the checkpoint: the crash window
                // between meta commit and WAL reset leaves these behind.
                continue;
            }
            let applied = match &entry.record {
                WalRecord::AddDocument { name, xml } => {
                    db.insert_document(name, xml).map(|_| ()).is_ok()
                }
                WalRecord::RemoveDocument { name } => db.remove_document(name).is_ok(),
            };
            if !applied {
                // Every surviving frame applied cleanly when it was
                // written, so a replay failure can only be an append whose
                // rollback truncation raced a crash — necessarily the last
                // frame. Drop it.
                wal.truncate_to(entry.offset)?;
                break;
            }
            last_lsn = entry.lsn;
        }
        let wal_len_at_checkpoint = if options.retain_wal {
            // The retained log's pre-`base_lsn` prefix predates the live
            // checkpoint; only growth past the recovered length should
            // count toward the next size-triggered checkpoint.
            wal.len()
        } else {
            0
        };
        Ok((
            Ingest {
                dir,
                wal,
                last_lsn,
                seq,
                options,
                wal_len_at_checkpoint,
            },
            db,
        ))
    }

    /// Log and apply a document insertion. The WAL frame is fsynced before
    /// the in-memory apply; on apply failure the frame is truncated back
    /// off the log and the typed error returns.
    pub fn insert_document(
        &mut self,
        db: &mut Database,
        name: &str,
        xml: &str,
    ) -> Result<DocId, IngestError> {
        let lsn = self.last_lsn + 1;
        let record = WalRecord::AddDocument {
            name: name.to_string(),
            xml: xml.to_string(),
        };
        let offset = self.wal.append(lsn, &record)?;
        match db.insert_document(name, xml) {
            Ok(id) => {
                self.last_lsn = lsn;
                Ok(id)
            }
            Err(e) => {
                self.wal.truncate_to(offset)?;
                Err(IngestError::Load(e))
            }
        }
    }

    /// Log and apply a document removal. Same contract as
    /// [`Ingest::insert_document`].
    pub fn remove_document(&mut self, db: &mut Database, name: &str) -> Result<DocId, IngestError> {
        let lsn = self.last_lsn + 1;
        let record = WalRecord::RemoveDocument {
            name: name.to_string(),
        };
        let offset = self.wal.append(lsn, &record)?;
        match db.remove_document(name) {
            Ok(id) => {
                self.last_lsn = lsn;
                Ok(id)
            }
            Err(e) => {
                self.wal.truncate_to(offset)?;
                Err(IngestError::Remove(e))
            }
        }
    }

    /// Write a checkpoint: persist store + index snapshots under a fresh
    /// sequence number, commit the meta file, reset the WAL, and delete
    /// the superseded snapshot pair. Returns the new sequence number.
    ///
    /// See the module docs for why each crash window recovers correctly.
    pub fn checkpoint(&mut self, db: &mut Database) -> Result<u64, IngestError> {
        if !db.has_index() {
            db.build_index();
        }
        let seq = self.seq + 1;
        db.save_store_to(self.dir.join(store_file(seq)))?;
        db.save_index_to(self.dir.join(index_file(seq)))?;
        write_meta(
            &self.dir.join(META_FILE),
            CheckpointMeta {
                seq,
                lsn: self.last_lsn,
            },
        )?;
        let old = self.seq;
        self.seq = seq;
        if !self.options.retain_wal {
            self.wal.reset()?;
        }
        self.wal_len_at_checkpoint = self.wal.len();
        if old > 0 {
            // Best-effort: the meta no longer references these, so a
            // failed delete costs disk space, not correctness.
            let _ = fs::remove_file(self.dir.join(store_file(old)));
            let _ = fs::remove_file(self.dir.join(index_file(old)));
        }
        Ok(seq)
    }

    /// Checkpoint iff the WAL has reached the configured size threshold.
    /// Returns the new sequence number when one was taken.
    pub fn maybe_checkpoint(&mut self, db: &mut Database) -> Result<Option<u64>, IngestError> {
        let grown = self.wal.len().saturating_sub(self.wal_len_at_checkpoint);
        if grown >= self.options.checkpoint_bytes {
            return self.checkpoint(db).map(Some);
        }
        Ok(None)
    }

    /// The last committed log sequence number (0 before any mutation).
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }

    /// The live checkpoint sequence number (0 before any checkpoint).
    pub fn checkpoint_seq(&self) -> u64 {
        self.seq
    }

    /// Current WAL file size in bytes (header included).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// The durable directory this engine owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Serve the WAL suffix strictly after `from_lsn` as a standalone WAL
    /// image (header + CRC frames), capped at roughly `max_bytes` but
    /// always carrying at least one frame when one is due. This is the
    /// payload of the replication `/wal?from_lsn=` endpoint: because the
    /// wire format *is* the on-disk format, a follower runs the response
    /// through [`crate::wal::scan_bytes`] and gets torn-transfer safety
    /// for free.
    ///
    /// An up-to-date requester (`from_lsn >= last_lsn`) gets an empty
    /// image (header only). If the log no longer holds `from_lsn + 1`
    /// (a checkpoint without [`IngestOptions::retain_wal`] truncated it),
    /// returns [`IngestError::WalGap`] and the requester must resync from
    /// a snapshot instead.
    pub fn wal_suffix(&self, from_lsn: u64, max_bytes: u64) -> Result<Vec<u8>, IngestError> {
        let header = || {
            let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
            out.extend_from_slice(WAL_MAGIC);
            out.push(WAL_VERSION);
            out
        };
        if from_lsn >= self.last_lsn {
            return Ok(header());
        }
        let bytes = fs::read(self.dir.join(WAL_FILE))?;
        let scan = crate::wal::scan_bytes(&bytes)?;
        let start = match scan.entries.iter().position(|e| e.lsn > from_lsn) {
            Some(i) => i,
            None => {
                // Mutations exist past `from_lsn` (checked above) but the
                // log holds none of them: everything is folded into the
                // checkpoint and gone.
                return Err(IngestError::WalGap {
                    requested: from_lsn,
                    earliest: self.last_lsn + 1,
                });
            }
        };
        let entries = scan.entries.get(start..).unwrap_or_default();
        let Some(first) = entries.first() else {
            return Err(IngestError::WalGap {
                requested: from_lsn,
                earliest: self.last_lsn + 1,
            });
        };
        if first.lsn != from_lsn + 1 {
            return Err(IngestError::WalGap {
                requested: from_lsn,
                earliest: first.lsn,
            });
        }
        // Cut at a frame boundary: frame i ends where frame i+1 starts
        // (or at the committed prefix's end). Slicing the raw file keeps
        // the shipped frames byte-identical to the durable ones, CRCs
        // included.
        let start_off = usize::try_from(first.offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WAL offset overflow"))?;
        let committed_end = usize::try_from(scan.valid_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WAL length overflow"))?;
        let mut cut = start_off;
        for (i, _) in entries.iter().enumerate() {
            let frame_end = match entries.get(i + 1) {
                Some(next) => usize::try_from(next.offset).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "WAL offset overflow")
                })?,
                None => committed_end,
            };
            let image_len = WAL_HEADER_LEN + (frame_end - start_off) as u64;
            if i > 0 && image_len > max_bytes {
                break;
            }
            cut = frame_end;
        }
        let mut out = header();
        let frames = bytes
            .get(start_off..cut)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "WAL cut out of range"))?;
        out.extend_from_slice(frames);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix::exec::pick::PickParams;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tix-ingest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn pick() -> PickParams {
        PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        }
    }

    #[test]
    fn fresh_directory_starts_empty_and_indexed() {
        let (ingest, db) = Ingest::open(tmp_dir("fresh"), IngestOptions::default()).unwrap();
        assert_eq!(db.store().doc_count(), 0);
        assert!(db.has_index());
        assert_eq!(ingest.last_lsn(), 0);
        assert_eq!(ingest.checkpoint_seq(), 0);
    }

    #[test]
    fn mutations_survive_reopen_via_replay() {
        let dir = tmp_dir("replay");
        {
            let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
            ingest
                .insert_document(&mut db, "a.xml", "<a><p>rust xml</p></a>")
                .unwrap();
            ingest
                .insert_document(&mut db, "b.xml", "<b><p>gone soon</p></b>")
                .unwrap();
            ingest.remove_document(&mut db, "b.xml").unwrap();
            assert_eq!(ingest.last_lsn(), 3);
            // No checkpoint: everything lives in the WAL.
        }
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert_eq!(ingest.last_lsn(), 3);
        assert_eq!(db.store().doc_count(), 1);
        assert!(!db.search(&["rust"], pick(), 5).is_empty());
        assert!(db.search(&["gone"], pick(), 5).is_empty());
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopen_uses_snapshots() {
        let dir = tmp_dir("checkpoint");
        {
            let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
            ingest
                .insert_document(&mut db, "a.xml", "<a>alpha</a>")
                .unwrap();
            assert_eq!(ingest.checkpoint(&mut db).unwrap(), 1);
            assert_eq!(ingest.wal_len(), crate::wal::WAL_HEADER_LEN);
            // Post-checkpoint mutations land in the fresh WAL.
            ingest
                .insert_document(&mut db, "b.xml", "<b>beta</b>")
                .unwrap();
        }
        assert!(dir.join("store.1.tixsnap").exists());
        assert!(dir.join("index.1.tixidx").exists());
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert_eq!(ingest.checkpoint_seq(), 1);
        assert_eq!(db.store().doc_count(), 2);
        assert!(!db.search(&["alpha"], pick(), 5).is_empty());
        assert!(!db.search(&["beta"], pick(), 5).is_empty());
    }

    #[test]
    fn second_checkpoint_deletes_the_superseded_pair() {
        let dir = tmp_dir("compact");
        let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>x</a>")
            .unwrap();
        ingest.checkpoint(&mut db).unwrap();
        ingest
            .insert_document(&mut db, "b.xml", "<b>y</b>")
            .unwrap();
        ingest.checkpoint(&mut db).unwrap();
        assert!(!dir.join("store.1.tixsnap").exists());
        assert!(!dir.join("index.1.tixidx").exists());
        assert!(dir.join("store.2.tixsnap").exists());
        assert!(dir.join("index.2.tixidx").exists());
    }

    #[test]
    fn failed_apply_is_rolled_back_off_the_wal() {
        let dir = tmp_dir("rollback");
        let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>x</a>")
            .unwrap();
        let wal_after_good = ingest.wal_len();
        // Duplicate name, unparsable XML, missing removal target: each is
        // a typed error and leaves the WAL exactly as it was.
        assert!(matches!(
            ingest.insert_document(&mut db, "a.xml", "<a>dup</a>"),
            Err(IngestError::Load(LoadError::DuplicateName(_)))
        ));
        assert!(matches!(
            ingest.insert_document(&mut db, "b.xml", "<unclosed>"),
            Err(IngestError::Load(LoadError::Xml(_)))
        ));
        assert!(matches!(
            ingest.remove_document(&mut db, "nope.xml"),
            Err(IngestError::Remove(RemoveError::NotFound(_)))
        ));
        assert_eq!(ingest.wal_len(), wal_after_good);
        assert_eq!(ingest.last_lsn(), 1);
        // Reopen sees only the good mutation.
        drop(ingest);
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        assert_eq!(ingest.last_lsn(), 1);
        assert_eq!(db.store().doc_count(), 1);
    }

    #[test]
    fn size_threshold_triggers_maybe_checkpoint() {
        let dir = tmp_dir("threshold");
        let options = IngestOptions {
            checkpoint_bytes: 64,
            ..IngestOptions::default()
        };
        let (mut ingest, mut db) = Ingest::open(&dir, options).unwrap();
        assert_eq!(ingest.maybe_checkpoint(&mut db).unwrap(), None);
        ingest
            .insert_document(&mut db, "a.xml", "<a>some words to cross the threshold</a>")
            .unwrap();
        assert_eq!(ingest.maybe_checkpoint(&mut db).unwrap(), Some(1));
        assert_eq!(ingest.maybe_checkpoint(&mut db).unwrap(), None);
    }

    #[test]
    fn crash_window_between_meta_and_wal_reset_skips_replay() {
        let dir = tmp_dir("lsn-gate");
        let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>alpha</a>")
            .unwrap();
        let wal_bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        ingest.checkpoint(&mut db).unwrap();
        // Simulate the crash: the meta committed but the WAL reset was
        // lost — restore the pre-reset WAL contents.
        fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();
        drop(ingest);
        let (ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        // The add of a.xml must not apply twice (it would be a duplicate).
        assert_eq!(db.store().doc_count(), 1);
        assert_eq!(ingest.last_lsn(), 1);
        assert!(!db.search(&["alpha"], pick(), 5).is_empty());
    }

    #[test]
    fn corrupt_meta_is_a_typed_error() {
        let dir = tmp_dir("meta");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(META_FILE), b"garbage").unwrap();
        let err = Ingest::open(&dir, IngestOptions::default()).unwrap_err();
        assert!(matches!(err, IngestError::CorruptMeta(_)), "{err:?}");
    }

    #[test]
    fn meta_roundtrip_and_bitflip_rejection() {
        let dir = tmp_dir("meta-crc");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(META_FILE);
        write_meta(&path, CheckpointMeta { seq: 7, lsn: 42 }).unwrap();
        let meta = read_meta(&path).unwrap().unwrap();
        assert_eq!((meta.seq, meta.lsn), (7, 42));
        let mut bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x04;
            fs::write(&path, &bytes).unwrap();
            assert!(read_meta(&path).is_err(), "flip at byte {i} accepted");
            bytes[i] ^= 0x04;
        }
    }

    fn retained() -> IngestOptions {
        IngestOptions {
            retain_wal: true,
            ..IngestOptions::default()
        }
    }

    #[test]
    fn retain_wal_checkpoint_keeps_full_history_and_recovers() {
        let dir = tmp_dir("retain");
        {
            let (mut ingest, mut db) = Ingest::open(&dir, retained()).unwrap();
            ingest
                .insert_document(&mut db, "a.xml", "<a>alpha</a>")
                .unwrap();
            let before = ingest.wal_len();
            ingest.checkpoint(&mut db).unwrap();
            // The log survives the checkpoint byte-for-byte.
            assert_eq!(ingest.wal_len(), before);
            ingest
                .insert_document(&mut db, "b.xml", "<b>beta</b>")
                .unwrap();
        }
        // Recovery replays only lsn > checkpoint lsn from the retained log.
        let (ingest, db) = Ingest::open(&dir, retained()).unwrap();
        assert_eq!(ingest.last_lsn(), 2);
        assert_eq!(db.store().doc_count(), 2);
        // The full history from LSN 1 is still servable.
        let image = ingest.wal_suffix(0, u64::MAX).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(!scan.torn);
    }

    #[test]
    fn wal_suffix_roundtrips_through_scan_bytes() {
        let dir = tmp_dir("suffix");
        let (mut ingest, mut db) = Ingest::open(&dir, retained()).unwrap();
        for i in 1..=4 {
            ingest
                .insert_document(&mut db, &format!("d{i}.xml"), &format!("<d>doc {i}</d>"))
                .unwrap();
        }
        let image = ingest.wal_suffix(2, u64::MAX).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        let lsns: Vec<u64> = scan.entries.iter().map(|e| e.lsn).collect();
        assert_eq!(lsns, vec![3, 4]);
        match &scan.entries[0].record {
            WalRecord::AddDocument { name, xml } => {
                assert_eq!(name, "d3.xml");
                assert_eq!(xml, "<d>doc 3</d>");
            }
            other => panic!("unexpected record {other:?}"),
        }
        // Caught-up requester gets a bare header.
        let empty = ingest.wal_suffix(4, u64::MAX).unwrap();
        assert_eq!(empty.len() as u64, WAL_HEADER_LEN);
    }

    #[test]
    fn wal_suffix_respects_max_bytes_but_ships_at_least_one_frame() {
        let dir = tmp_dir("suffix-cap");
        let (mut ingest, mut db) = Ingest::open(&dir, retained()).unwrap();
        for i in 1..=3 {
            ingest
                .insert_document(&mut db, &format!("d{i}.xml"), "<d>payload body</d>")
                .unwrap();
        }
        // A 1-byte budget still carries the first due frame.
        let image = ingest.wal_suffix(0, 1).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].lsn, 1);
        // A budget covering two frames ships exactly two.
        let two = ingest.wal_suffix(0, image.len() as u64 * 2).unwrap();
        let scan2 = crate::wal::scan_bytes(&two).unwrap();
        assert_eq!(
            scan2.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn wal_suffix_reports_gap_after_unretained_checkpoint() {
        let dir = tmp_dir("suffix-gap");
        let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<a>x</a>")
            .unwrap();
        ingest
            .insert_document(&mut db, "b.xml", "<b>y</b>")
            .unwrap();
        ingest.checkpoint(&mut db).unwrap();
        ingest
            .insert_document(&mut db, "c.xml", "<c>z</c>")
            .unwrap();
        // LSNs 1–2 were truncated away; asking from 0 must not silently
        // skip them.
        match ingest.wal_suffix(0, u64::MAX) {
            Err(IngestError::WalGap {
                requested,
                earliest,
            }) => {
                assert_eq!(requested, 0);
                assert_eq!(earliest, 3);
            }
            other => panic!("expected WalGap, got {other:?}"),
        }
        // From the checkpoint LSN onward the suffix is servable.
        let image = ingest.wal_suffix(2, u64::MAX).unwrap();
        let scan = crate::wal::scan_bytes(&image).unwrap();
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![3]
        );
    }
}
