//! ARIES-style group commit: the commit-waiter pipeline behind every
//! mutation.
//!
//! ## Protocol
//!
//! A mutation is split into two halves:
//!
//! 1. **Stage** ([`CommitPipeline::stage`]) — called while the caller
//!    holds the database write lock, *after* the mutation applied to the
//!    in-memory database. The pipeline assigns the next LSN, encodes the
//!    WAL frame, and pushes it onto the bounded pending queue. Because
//!    every stager holds the database write lock, stage order == apply
//!    order == LSN order, and the pending queue is always an LSN-contiguous
//!    run.
//! 2. **Commit** ([`CommitPipeline::commit`]) — called after the database
//!    lock is released. The first committer to find no I/O in progress
//!    becomes the **leader**: it drains the whole pending queue, performs
//!    one `write_all` (and, depending on the durability mode, one
//!    `sync_all`) for the entire batch, then wakes every waiter. Committers
//!    that arrive while a leader is flushing simply wait; their frames ride
//!    in the next batch. This is what collapses the fsync-bound segment of
//!    the write path: N concurrent committers cost one fsync, not N.
//!
//! ## Durability modes
//!
//! | mode      | `commit` returns when          | lost on crash                  |
//! |-----------|--------------------------------|--------------------------------|
//! | `Strict`  | frame fsynced (`durable ≥ lsn`)| nothing acknowledged           |
//! | `Batched` | frame written (`written ≥ lsn`)| acks younger than `max_delay`  |
//! | `Flush`   | frame written                  | acks since last explicit flush |
//!
//! In every mode the on-disk log is a **prefix** of the acknowledged
//! stream (frames are written in LSN order, all-or-nothing per batch), so
//! recovery always yields a prefix-consistent database — the modes differ
//! only in how much acknowledged tail a crash may cost.
//!
//! ## Failure semantics
//!
//! A failed batch write rolls the file back (see [`Wal::append_frames`])
//! but the batch's mutations are already applied in memory; the pipeline
//! **poisons** itself — every later stage/commit errors — because memory
//! is now ahead of a log that can no longer catch up. A poisoned pipeline
//! requires a restart, which recovers the durable prefix.

use std::io;
use std::path::Path;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::wal::{encode_frame, len_u64, Wal, WalRecord};

/// When a mutation's acknowledgement may be released relative to its
/// frame reaching stable storage. See the module docs for the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Every commit waits for its frame to be fsynced (the PR-5
    /// behaviour, now amortized: one fsync per *batch*).
    Strict,
    /// Commits are acknowledged once written; the leader fsyncs when the
    /// oldest unsynced frame is older than `max_delay` (a background
    /// flusher or the next commit triggers it).
    Batched {
        /// Upper bound on how long an acknowledged frame may stay
        /// un-fsynced.
        max_delay: Duration,
    },
    /// Commits are acknowledged once written; fsync happens only on an
    /// explicit [`CommitPipeline::flush`] or at a checkpoint.
    Flush,
}

impl DurabilityMode {
    /// Parse a CLI spelling: `strict`, `flush`, `batched` (default
    /// 5 ms), or `batched:<millis>`.
    pub fn parse(s: &str) -> Result<DurabilityMode, String> {
        match s {
            "strict" => Ok(DurabilityMode::Strict),
            "flush" => Ok(DurabilityMode::Flush),
            "batched" => Ok(DurabilityMode::Batched {
                max_delay: Duration::from_millis(5),
            }),
            other => match other.strip_prefix("batched:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) => Ok(DurabilityMode::Batched {
                        max_delay: Duration::from_millis(ms),
                    }),
                    Err(_) => Err(format!("bad batched delay {ms:?} (want milliseconds)")),
                },
                None => Err(format!(
                    "unknown durability mode {other:?} (want strict, batched[:ms], or flush)"
                )),
            },
        }
    }
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityMode::Strict => write!(f, "strict"),
            DurabilityMode::Batched { max_delay } => {
                write!(f, "batched:{}", max_delay.as_millis())
            }
            DurabilityMode::Flush => write!(f, "flush"),
        }
    }
}

/// A staged-but-uncommitted mutation. Returned by `stage_*`; must be
/// passed to [`CommitPipeline::commit`] (via `Ingest::commit`) to obtain
/// the durability acknowledgement.
#[derive(Debug)]
#[must_use = "a staged mutation is not durable until committed"]
pub struct CommitTicket {
    pub(crate) lsn: u64,
}

impl CommitTicket {
    /// The LSN assigned to the staged mutation.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }
}

/// A committed mutation's acknowledgement.
#[derive(Debug, Clone, Copy)]
pub struct CommitAck {
    /// The mutation's LSN.
    pub lsn: u64,
    /// Highest LSN known fsynced when the ack was issued. Under `Strict`
    /// this is `>= lsn`; under `Batched`/`Flush` it may lag `lsn`.
    pub durable_lsn: u64,
}

/// A snapshot of the pipeline's commit counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitStats {
    /// Batches written by a leader.
    pub batches: u64,
    /// Frames carried by those batches.
    pub frames: u64,
    /// `sync_all` calls issued.
    pub fsyncs: u64,
    /// Largest single batch, in frames.
    pub max_batch_frames: u64,
    /// Cumulative time writers were stalled by `begin_checkpoint`, µs.
    pub checkpoint_stall_us: u64,
}

impl CommitStats {
    /// Fsyncs avoided relative to the one-fsync-per-frame protocol.
    pub fn fsyncs_saved(&self) -> u64 {
        self.frames.saturating_sub(self.fsyncs)
    }
}

#[derive(Debug)]
struct PendingFrame {
    lsn: u64,
    bytes: Vec<u8>,
}

#[derive(Debug)]
struct PipelineState {
    /// Highest LSN handed out (mutation applied in memory and queued).
    staged_lsn: u64,
    /// Highest LSN written to the log file.
    written_lsn: u64,
    /// Highest LSN fsynced.
    durable_lsn: u64,
    /// Staged frames not yet written, in LSN order.
    pending: Vec<PendingFrame>,
    /// A leader is doing I/O outside the state lock.
    io_in_progress: bool,
    /// A checkpoint is quiescing/rotating the log; leaders must not start.
    rotating: bool,
    /// When the last fsync completed (drives `Batched` deadlines).
    last_sync: Instant,
    /// Fatal-failure reason; set once, never cleared.
    poisoned: Option<String>,
    batches: u64,
    frames: u64,
    fsyncs: u64,
    max_batch_frames: u64,
    checkpoint_stall_us: u64,
}

/// The group-commit pipeline: shared state + condvar for the waiter
/// queue, and the WAL under its own lock so frame I/O never holds the
/// state lock (arrivals keep staging while the leader fsyncs).
///
/// Lock order: `state` and `wal` are never held at the same time except
/// transiently by the leader *after* clearing `io_in_progress` — the
/// leader takes `wal` only while `io_in_progress` (or `rotating`) is set,
/// which excludes every other I/O path, so there is no lock-order cycle.
#[derive(Debug)]
pub(crate) struct CommitPipeline {
    state: Mutex<PipelineState>,
    cond: Condvar,
    wal: Mutex<Wal>,
    mode: DurabilityMode,
    queue_capacity: usize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A poisoned std mutex only means another thread panicked while
    // holding it; the pipeline's own poison flag tracks logical damage.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn poison_err(reason: &str) -> io::Error {
    io::Error::other(format!("ingest pipeline poisoned: {reason}"))
}

impl CommitPipeline {
    /// Wrap a recovered WAL. `last_lsn` is the highest LSN already in the
    /// log (replayed into the database), so staged == written == durable
    /// at construction.
    pub(crate) fn new(
        wal: Wal,
        mode: DurabilityMode,
        last_lsn: u64,
        queue_capacity: usize,
    ) -> CommitPipeline {
        CommitPipeline {
            state: Mutex::new(PipelineState {
                staged_lsn: last_lsn,
                written_lsn: last_lsn,
                durable_lsn: last_lsn,
                pending: Vec::new(),
                io_in_progress: false,
                rotating: false,
                last_sync: Instant::now(),
                poisoned: None,
                batches: 0,
                frames: 0,
                fsyncs: 0,
                max_batch_frames: 0,
                checkpoint_stall_us: 0,
            }),
            cond: Condvar::new(),
            wal: Mutex::new(wal),
            mode,
            queue_capacity,
        }
    }

    /// The pipeline's durability mode.
    pub(crate) fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// Admission check, to be run **before** applying a mutation to the
    /// database (while holding the database write lock): a poisoned
    /// pipeline or a full commit queue rejects the mutation while nothing
    /// has been applied yet. Between this check and [`stage`], the queue
    /// can only drain (stagers are serialized by the database write
    /// lock), so a subsequent stage cannot overflow the bound.
    ///
    /// [`stage`]: CommitPipeline::stage
    pub(crate) fn check_admission(&self) -> io::Result<()> {
        let st = lock(&self.state);
        if let Some(reason) = &st.poisoned {
            return Err(poison_err(reason));
        }
        // Bounded commit queue: compare against the configured capacity
        // and refuse admission instead of queueing without limit.
        if st.pending.len() >= self.queue_capacity {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "commit queue full (writers are outrunning the log)",
            ));
        }
        Ok(())
    }

    /// Assign the next LSN to an already-applied mutation and queue its
    /// frame. Caller must hold the database write lock (which makes LSN
    /// order identical to apply order) and must have passed
    /// [`CommitPipeline::check_admission`] before applying.
    pub(crate) fn stage(&self, record: &WalRecord) -> io::Result<CommitTicket> {
        let mut st = lock(&self.state);
        if let Some(reason) = &st.poisoned {
            return Err(poison_err(reason));
        }
        let lsn = st.staged_lsn + 1;
        let bytes = match encode_frame(lsn, record) {
            Ok(bytes) => bytes,
            Err(e) => {
                // The mutation is already applied in memory but can never
                // reach the log: memory is ahead of the durable stream.
                st.poisoned = Some(format!("staged mutation failed to encode: {e}"));
                return Err(e);
            }
        };
        st.staged_lsn = lsn;
        st.pending.push(PendingFrame { lsn, bytes });
        Ok(CommitTicket { lsn })
    }

    fn reached(&self, st: &PipelineState, lsn: u64) -> bool {
        match self.mode {
            DurabilityMode::Strict => st.durable_lsn >= lsn,
            DurabilityMode::Batched { .. } | DurabilityMode::Flush => st.written_lsn >= lsn,
        }
    }

    /// Wait until `ticket`'s frame meets the durability mode's bar,
    /// becoming the batch leader if no I/O is in flight. See the module
    /// docs for the protocol.
    pub(crate) fn commit(&self, ticket: CommitTicket) -> io::Result<CommitAck> {
        let mut st = lock(&self.state);
        loop {
            if let Some(reason) = &st.poisoned {
                return Err(poison_err(reason));
            }
            if self.reached(&st, ticket.lsn) {
                return Ok(CommitAck {
                    lsn: ticket.lsn,
                    durable_lsn: st.durable_lsn,
                });
            }
            if !st.io_in_progress && !st.rotating {
                st = self.lead(st, false);
            } else {
                st = self.cond.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// One leader round: drain the pending queue, write it as a single
    /// batch, fsync per the mode, update watermarks, wake waiters.
    /// Errors surface through the poison flag (checked by every waiter's
    /// loop), so this always returns the re-acquired state lock.
    fn lead<'a>(
        &'a self,
        mut st: MutexGuard<'a, PipelineState>,
        force_sync: bool,
    ) -> MutexGuard<'a, PipelineState> {
        st.io_in_progress = true;
        let batch = std::mem::take(&mut st.pending);
        let sync = force_sync
            || match self.mode {
                DurabilityMode::Strict => true,
                DurabilityMode::Batched { max_delay } => st.last_sync.elapsed() >= max_delay,
                DurabilityMode::Flush => false,
            };
        let last_lsn = batch.last().map(|f| f.lsn);
        drop(st);
        let io_result = {
            let mut wal = lock(&self.wal);
            if batch.is_empty() {
                if sync {
                    wal.sync()
                } else {
                    Ok(())
                }
            } else {
                let total: usize = batch.iter().map(|f| f.bytes.len()).sum();
                let mut bytes = Vec::with_capacity(total);
                for frame in &batch {
                    bytes.extend_from_slice(&frame.bytes);
                }
                wal.append_frames(&bytes, sync)
            }
        };
        let mut st = lock(&self.state);
        st.io_in_progress = false;
        match io_result {
            Ok(()) => {
                if let Some(lsn) = last_lsn {
                    st.written_lsn = lsn;
                    st.batches += 1;
                    st.frames += len_u64(batch.len());
                    st.max_batch_frames = st.max_batch_frames.max(len_u64(batch.len()));
                }
                if sync {
                    st.durable_lsn = st.written_lsn;
                    st.last_sync = Instant::now();
                    st.fsyncs += 1;
                }
                tix_invariants::check! {
                    tix_invariants::assert_commit_watermarks(
                        st.durable_lsn,
                        st.written_lsn,
                        st.staged_lsn,
                    );
                }
            }
            Err(e) => {
                // The WAL rolled the batch back (or poisoned itself), but
                // the batch's mutations are applied in memory: the log can
                // no longer catch up to the database. Poison everything.
                st.poisoned = Some(format!("group-commit batch write failed: {e}"));
            }
        }
        self.cond.notify_all();
        st
    }

    /// Write and fsync everything staged; returns the durable LSN.
    pub(crate) fn flush(&self) -> io::Result<u64> {
        let mut st = lock(&self.state);
        loop {
            if let Some(reason) = &st.poisoned {
                return Err(poison_err(reason));
            }
            if st.durable_lsn >= st.staged_lsn {
                return Ok(st.durable_lsn);
            }
            if !st.io_in_progress && !st.rotating {
                st = self.lead(st, true);
            } else {
                st = self.cond.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// Under `Batched`, flush if the oldest unsynced frame has exceeded
    /// `max_delay` (the background flusher's entry point). Returns the
    /// durable LSN if a flush ran.
    pub(crate) fn flush_if_due(&self) -> io::Result<Option<u64>> {
        let due = {
            let st = lock(&self.state);
            st.poisoned.is_none()
                && st.durable_lsn < st.staged_lsn
                && match self.mode {
                    DurabilityMode::Batched { max_delay } => st.last_sync.elapsed() >= max_delay,
                    DurabilityMode::Strict | DurabilityMode::Flush => false,
                }
        };
        if due {
            self.flush().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Quiesce leader I/O, write + fsync every staged frame, and (for
    /// non-retaining checkpoints) rotate the log aside to `rotate_to`.
    /// Returns the checkpoint LSN `L` — every frame `<= L` is durable
    /// (and, when rotating, lives in the rotated-away file).
    ///
    /// The caller must hold the database lock, which blocks new stagers,
    /// so `staged_lsn` is stable across the call. Leaders never touch the
    /// database, so waiting for `io_in_progress` here cannot deadlock.
    pub(crate) fn prepare_checkpoint(&self, rotate_to: Option<&Path>) -> io::Result<u64> {
        let stall_started = Instant::now();
        let mut st = lock(&self.state);
        if let Some(reason) = &st.poisoned {
            return Err(poison_err(reason));
        }
        st.rotating = true;
        while st.io_in_progress {
            st = self.cond.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if let Some(reason) = st.poisoned.clone() {
            st.rotating = false;
            self.cond.notify_all();
            return Err(poison_err(&reason));
        }
        let batch = std::mem::take(&mut st.pending);
        let staged = st.staged_lsn;
        let need_sync = st.durable_lsn < staged;
        drop(st);
        let io_result = {
            let mut wal = lock(&self.wal);
            let mut step = || -> io::Result<()> {
                if !batch.is_empty() {
                    let total: usize = batch.iter().map(|f| f.bytes.len()).sum();
                    let mut bytes = Vec::with_capacity(total);
                    for frame in &batch {
                        bytes.extend_from_slice(&frame.bytes);
                    }
                    wal.append_frames(&bytes, true)?;
                } else if need_sync {
                    wal.sync()?;
                }
                if let Some(prev) = rotate_to {
                    wal.rotate(prev)?;
                }
                Ok(())
            };
            step()
        };
        let mut st = lock(&self.state);
        st.rotating = false;
        match &io_result {
            Ok(()) => {
                st.written_lsn = staged;
                st.durable_lsn = staged;
                st.last_sync = Instant::now();
                if need_sync || !batch.is_empty() {
                    st.fsyncs += 1;
                }
            }
            Err(e) => {
                st.poisoned = Some(format!("checkpoint quiesce failed: {e}"));
            }
        }
        let stall = u64::try_from(stall_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        st.checkpoint_stall_us = st.checkpoint_stall_us.saturating_add(stall);
        self.cond.notify_all();
        io_result.map(|()| staged)
    }

    /// Highest LSN handed out (== applied in memory).
    pub(crate) fn staged_lsn(&self) -> u64 {
        lock(&self.state).staged_lsn
    }

    /// Highest LSN known fsynced.
    pub(crate) fn durable_lsn(&self) -> u64 {
        lock(&self.state).durable_lsn
    }

    /// The poison reason, if the pipeline has failed fatally.
    pub(crate) fn poison_reason(&self) -> Option<String> {
        lock(&self.state).poisoned.clone()
    }

    /// Snapshot of the commit counters.
    pub(crate) fn stats(&self) -> CommitStats {
        let st = lock(&self.state);
        CommitStats {
            batches: st.batches,
            frames: st.frames,
            fsyncs: st.fsyncs,
            max_batch_frames: st.max_batch_frames,
            checkpoint_stall_us: st.checkpoint_stall_us,
        }
    }

    /// Current log length in bytes (header included). Takes the WAL lock;
    /// may briefly wait out an in-flight batch write.
    pub(crate) fn wal_len(&self) -> u64 {
        lock(&self.wal).len()
    }

    /// Run `f` with the WAL locked (recovery-time truncation and the
    /// engine's suffix reads).
    pub(crate) fn with_wal<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        f(&mut lock(&self.wal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_wal(name: &str) -> Wal {
        let dir = std::env::temp_dir().join(format!("tix-commit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Wal::open(dir.join("wal.log")).unwrap().0
    }

    fn add(name: &str) -> WalRecord {
        WalRecord::AddDocument {
            name: name.into(),
            xml: "<a/>".into(),
        }
    }

    #[test]
    fn strict_commit_is_durable_immediately() {
        let p = CommitPipeline::new(tmp_wal("strict"), DurabilityMode::Strict, 0, 16);
        let t = p.stage(&add("a.xml")).unwrap();
        let ack = p.commit(t).unwrap();
        assert_eq!(ack.lsn, 1);
        assert_eq!(ack.durable_lsn, 1);
        assert_eq!(p.stats().fsyncs, 1);
    }

    #[test]
    fn flush_mode_defers_the_fsync() {
        let p = CommitPipeline::new(tmp_wal("flushmode"), DurabilityMode::Flush, 0, 16);
        let t = p.stage(&add("a.xml")).unwrap();
        let ack = p.commit(t).unwrap();
        assert_eq!(ack.lsn, 1);
        assert_eq!(ack.durable_lsn, 0, "no fsync yet");
        assert_eq!(p.stats().fsyncs, 0);
        assert_eq!(p.flush().unwrap(), 1);
        assert_eq!(p.stats().fsyncs, 1);
    }

    #[test]
    fn staged_frames_batch_into_one_write() {
        let p = CommitPipeline::new(tmp_wal("batching"), DurabilityMode::Strict, 0, 16);
        let t1 = p.stage(&add("a.xml")).unwrap();
        let t2 = p.stage(&add("b.xml")).unwrap();
        let t3 = p.stage(&add("c.xml")).unwrap();
        // The first commit leads and flushes all three staged frames.
        p.commit(t1).unwrap();
        let stats = p.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.max_batch_frames, 3);
        assert_eq!(stats.fsyncs_saved(), 2);
        // The other tickets are already satisfied.
        assert_eq!(p.commit(t2).unwrap().lsn, 2);
        assert_eq!(p.commit(t3).unwrap().lsn, 3);
        assert_eq!(p.stats().batches, 1, "no extra IO for satisfied waiters");
    }

    #[test]
    fn admission_bounds_the_pending_queue() {
        let p = CommitPipeline::new(tmp_wal("bounded"), DurabilityMode::Flush, 0, 2);
        p.check_admission().unwrap();
        let _t1 = p.stage(&add("a.xml")).unwrap();
        let _t2 = p.stage(&add("b.xml")).unwrap();
        let err = p.check_admission().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn failed_batch_poisons_the_pipeline() {
        let mut wal = tmp_wal("poison");
        wal.inject_write_fault(3);
        let p = CommitPipeline::new(wal, DurabilityMode::Strict, 0, 16);
        let t = p.stage(&add("a.xml")).unwrap();
        let err = p.commit(t).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(p.poison_reason().is_some());
        // Everything after the poison errors out instead of diverging.
        assert!(p.check_admission().is_err());
        assert!(p.stage(&add("b.xml")).is_err());
        assert!(p.flush().is_err());
    }

    #[test]
    fn prepare_checkpoint_flushes_and_rotates() {
        let dir = std::env::temp_dir().join(format!("tix-commit-{}-rot", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal = Wal::open(dir.join("wal.log")).unwrap().0;
        let prev: PathBuf = dir.join("wal.prev");
        let p = CommitPipeline::new(wal, DurabilityMode::Flush, 0, 16);
        let t = p.stage(&add("a.xml")).unwrap();
        p.commit(t).unwrap();
        let _t2 = p.stage(&add("b.xml")).unwrap(); // staged, never committed
        let lsn = p.prepare_checkpoint(Some(&prev)).unwrap();
        assert_eq!(lsn, 2, "checkpoint covers every staged frame");
        assert_eq!(p.durable_lsn(), 2);
        let prev_scan = crate::wal::scan_bytes(&std::fs::read(&prev).unwrap()).unwrap();
        assert_eq!(prev_scan.entries.len(), 2, "both frames in the rotated log");
        assert_eq!(p.wal_len(), crate::wal::WAL_HEADER_LEN);
    }

    #[test]
    fn durability_mode_parse_roundtrip() {
        assert_eq!(DurabilityMode::parse("strict"), Ok(DurabilityMode::Strict));
        assert_eq!(DurabilityMode::parse("flush"), Ok(DurabilityMode::Flush));
        assert_eq!(
            DurabilityMode::parse("batched:25"),
            Ok(DurabilityMode::Batched {
                max_delay: Duration::from_millis(25)
            })
        );
        assert!(matches!(
            DurabilityMode::parse("batched"),
            Ok(DurabilityMode::Batched { .. })
        ));
        assert!(DurabilityMode::parse("eventually").is_err());
        assert!(DurabilityMode::parse("batched:fast").is_err());
        assert_eq!(DurabilityMode::Strict.to_string(), "strict");
        assert_eq!(
            DurabilityMode::parse("batched:25").unwrap().to_string(),
            "batched:25"
        );
    }
}
