//! Differential property tests for the **concurrent** write path: N
//! writer threads staging under a shared write lock and committing
//! through group commit, across every durability mode, with a
//! checkpointer running concurrently and with crashes cut at arbitrary
//! WAL byte offsets.
//!
//! Two invariants must hold everywhere:
//!
//! 1. **index byte-identity** — the incrementally maintained index
//!    serializes byte-identically to a from-scratch rebuild of the same
//!    store, no matter how writers interleaved;
//! 2. **prefix durability** — recovery from a WAL cut at *any* byte
//!    yields exactly the committed prefix the scanner reports, in LSN
//!    order, never a torn or reordered state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

use proptest::prelude::*;
use tix::index::InvertedIndex;
use tix::Database;
use tix_ingest::{scan_bytes, DurabilityMode, Ingest, IngestOptions, WalRecord};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(label: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("tix-ingest-concurrent")
        .join(format!("{label}-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mode_of(selector: u8) -> DurabilityMode {
    match selector % 3 {
        0 => DurabilityMode::Strict,
        1 => DurabilityMode::Batched {
            max_delay: Duration::from_millis(2),
        },
        _ => DurabilityMode::Flush,
    }
}

fn thread_count(selector: u8) -> usize {
    [2usize, 4, 8][selector as usize % 3]
}

const WORDS: [&str; 4] = ["alpha beta", "gamma", "delta alpha", "epsilon"];

fn doc_xml(thread: usize, i: usize) -> String {
    format!("<d><p>{}</p></d>", WORDS[(thread + i * 3) % WORDS.len()])
}

fn index_bytes(index: &InvertedIndex) -> Vec<u8> {
    let mut bytes = Vec::new();
    index.save_snapshot(&mut bytes).unwrap();
    bytes
}

/// v2-snapshot bytes of the database's index, whichever representation it
/// holds: a recovered v3 pack must materialize to an index byte-identical
/// to a rebuild, which is exactly what these tests assert.
fn db_index_bytes(db: &Database) -> Vec<u8> {
    if let Some(mem) = db.mem_index() {
        index_bytes(mem)
    } else {
        let pack = db.pack_index().expect("index present");
        index_bytes(&pack.to_inverted().expect("sealed pack decodes"))
    }
}

fn doc_names(db: &Database) -> Vec<String> {
    (0..db.store().doc_count())
        .map(|i| {
            db.store()
                .doc(tix::store::DocId(u32::try_from(i).unwrap()))
                .name()
                .to_string()
        })
        .collect()
}

/// Run `threads × ops` concurrent inserts (unique names) through one
/// engine, staging under a shared `RwLock<Database>` write lock and
/// committing with no lock held. Returns the database and the highest
/// durable LSN any ack reported.
fn concurrent_inserts(ingest: &Ingest, db: &RwLock<Database>, threads: usize, ops: usize) -> u64 {
    let max_acked_durable = Mutex::new(0u64);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let max_acked_durable = &max_acked_durable;
            scope.spawn(move || {
                for i in 0..ops {
                    let name = format!("t{t}-{i}.xml");
                    let xml = doc_xml(t, i);
                    let staged = {
                        let mut db = db.write().unwrap();
                        ingest.stage_insert(&mut db, &name, &xml)
                    };
                    let (_, ticket) = staged.expect("stage");
                    let ack = ingest.commit(ticket).expect("commit");
                    let mut max = max_acked_durable.lock().unwrap();
                    *max = (*max).max(ack.durable_lsn);
                }
            });
        }
    });
    let max = *max_acked_durable.lock().unwrap();
    max
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Writers race each other AND a checkpointer (COW freeze + snapshot
    /// IO run mid-stream). Afterwards the maintained index must equal a
    /// rebuild byte-for-byte, a flush must make everything durable, and
    /// a reopen must land on the identical state.
    #[test]
    fn concurrent_writers_keep_index_byte_identical(
        mode_sel in 0u8..3,
        threads_sel in 0u8..3,
        ops in 1u8..6,
    ) {
        let dir = fresh_dir("mix");
        let threads = thread_count(threads_sel);
        let ops = ops as usize;
        let options = IngestOptions {
            durability: mode_of(mode_sel),
            ..IngestOptions::default()
        };
        let (ingest, db) = Ingest::open(&dir, options).unwrap();
        let db = RwLock::new(db);
        std::thread::scope(|scope| {
            let ingest = &ingest;
            let db = &db;
            scope.spawn(move || {
                concurrent_inserts(ingest, db, threads, ops);
            });
            // The checkpointer: begin (quiesce + freeze) under the write
            // lock, complete (snapshot IO) with the lock released while
            // writers keep going.
            scope.spawn(move || {
                for _ in 0..2 {
                    let prepared = {
                        let mut db = db.write().unwrap();
                        ingest.begin_checkpoint(&mut db).expect("begin")
                    };
                    ingest.complete_checkpoint(prepared).expect("complete");
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        });
        let durable = ingest.flush().unwrap();
        prop_assert_eq!(durable, ingest.last_lsn(), "flush must catch the log up");

        let dbr = db.read().unwrap();
        prop_assert_eq!(dbr.store().doc_count(), threads * ops);
        let maintained = db_index_bytes(&dbr);
        prop_assert_eq!(
            &maintained,
            &index_bytes(&InvertedIndex::build(dbr.store())),
            "maintained index diverged from rebuild"
        );
        let names = doc_names(&dbr);
        drop(dbr);
        drop(db);
        drop(ingest);

        let (_re, re_db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
        prop_assert_eq!(doc_names(&re_db), names, "reopen changed the store");
        prop_assert_eq!(
            db_index_bytes(&re_db),
            maintained,
            "reopen changed the index bytes"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cut the WAL a concurrent run produced at an arbitrary byte (the
    /// crash point) and recover: the database must come back as exactly
    /// the committed prefix the scanner reports — same names, same
    /// order — with a byte-identical index. At a full-length cut under
    /// `Strict`, every acknowledged-durable mutation must have survived.
    #[test]
    fn crash_at_any_cut_recovers_the_scanned_prefix(
        mode_sel in 0u8..3,
        threads_sel in 0u8..3,
        ops in 1u8..5,
        cut_frac in 0u8..=255,
    ) {
        let dir = fresh_dir("crash");
        let threads = thread_count(threads_sel);
        let ops = ops as usize;
        let options = IngestOptions {
            durability: mode_of(mode_sel),
            ..IngestOptions::default()
        };
        let (ingest, db) = Ingest::open(&dir, options).unwrap();
        let db = RwLock::new(db);
        let max_acked_durable = concurrent_inserts(&ingest, &db, threads, ops);

        // The crash: whatever bytes the log holds right now, cut at an
        // arbitrary offset. (No flush first — under Batched/Flush the
        // tail may be unsynced, and losing it is exactly what those
        // modes permit.)
        let bytes = std::fs::read(dir.join("wal.log")).unwrap();
        let cut = (bytes.len() * cut_frac as usize) / 255;
        let trial = fresh_dir("crash-trial");
        std::fs::create_dir_all(&trial).unwrap();
        std::fs::write(trial.join("wal.log"), &bytes[..cut]).unwrap();

        // What prefix durability promises for this cut.
        let expected: Vec<String> = scan_bytes(&bytes[..cut])
            .map(|scan| {
                scan.entries
                    .iter()
                    .map(|e| match &e.record {
                        WalRecord::AddDocument { name, .. } => name.clone(),
                        WalRecord::RemoveDocument { name } => name.clone(),
                    })
                    .collect()
            })
            .unwrap_or_default();

        let (re, re_db) = Ingest::open(&trial, IngestOptions::default()).unwrap();
        prop_assert_eq!(
            doc_names(&re_db),
            expected.clone(),
            "recovered docs are not the scanned prefix (cut {} of {})",
            cut,
            bytes.len()
        );
        prop_assert_eq!(re.last_lsn(), expected.len() as u64);
        prop_assert_eq!(
            db_index_bytes(&re_db),
            index_bytes(&InvertedIndex::build(re_db.store())),
            "recovered index diverged from rebuild"
        );

        if cut == bytes.len() && matches!(mode_of(mode_sel), DurabilityMode::Strict) {
            prop_assert!(
                re.last_lsn() >= max_acked_durable,
                "a Strict-acked mutation vanished: recovered {} < acked-durable {}",
                re.last_lsn(),
                max_acked_durable
            );
        }
    }
}
