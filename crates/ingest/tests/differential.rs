//! Differential property test for incremental index maintenance: after
//! ANY randomized interleaving of inserts, deletes, and checkpoints, the
//! maintained index must serialize byte-identically to a from-scratch
//! `InvertedIndex::build` over the same store — at worker-thread counts
//! 1, 2, and 8 — and a reopen (crash + replay) must land on the same
//! bytes again.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use tix::index::InvertedIndex;
use tix::Database;
use tix_ingest::{Ingest, IngestOptions};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("tix-ingest-diff")
        .join(format!("case-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const NAMES: [&str; 4] = ["a.xml", "b.xml", "c.xml", "d.xml"];
const DOCS: [&str; 4] = [
    "<d><s><p>alpha beta gamma</p></s></d>",
    "<d><p>beta beta delta</p><p>alpha</p></d>",
    "<d><s><p>gamma</p><p>epsilon alpha</p></s></d>",
    "<d><p>zeta</p></d>",
];

/// One step of the workload: kind selects insert / remove / checkpoint,
/// the indices pick a name and a document body.
type Op = (u8, u8, u8);

fn index_bytes(index: &InvertedIndex) -> Vec<u8> {
    let mut bytes = Vec::new();
    index.save_snapshot(&mut bytes).unwrap();
    bytes
}

fn rebuilt_bytes(db: &Database) -> Vec<u8> {
    index_bytes(&InvertedIndex::build(db.store()))
}

/// v2-snapshot bytes of the database's index, whichever representation it
/// holds: an index recovered from a v3 pack checkpoint must materialize
/// byte-identically to a rebuild.
fn db_index_bytes(db: &Database) -> Vec<u8> {
    if let Some(mem) = db.mem_index() {
        index_bytes(mem)
    } else {
        let pack = db.pack_index().expect("index present");
        index_bytes(&pack.to_inverted().expect("sealed pack decodes"))
    }
}

fn store_fingerprint(db: &Database) -> Vec<(String, usize)> {
    (0..db.store().doc_count())
        .map(|i| {
            let doc = db.store().doc(tix::store::DocId(i as u32));
            (doc.name().to_string(), doc.len())
        })
        .collect()
}

/// Run the op sequence through a live ingestion directory at the given
/// worker-thread count, asserting maintained == rebuilt after every step.
/// Returns (store fingerprint, final index bytes) for cross-thread and
/// cross-reopen comparison.
fn run_workload(ops: &[Op], threads: usize) -> (Vec<(String, usize)>, Vec<u8>) {
    let dir = fresh_dir();
    let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
    db.set_threads(threads);
    for (step, &(kind, name_i, doc_i)) in ops.iter().enumerate() {
        let name = NAMES[name_i as usize % NAMES.len()];
        match kind % 10 {
            0..=4 => {
                // Insert: a duplicate name is a typed error, state unchanged.
                let xml = DOCS[doc_i as usize % DOCS.len()];
                let _ = ingest.insert_document(&mut db, name, xml);
            }
            5..=8 => {
                // Remove: a missing name is a typed error, state unchanged.
                let _ = ingest.remove_document(&mut db, name);
            }
            _ => {
                ingest.checkpoint(&mut db).unwrap();
            }
        }
        assert_eq!(
            db_index_bytes(&db),
            rebuilt_bytes(&db),
            "threads={threads} step={step}: maintained index diverged from rebuild"
        );
    }
    let fingerprint = store_fingerprint(&db);
    let final_index = db_index_bytes(&db);
    drop((ingest, db));

    // Crash + recover: replaying the surviving WAL over the last
    // checkpoint must reproduce the exact same index bytes.
    let (_, reopened) = Ingest::open(&dir, IngestOptions::default()).unwrap();
    assert_eq!(
        store_fingerprint(&reopened),
        fingerprint,
        "threads={threads}: reopen store"
    );
    assert_eq!(
        db_index_bytes(&reopened),
        final_index,
        "threads={threads}: reopen index bytes"
    );
    (fingerprint, final_index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn maintained_index_matches_rebuild_at_any_thread_count(
        ops in prop::collection::vec((0u8..10, 0u8..4, 0u8..4), 1..14)
    ) {
        let baseline = run_workload(&ops, 1);
        for threads in [2usize, 8] {
            let got = run_workload(&ops, threads);
            prop_assert_eq!(&got, &baseline, "threads={} differs from single-thread", threads);
        }
    }
}
