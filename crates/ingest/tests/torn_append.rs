//! Regression for the torn-tail append bug, exercised at the engine
//! level with live fault injection (not post-hoc byte cutting): a WAL
//! append that fails mid-frame must roll the torn bytes back off the
//! file, the failed commit must poison the pipeline (memory is ahead of
//! the log), and a reopen must recover exactly the committed prefix.
//!
//! Before the fix, `Wal::append` left the partial frame on disk; the
//! *next* successful append then started mid-garbage and recovery
//! truncated away records that had been acknowledged as durable.

use std::fs;
use std::path::PathBuf;

use tix_ingest::{scan_bytes, Ingest, IngestOptions};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tix-ingest-torn-live").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn doc_names(db: &tix::Database) -> Vec<String> {
    (0..db.store().doc_count())
        .map(|i| {
            db.store()
                .doc(tix::store::DocId(u32::try_from(i).unwrap()))
                .name()
                .to_string()
        })
        .collect()
}

#[test]
fn mid_frame_write_failure_rolls_back_and_poisons() {
    let dir = test_dir("rollback");
    let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
    ingest
        .insert_document(&mut db, "a.xml", "<d><p>alpha beta</p></d>")
        .unwrap();
    let clean_len = ingest.wal_len();
    assert_eq!(ingest.durable_lsn(), 1);

    // The next frame dies after 7 bytes — mid-header, a torn tail.
    ingest.inject_wal_write_fault(7);
    let err = ingest
        .insert_document(&mut db, "b.xml", "<d><p>gamma</p></d>")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("injected"), "unexpected error: {msg}");

    // Rollback: not one torn byte remains on disk.
    let bytes = fs::read(dir.join("wal.log")).unwrap();
    assert_eq!(u64::try_from(bytes.len()).unwrap(), clean_len);
    let scan = scan_bytes(&bytes).unwrap();
    assert!(!scan.torn, "rolled-back log must scan clean");
    assert_eq!(scan.entries.len(), 1);

    // The mutation was applied in memory before the write failed, so the
    // engine is poisoned: every further mutation is refused rather than
    // silently diverging from the log.
    assert!(ingest.poison_reason().is_some());
    let again = ingest.insert_document(&mut db, "c.xml", "<d><p>x</p></d>");
    assert!(again.is_err(), "poisoned engine must refuse writes");

    // Crash + restart: exactly the committed prefix comes back, and the
    // recovered engine accepts writes again.
    drop((ingest, db));
    let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
    assert_eq!(doc_names(&db), vec!["a.xml".to_string()]);
    assert_eq!(ingest.last_lsn(), 1);
    ingest
        .insert_document(&mut db, "b.xml", "<d><p>gamma</p></d>")
        .unwrap();
    assert_eq!(ingest.last_lsn(), 2);
}

#[test]
fn failure_in_a_group_commit_batch_loses_the_whole_batch_cleanly() {
    let dir = test_dir("batch");
    let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
    ingest
        .insert_document(&mut db, "a.xml", "<d><p>alpha</p></d>")
        .unwrap();
    let clean_len = ingest.wal_len();

    // Stage two frames, then fail 60 bytes into the batch write — past
    // the start of the first frame, short of the end of the second. The
    // batch write is all-or-nothing, so both roll back together.
    let (_, t1) = ingest
        .stage_insert(&mut db, "b.xml", "<d><p>beta</p></d>")
        .unwrap();
    let (_, t2) = ingest
        .stage_insert(&mut db, "c.xml", "<d><p>gamma</p></d>")
        .unwrap();
    ingest.inject_wal_write_fault(60);
    assert!(ingest.commit(t1).is_err());
    assert!(ingest.commit(t2).is_err());

    let bytes = fs::read(dir.join("wal.log")).unwrap();
    assert_eq!(u64::try_from(bytes.len()).unwrap(), clean_len);
    assert!(!scan_bytes(&bytes).unwrap().torn);

    drop((ingest, db));
    let (_ingest, db) = Ingest::open(&dir, IngestOptions::default()).unwrap();
    assert_eq!(doc_names(&db), vec!["a.xml".to_string()]);
}
