//! Torn-append sweep over a real ingestion directory: a crash may cut the
//! WAL at *any* byte. For every possible cut point, recovery must come
//! back with exactly the committed prefix — never a panic, never a
//! half-applied record, never temp-file litter — and the recovered
//! database must keep accepting writes.

use std::fs;
use std::path::{Path, PathBuf};

use tix_ingest::{Ingest, IngestOptions, Wal, WAL_HEADER_LEN};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tix-ingest-torn").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn doc_names(db: &tix::Database) -> Vec<String> {
    (0..db.store().doc_count())
        .map(|i| {
            db.store()
                .doc(tix::store::DocId(i as u32))
                .name()
                .to_string()
        })
        .collect()
}

/// Copy the checkpoint artifacts (meta + snapshots) but write `wal` as the
/// log, simulating a crash that left exactly those WAL bytes on disk.
fn clone_dir_with_wal(base: &Path, trial: &Path, wal: &[u8]) {
    for entry in fs::read_dir(base).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name != "wal.log" {
            fs::copy(entry.path(), trial.join(&name)).unwrap();
        }
    }
    fs::write(trial.join("wal.log"), wal).unwrap();
}

fn temp_litter(dir: &Path) -> Vec<String> {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect()
}

#[test]
fn torn_append_sweep_recovers_committed_prefix_at_every_offset() {
    let base = test_dir("sweep-base");
    let base_lsn;
    {
        let (ingest, mut db) = Ingest::open(&base, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<d><p>alpha beta</p></d>")
            .unwrap();
        ingest
            .insert_document(&mut db, "b.xml", "<d><p>beta gamma</p></d>")
            .unwrap();
        ingest.checkpoint(&mut db).unwrap();
        base_lsn = ingest.last_lsn();
        // Two records live past the checkpoint: the sweep tears these.
        ingest
            .insert_document(&mut db, "c.xml", "<d><p>alpha delta</p></d>")
            .unwrap();
        ingest.remove_document(&mut db, "a.xml").unwrap();
    }
    let wal_bytes = fs::read(base.join("wal.log")).unwrap();
    assert!(wal_bytes.len() as u64 > WAL_HEADER_LEN);

    // Recover the frame boundaries by scanning a scratch copy of the log.
    let scratch = test_dir("sweep-scratch").join("wal.log");
    fs::write(&scratch, &wal_bytes).unwrap();
    let (_, scan) = Wal::open(&scratch).unwrap();
    assert_eq!(scan.entries.len(), 2);
    assert!(!scan.torn);
    let mut boundaries: Vec<u64> = scan.entries.iter().map(|e| e.offset).collect();
    boundaries.push(scan.valid_len);

    // Expected document sets, indexed by how many WAL records survive.
    let expected: [&[&str]; 3] = [
        &["a.xml", "b.xml"],          // checkpoint only
        &["a.xml", "b.xml", "c.xml"], // + add c
        &["b.xml", "c.xml"],          // + remove a (ids compacted)
    ];

    let trial = test_dir("sweep-trial");
    for cut in WAL_HEADER_LEN as usize..=wal_bytes.len() {
        clone_dir_with_wal(&base, &trial, &wal_bytes[..cut]);
        let (ingest, db) = Ingest::open(&trial, IngestOptions::default())
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        let surviving = boundaries
            .iter()
            .skip(1)
            .filter(|&&end| end <= cut as u64)
            .count();
        assert_eq!(
            doc_names(&db),
            expected[surviving],
            "cut at {cut}: wrong committed prefix"
        );
        assert_eq!(
            ingest.last_lsn(),
            base_lsn + surviving as u64,
            "cut at {cut}: wrong recovered LSN"
        );
        assert_eq!(
            temp_litter(&trial),
            Vec::<String>::new(),
            "cut at {cut}: temp litter left behind"
        );
        // Recovery truncated the torn tail on disk, so a second open sees
        // a clean log and the exact same state.
        let reopened_len = fs::metadata(trial.join("wal.log")).unwrap().len();
        assert!(reopened_len as usize <= cut, "cut at {cut}: log grew");
    }
}

#[test]
fn recovered_directory_keeps_accepting_writes() {
    let base = test_dir("resume-base");
    {
        let (ingest, mut db) = Ingest::open(&base, IngestOptions::default()).unwrap();
        ingest
            .insert_document(&mut db, "a.xml", "<d><p>alpha</p></d>")
            .unwrap();
        ingest
            .insert_document(&mut db, "b.xml", "<d><p>beta</p></d>")
            .unwrap();
    }
    // Tear the last record mid-frame, then recover and keep writing.
    let wal = fs::read(base.join("wal.log")).unwrap();
    fs::write(base.join("wal.log"), &wal[..wal.len() - 3]).unwrap();

    let (ingest, mut db) = Ingest::open(&base, IngestOptions::default()).unwrap();
    assert_eq!(doc_names(&db), ["a.xml"], "torn second insert dropped");
    ingest
        .insert_document(&mut db, "c.xml", "<d><p>gamma</p></d>")
        .unwrap();
    drop((ingest, db));

    let (_, db) = Ingest::open(&base, IngestOptions::default()).unwrap();
    assert_eq!(doc_names(&db), ["a.xml", "c.xml"]);
}
