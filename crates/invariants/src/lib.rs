//! Algorithmic invariant checks for the TIX engine.
//!
//! The TIX algebra's correctness rests on structural contracts the type
//! system cannot express: region encodings must nest laminarly (paper
//! §4.1), posting lists must stay sorted by `(doc, start)` (§4.2),
//! TermJoin's and Pick's stacks must hold exactly one ancestor chain at
//! all times (Fig. 11, Fig. 12), Threshold must only ever filter (§4.2),
//! and Pick's output must be an antichain under the ancestor/descendant
//! order (§4.3). This crate encodes each contract as a checkable
//! predicate and lets the rest of the workspace assert them at operator
//! boundaries without paying for the checks in optimized builds.
//!
//! # Usage
//!
//! Every predicate comes in two flavors:
//!
//! * `try_*` — returns `Result<(), InvariantError>`; always compiled.
//!   Loaders use these to turn structural corruption into typed errors
//!   (`SnapshotError::Corrupt`) on *untrusted* input, in every build.
//! * `assert_*` — panics with the violation's description. Operators call
//!   these on *trusted* internal state, wrapped in [`check!`] so the call
//!   only exists in debug builds or under `--features check-invariants`.
//!
//! ```
//! # struct Posting { doc: u32, node: u32, offset: u32 }
//! # let postings = [Posting { doc: 0, node: 1, offset: 0 }];
//! tix_invariants::check! {
//!     tix_invariants::assert_postings_sorted(postings.len(), |i| {
//!         let p = &postings[i];
//!         (p.doc, p.node, p.offset)
//!     });
//! }
//! ```
//!
//! The predicates take closures rather than concrete types so this crate
//! depends on nothing and every layer (store, index, exec, core) can call
//! it without dependency cycles.

/// True when invariant checks are compiled into **this** crate. Consumers
/// gate their call sites with [`check!`], whose `cfg` is evaluated in the
/// consuming crate; this constant exists so tests can assert that both
/// evaluate the same way for a given profile.
pub const ACTIVE: bool = cfg!(any(debug_assertions, feature = "check-invariants"));

/// Run a block only when invariant checking is compiled in (debug builds,
/// or any build with the `check-invariants` feature).
///
/// The `cfg` is expanded in the *calling* crate, so each caller must
/// declare its own `check-invariants` feature (forwarding to its
/// dependencies' features); all TIX workspace crates do.
#[macro_export]
macro_rules! check {
    ($($body:tt)*) => {
        #[cfg(any(debug_assertions, feature = "check-invariants"))]
        {
            $($body)*
        }
    };
}

/// A violated invariant: which contract, and what the offending state was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantError {
    /// The contract's name (e.g. `"postings-sorted"`).
    pub invariant: &'static str,
    /// Human-readable description of the violation site.
    pub detail: String,
}

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

impl std::error::Error for InvariantError {}

fn violation(invariant: &'static str, detail: String) -> Result<(), InvariantError> {
    Err(InvariantError { invariant, detail })
}

/// Sentinel parent value for a document root, mirroring the store's
/// `NO_PARENT`.
pub const NO_PARENT: u32 = u32::MAX;

/// One node's region-encoding record, as seen by
/// [`try_regions_well_formed`]. The node's preorder index is its region
/// start; `end` is the largest preorder index in its subtree.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Region end key (inclusive): last preorder index in the subtree.
    pub end: u32,
    /// Parent's preorder index, or [`NO_PARENT`] for the root.
    pub parent: u32,
    /// Depth; the root is level 0.
    pub level: u32,
}

/// Region well-formedness (§4.1): for a document of `len` nodes in
/// preorder, node `i`'s region is `[i, end(i)]` and the encoding must
/// satisfy, for every node:
///
/// * `i <= end(i) < len` — a region contains its own start and stays in
///   bounds;
/// * the root (and only node 0) has [`NO_PARENT`] and level 0;
/// * `parent(i) < i` — parents precede children in preorder;
/// * `level(i) == level(parent(i)) + 1`;
/// * `end(i) <= end(parent(i))` — regions nest **laminarly**: a child's
///   region never escapes its parent's.
pub fn try_regions_well_formed(
    len: u32,
    get: impl Fn(u32) -> Region,
) -> Result<(), InvariantError> {
    const NAME: &str = "regions-well-formed";
    for i in 0..len {
        let r = get(i);
        if r.end < i || r.end >= len {
            return violation(NAME, format!("node {i}: end {} out of [{i}, {len})", r.end));
        }
        if r.parent == NO_PARENT {
            if i != 0 {
                return violation(NAME, format!("node {i}: NO_PARENT on a non-root node"));
            }
            if r.level != 0 {
                return violation(NAME, format!("root has level {} (want 0)", r.level));
            }
            continue;
        }
        if i == 0 {
            return violation(NAME, format!("root node has parent {}", r.parent));
        }
        if r.parent >= i {
            return violation(NAME, format!("node {i}: parent {} not before it", r.parent));
        }
        let p = get(r.parent);
        if r.level != p.level.saturating_add(1) {
            return violation(
                NAME,
                format!(
                    "node {i}: level {} but parent {} has level {}",
                    r.level, r.parent, p.level
                ),
            );
        }
        if r.end > p.end {
            return violation(
                NAME,
                format!(
                    "node {i}: region [{i}, {}] escapes parent {}'s region [{}, {}]",
                    r.end, r.parent, r.parent, p.end
                ),
            );
        }
    }
    Ok(())
}

/// Panicking form of [`try_regions_well_formed`]; wrap calls in [`check!`].
pub fn assert_regions_well_formed(len: u32, get: impl Fn(u32) -> Region) {
    if let Err(e) = try_regions_well_formed(len, &get) {
        panic!("{e}");
    }
}

/// Posting-list sort order (§4.2): `(doc, node, offset)` must be strictly
/// increasing — document-ordered, no duplicates. `get(i)` returns the
/// `i`-th posting's key.
pub fn try_postings_sorted(
    len: usize,
    get: impl Fn(usize) -> (u32, u32, u32),
) -> Result<(), InvariantError> {
    for i in 1..len {
        let prev = get(i - 1);
        let cur = get(i);
        if prev >= cur {
            return violation(
                "postings-sorted",
                format!("posting {i}: {cur:?} not after {prev:?}"),
            );
        }
    }
    Ok(())
}

/// Panicking form of [`try_postings_sorted`]; wrap calls in [`check!`].
pub fn assert_postings_sorted(len: usize, get: impl Fn(usize) -> (u32, u32, u32)) {
    if let Err(e) = try_postings_sorted(len, &get) {
        panic!("{e}");
    }
}

/// Scored-stream order: `(doc, node)` strictly increasing — the
/// precondition of every stream-merging operator (Pick, Meet, union).
pub fn try_stream_sorted_unique(
    len: usize,
    get: impl Fn(usize) -> (u32, u32),
) -> Result<(), InvariantError> {
    for i in 1..len {
        let prev = get(i - 1);
        let cur = get(i);
        if prev >= cur {
            return violation(
                "stream-sorted-unique",
                format!("item {i}: {cur:?} not after {prev:?}"),
            );
        }
    }
    Ok(())
}

/// Panicking form of [`try_stream_sorted_unique`]; wrap calls in [`check!`].
pub fn assert_stream_sorted_unique(len: usize, get: impl Fn(usize) -> (u32, u32)) {
    if let Err(e) = try_stream_sorted_unique(len, &get) {
        panic!("{e}");
    }
}

/// Stack discipline (Fig. 11 TermJoin, Fig. 12 Pick): a merge stack must
/// always hold a single ancestor chain — each entry strictly contains the
/// entry above it. `covers(i, j)` reports whether stack slot `i`'s region
/// contains slot `j`'s (slot 0 is the bottom).
pub fn try_stack_ancestor_chain(
    depth: usize,
    covers: impl Fn(usize, usize) -> bool,
) -> Result<(), InvariantError> {
    for i in 1..depth {
        if !covers(i - 1, i) {
            return violation(
                "stack-ancestor-chain",
                format!("stack slot {} does not contain slot {i}", i - 1),
            );
        }
    }
    Ok(())
}

/// Panicking form of [`try_stack_ancestor_chain`]; wrap calls in [`check!`].
pub fn assert_stack_ancestor_chain(depth: usize, covers: impl Fn(usize, usize) -> bool) {
    if let Err(e) = try_stack_ancestor_chain(depth, &covers) {
        panic!("{e}");
    }
}

/// Pick-output antichain (§4.3): no result may be an ancestor of another.
/// `get(i)` returns `(doc, start, end)` region keys; the sequence must be
/// sorted by `(doc, start)` (which Pick's streaming output guarantees), so
/// containment reduces to "a later start falls inside an earlier
/// still-open region".
pub fn try_antichain(
    len: usize,
    get: impl Fn(usize) -> (u32, u32, u32),
) -> Result<(), InvariantError> {
    const NAME: &str = "pick-antichain";
    let mut cur_doc = 0u32;
    let mut max_end = 0u32;
    let mut prev_start = 0u32;
    for i in 0..len {
        let (doc, start, end) = get(i);
        if i > 0 && (doc, start) <= (cur_doc, prev_start) {
            return violation(
                NAME,
                format!("item {i}: ({doc}, {start}) not after ({cur_doc}, {prev_start})"),
            );
        }
        if i == 0 || doc != cur_doc {
            cur_doc = doc;
            max_end = end;
        } else {
            if start <= max_end {
                return violation(
                    NAME,
                    format!("item {i} (doc {doc}, [{start}, {end}]) is inside an earlier result"),
                );
            }
            max_end = max_end.max(end);
        }
        prev_start = start;
    }
    Ok(())
}

/// Panicking form of [`try_antichain`]; wrap calls in [`check!`].
pub fn assert_antichain(len: usize, get: impl Fn(usize) -> (u32, u32, u32)) {
    if let Err(e) = try_antichain(len, &get) {
        panic!("{e}");
    }
}

/// Threshold monotonicity (§4.2): a `MinScore` threshold only filters —
/// every retained score must exceed `min`.
pub fn try_scores_above(
    scores: impl IntoIterator<Item = f64>,
    min: f64,
) -> Result<(), InvariantError> {
    for (i, s) in scores.into_iter().enumerate() {
        // NaN is never "above" anything — it is a violation too.
        if s.is_nan() || s <= min {
            return violation(
                "threshold-min-score",
                format!("retained item {i} has score {s} <= threshold {min}"),
            );
        }
    }
    Ok(())
}

/// Panicking form of [`try_scores_above`]; wrap calls in [`check!`].
pub fn assert_scores_above(scores: impl IntoIterator<Item = f64>, min: f64) {
    if let Err(e) = try_scores_above(scores, min) {
        panic!("{e}");
    }
}

/// Top-k output order (§4.2): scores non-increasing, NaN-free.
pub fn try_scores_sorted_desc(scores: impl IntoIterator<Item = f64>) -> Result<(), InvariantError> {
    const NAME: &str = "topk-sorted-desc";
    let mut prev: Option<f64> = None;
    for (i, s) in scores.into_iter().enumerate() {
        if s.is_nan() {
            return violation(NAME, format!("item {i} has a NaN score"));
        }
        if let Some(p) = prev {
            if s > p {
                return violation(NAME, format!("item {i}: score {s} > predecessor {p}"));
            }
        }
        prev = Some(s);
    }
    Ok(())
}

/// Panicking form of [`try_scores_sorted_desc`]; wrap calls in [`check!`].
pub fn assert_scores_sorted_desc(scores: impl IntoIterator<Item = f64>) {
    if let Err(e) = try_scores_sorted_desc(scores) {
        panic!("{e}");
    }
}

/// Top-k pushdown early exit (§4.2): the scan may stop only when the
/// current k-th score **strictly** exceeds the upper bound on every
/// unscanned candidate's score — strict, so a tying candidate (which
/// could never displace a retained entry but would tie it) provably does
/// not exist either. NaN on either side is a violation: no ordering claim
/// can be made from it.
pub fn try_topk_early_exit_safe(
    kth_score: f64,
    remaining_bound: f64,
) -> Result<(), InvariantError> {
    const NAME: &str = "topk-early-exit";
    if kth_score.is_nan() || remaining_bound.is_nan() {
        return violation(
            NAME,
            format!("NaN in exit decision: kth {kth_score}, bound {remaining_bound}"),
        );
    }
    if kth_score > remaining_bound {
        Ok(())
    } else {
        violation(
            NAME,
            format!("exited with kth score {kth_score} <= remaining bound {remaining_bound}"),
        )
    }
}

/// Panicking form of [`try_topk_early_exit_safe`]; wrap calls in [`check!`].
pub fn assert_topk_early_exit_safe(kth_score: f64, remaining_bound: f64) {
    if let Err(e) = try_topk_early_exit_safe(kth_score, remaining_bound) {
        panic!("{e}");
    }
}

/// Block-max skip metadata soundness (v3 `TIXPAK` posting blocks): the
/// per-block summaries a WAND-style skipping scan trusts must (a) be in
/// ascending, non-overlapping document order — `first_doc ≤ last_doc`
/// within a block, and the previous block's `last_doc ≤` the next block's
/// `first_doc` (equality allowed: a document's postings may straddle a
/// block boundary) — with a positive posting count, and (b) carry a
/// `max_doc_count` that dominates the **whole-list** posting total of
/// every document intersecting the block (`max_doc_total(first, last)`
/// reports the actual maximum from the decoded postings). (b) is what
/// makes the suffix-maximum over unscanned blocks a sound componentwise
/// counter bound in the §4.2 early exit.
pub fn try_block_summaries_sound(
    len: usize,
    get: impl Fn(usize) -> (u32, u32, u32, u32),
    max_doc_total: impl Fn(u32, u32) -> u32,
) -> Result<(), InvariantError> {
    const NAME: &str = "block-summaries";
    let mut prev_last: Option<u32> = None;
    for i in 0..len {
        let (first, last, postings, max_doc_count) = get(i);
        if first > last {
            return violation(
                NAME,
                format!("block {i}: first_doc {first} > last_doc {last}"),
            );
        }
        if postings == 0 {
            return violation(NAME, format!("block {i}: empty block"));
        }
        if let Some(prev) = prev_last {
            if prev > first {
                return violation(
                    NAME,
                    format!("block {i}: first_doc {first} before previous last_doc {prev}"),
                );
            }
        }
        let actual = max_doc_total(first, last);
        if max_doc_count < actual {
            return violation(
                NAME,
                format!(
                    "block {i}: max_doc_count {max_doc_count} < actual document total {actual}"
                ),
            );
        }
        prev_last = Some(last);
    }
    Ok(())
}

/// Panicking form of [`try_block_summaries_sound`]; wrap calls in
/// [`check!`].
pub fn assert_block_summaries_sound(
    len: usize,
    get: impl Fn(usize) -> (u32, u32, u32, u32),
    max_doc_total: impl Fn(u32, u32) -> u32,
) {
    if let Err(e) = try_block_summaries_sound(len, &get, &max_doc_total) {
        panic!("{e}");
    }
}

/// Scatter-gather merge correctness (§4.2 bounds applied across shards):
/// a coordinator's global top-k over per-shard top-k streams is exact iff
/// the global k-th score is at least every truncated shard's **exclusive**
/// upper bound on its unreturned scores. Each bound in `shard_bounds` is
/// `Some(b)` when that shard truncated its response and proved every
/// unreturned score `< b` (shards return their k-th-score ties, so the
/// bound excludes equality); `None` when the shard returned everything it
/// had. Unlike [`try_topk_early_exit_safe`], equality is safe here:
/// `global_kth == b` still implies every hidden score `< b <= global_kth`
/// cannot displace or tie a retained entry. NaN anywhere is a violation.
pub fn try_scatter_merge_bound(
    global_kth: f64,
    shard_bounds: impl IntoIterator<Item = Option<f64>>,
) -> Result<(), InvariantError> {
    const NAME: &str = "scatter-merge-bound";
    if global_kth.is_nan() {
        return violation(NAME, "global k-th score is NaN".to_string());
    }
    for (shard, bound) in shard_bounds.into_iter().enumerate() {
        let Some(b) = bound else { continue };
        if b.is_nan() {
            return violation(NAME, format!("shard {shard} reported a NaN bound"));
        }
        if global_kth < b {
            return violation(
                NAME,
                format!(
                    "global k-th score {global_kth} < shard {shard} unreturned-score \
                     bound {b}: a hidden result could belong in the top k"
                ),
            );
        }
    }
    Ok(())
}

/// Panicking form of [`try_scatter_merge_bound`]; wrap calls in [`check!`].
pub fn assert_scatter_merge_bound(
    global_kth: f64,
    shard_bounds: impl IntoIterator<Item = Option<f64>>,
) {
    if let Err(e) = try_scatter_merge_bound(global_kth, shard_bounds) {
        panic!("{e}");
    }
}

/// Pick vertical exclusivity (Sec. 3.3.2 / Fig. 12): no picked node may
/// have a picked **direct parent** — the parent/child redundancy-
/// elimination rule. Picking a node together with a deeper descendant is
/// legitimate when the intermediate node is unpicked: in the paper's Fig. 8
/// both the chapter and a section-title beneath an unpicked section are
/// returned. `picked(i)` and `parent(i)` describe the candidate forest in
/// any indexing scheme the caller likes.
pub fn try_picked_exclusive(
    len: usize,
    picked: impl Fn(usize) -> bool,
    parent: impl Fn(usize) -> Option<usize>,
) -> Result<(), InvariantError> {
    for i in 0..len {
        if !picked(i) {
            continue;
        }
        if let Some(p) = parent(i) {
            if picked(p) {
                return violation(
                    "pick-vertical-exclusive",
                    format!("picked node {i} has picked parent {p}"),
                );
            }
        }
    }
    Ok(())
}

/// Panicking form of [`try_picked_exclusive`]; wrap calls in [`check!`].
pub fn assert_picked_exclusive(
    len: usize,
    picked: impl Fn(usize) -> bool,
    parent: impl Fn(usize) -> Option<usize>,
) {
    if let Err(e) = try_picked_exclusive(len, &picked, &parent) {
        panic!("{e}");
    }
}

/// Horizontal (sibling) redundancy elimination (Sec. 3.3.2): among the
/// items a horizontal Pick keeps, no two distinct items may be same-class
/// siblings — the paper's "returning only the first author of the relevant
/// article" rule leaves at most one representative per (parent, class)
/// group. `kept(i)` says whether item `i` survived; `same_class_siblings`
/// says whether two items share both a parent and a class.
pub fn try_horizontal_dedup(
    len: usize,
    kept: impl Fn(usize) -> bool,
    same_class_siblings: impl Fn(usize, usize) -> bool,
) -> Result<(), InvariantError> {
    for i in 0..len {
        if !kept(i) {
            continue;
        }
        for j in (i + 1)..len {
            if kept(j) && same_class_siblings(i, j) {
                return violation(
                    "pick-horizontal-dedup",
                    format!("kept items {i} and {j} are same-class siblings"),
                );
            }
        }
    }
    Ok(())
}

/// Panicking form of [`try_horizontal_dedup`]; wrap calls in [`check!`].
pub fn assert_horizontal_dedup(
    len: usize,
    kept: impl Fn(usize) -> bool,
    same_class_siblings: impl Fn(usize, usize) -> bool,
) {
    if let Err(e) = try_horizontal_dedup(len, &kept, &same_class_siblings) {
        panic!("{e}");
    }
}

/// Serving-cache coherence (the serving layer's contract): a cached query
/// result may only be served when it was computed at the store/index
/// generation that is current at serve time. `tix-server` keys its result
/// cache on `Database::generation`, so a lookup can only ever surface an
/// entry whose recorded generation matches — this check asserts that the
/// keying actually enforces the contract at the cache-lookup boundary.
pub fn try_cache_coherent(
    entry_generation: u64,
    current_generation: u64,
) -> Result<(), InvariantError> {
    if entry_generation != current_generation {
        return violation(
            "cache-coherent",
            format!(
                "cached result from generation {entry_generation} served at generation {current_generation}"
            ),
        );
    }
    Ok(())
}

/// Panicking form of [`try_cache_coherent`]; wrap calls in [`check!`].
pub fn assert_cache_coherent(entry_generation: u64, current_generation: u64) {
    if let Err(e) = try_cache_coherent(entry_generation, current_generation) {
        panic!("{e}");
    }
}

// ---- group commit -----------------------------------------------------------

/// Group-commit watermark coherence (the write path's contract): the
/// three LSN watermarks of the commit pipeline must always satisfy
/// `durable <= written <= staged` — a frame can only be fsynced once
/// written, and only written once staged. A violation means an
/// acknowledgement could name an LSN the log does not actually hold at
/// that durability level, which is exactly the lie prefix durability
/// forbids.
pub fn try_commit_watermarks(
    durable: u64,
    written: u64,
    staged: u64,
) -> Result<(), InvariantError> {
    if durable > written || written > staged {
        return violation(
            "commit-watermarks",
            format!(
                "watermarks out of order: durable {durable} <= written {written} <= staged {staged} must hold"
            ),
        );
    }
    Ok(())
}

/// Panicking form of [`try_commit_watermarks`]; wrap calls in [`check!`].
pub fn assert_commit_watermarks(durable: u64, written: u64, staged: u64) {
    if let Err(e) = try_commit_watermarks(durable, written, staged) {
        panic!("{e}");
    }
}

// ---- snapshot sealing -------------------------------------------------------

/// Lookup table for CRC-32 (IEEE 802.3, reflected, polynomial
/// `0xEDB88320`) — the checksum sealing every v2 snapshot section and
/// file. Hand-rolled so the persistence layer stays dependency-free.
const CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// Incremental CRC-32 (IEEE) digest. Feed bytes with [`Crc32::update`];
/// [`Crc32::finish`] yields the checksum without consuming the state, so
/// a running file digest can be inspected mid-stream.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            let idx = ((c ^ u32::from(b)) & 0xFF) as usize;
            c = CRC32_TABLE[idx] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut digest = Crc32::new();
    digest.update(bytes);
    digest.finish()
}

/// Snapshot seal (the persistence layer's durability contract): `bytes`
/// must be a complete image of a **sealed** snapshot file — it starts with
/// `magic`, carries a checksummed format version (`>= 2`; v1 predates
/// sealing), and its trailing four bytes are the little-endian CRC-32 of
/// everything before them. Writers assert this on the exact bytes they are
/// about to publish; loaders check it before trusting any length field in
/// the body.
pub fn try_snapshot_sealed(magic: &[u8], bytes: &[u8]) -> Result<(), InvariantError> {
    const NAME: &str = "snapshot-sealed";
    let min = magic.len() + 1 + 4;
    if bytes.len() < min {
        return violation(
            NAME,
            format!("{} bytes cannot hold magic, version, and seal", bytes.len()),
        );
    }
    if !bytes.starts_with(magic) {
        return violation(NAME, "magic bytes do not match".to_string());
    }
    let version = bytes.get(magic.len()).copied().unwrap_or(0);
    if version < 2 {
        return violation(NAME, format!("format version {version} predates sealing"));
    }
    let body_len = bytes.len() - 4;
    let mut tail = [0u8; 4];
    tail.copy_from_slice(&bytes[body_len..]);
    let stored = u32::from_le_bytes(tail);
    let actual = crc32(&bytes[..body_len]);
    if stored != actual {
        return violation(
            NAME,
            format!("trailing checksum {stored:#010x} != computed {actual:#010x}"),
        );
    }
    Ok(())
}

/// Panicking form of [`try_snapshot_sealed`]; wrap calls in [`check!`].
pub fn assert_snapshot_sealed(magic: &[u8], bytes: &[u8]) {
    if let Err(e) = try_snapshot_sealed(magic, bytes) {
        panic!("{e}");
    }
}

/// Chunk-partition correctness (the parallel layer's contract): ranges
/// must tile `0..len` contiguously, in order, with no empty range (unless
/// `len == 0`, when there must be no ranges at all).
pub fn try_partition(len: usize, ranges: &[std::ops::Range<usize>]) -> Result<(), InvariantError> {
    const NAME: &str = "chunk-partition";
    if len == 0 {
        return if ranges.is_empty() {
            Ok(())
        } else {
            violation(
                NAME,
                format!("{} ranges cover an empty domain", ranges.len()),
            )
        };
    }
    let mut expected = 0usize;
    for (i, r) in ranges.iter().enumerate() {
        if r.start != expected {
            return violation(
                NAME,
                format!("range {i} starts at {} (want {expected})", r.start),
            );
        }
        if r.end <= r.start {
            return violation(NAME, format!("range {i} ({r:?}) is empty or reversed"));
        }
        expected = r.end;
    }
    if expected != len {
        return violation(NAME, format!("ranges cover 0..{expected}, want 0..{len}"));
    }
    Ok(())
}

/// Panicking form of [`try_partition`]; wrap calls in [`check!`].
pub fn assert_partition(len: usize, ranges: &[std::ops::Range<usize>]) {
    if let Err(e) = try_partition(len, ranges) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(v: &[(u32, u32, u32)]) -> impl Fn(u32) -> Region + '_ {
        |i| {
            let (end, parent, level) = v[i as usize];
            Region { end, parent, level }
        }
    }

    #[test]
    fn block_summaries_sound_and_violations_caught() {
        // Two blocks over docs 0..=3 and 3..=7 (doc 3 straddles).
        let blocks = [(0u32, 3u32, 128u32, 9u32), (3, 7, 64, 9)];
        let get = |i: usize| blocks[i];
        assert!(try_block_summaries_sound(2, get, |_, _| 9).is_ok());
        assert!(try_block_summaries_sound(0, get, |_, _| 0).is_ok());
        // max_doc_count below the actual document total.
        assert!(try_block_summaries_sound(2, get, |_, _| 10).is_err());
        // first_doc > last_doc.
        assert!(try_block_summaries_sound(1, |_| (4, 3, 1, 1), |_, _| 0).is_err());
        // Empty block.
        assert!(try_block_summaries_sound(1, |_| (0, 0, 0, 1), |_, _| 0).is_err());
        // Out-of-order blocks: second starts before the first ends.
        let unordered = [(0u32, 5u32, 8u32, 3u32), (4, 9, 8, 3)];
        assert!(try_block_summaries_sound(2, |i| unordered[i], |_, _| 1).is_err());
    }

    #[test]
    fn well_formed_regions_pass() {
        // <a><b><c/></b><d/></a>: a=[0,3] b=[1,2] c=[2,2] d=[3,3]
        let v = [(3, NO_PARENT, 0), (2, 0, 1), (2, 1, 2), (3, 0, 1)];
        assert!(try_regions_well_formed(4, regions(&v)).is_ok());
        assert!(try_regions_well_formed(0, regions(&[])).is_ok());
    }

    #[test]
    fn region_violations_caught() {
        // end before start
        let v = [(0, NO_PARENT, 0), (0, 0, 1)];
        let bad = [(1, NO_PARENT, 0), (0, 0, 1)];
        assert!(try_regions_well_formed(2, regions(&v)).is_err()); // root end 0 < node 1
        assert!(try_regions_well_formed(2, regions(&bad)).is_err()); // child end 0 < 1
                                                                     // child escapes parent
        let escape = [(2, NO_PARENT, 0), (2, 0, 1), (2, 1, 2), (3, 0, 1)];
        assert!(try_regions_well_formed(3, regions(&escape)).is_ok());
        let esc2 = [(1, NO_PARENT, 0), (2, 0, 1), (2, 1, 2)];
        let err = try_regions_well_formed(3, regions(&esc2)).unwrap_err();
        assert_eq!(err.invariant, "regions-well-formed");
        // wrong level
        let lvl = [(1, NO_PARENT, 0), (1, 0, 2)];
        assert!(try_regions_well_formed(2, regions(&lvl)).is_err());
        // non-root without parent
        let orphan = [(1, NO_PARENT, 0), (1, NO_PARENT, 0)];
        assert!(try_regions_well_formed(2, regions(&orphan)).is_err());
    }

    #[test]
    fn postings_order() {
        let good = [(0, 1, 0), (0, 1, 1), (1, 0, 0)];
        assert!(try_postings_sorted(good.len(), |i| good[i]).is_ok());
        let dup = [(0, 1, 0), (0, 1, 0)];
        assert!(try_postings_sorted(dup.len(), |i| dup[i]).is_err());
        let back = [(1, 0, 0), (0, 1, 1)];
        let err = try_postings_sorted(back.len(), |i| back[i]).unwrap_err();
        assert_eq!(err.invariant, "postings-sorted");
    }

    #[test]
    fn stream_order() {
        let good = [(0, 1), (0, 5), (2, 0)];
        assert!(try_stream_sorted_unique(good.len(), |i| good[i]).is_ok());
        let dup = [(0, 5), (0, 5)];
        assert!(try_stream_sorted_unique(dup.len(), |i| dup[i]).is_err());
    }

    #[test]
    fn stack_chain() {
        // Entries as regions; entry i must contain entry i+1.
        let chain = [(0u32, 10u32), (1, 8), (2, 5)];
        let covers = |a: usize, b: usize| chain[a].0 < chain[b].0 && chain[b].1 <= chain[a].1;
        assert!(try_stack_ancestor_chain(3, covers).is_ok());
        let broken = [(0u32, 10u32), (1, 3), (4, 8)];
        let covers = |a: usize, b: usize| broken[a].0 < broken[b].0 && broken[b].1 <= broken[a].1;
        assert!(try_stack_ancestor_chain(3, covers).is_err());
    }

    #[test]
    fn antichain() {
        let good = [(0, 1, 3), (0, 4, 9), (1, 0, 5)];
        assert!(try_antichain(good.len(), |i| good[i]).is_ok());
        // Second item nested in the first.
        let nested = [(0, 1, 9), (0, 4, 5)];
        let err = try_antichain(nested.len(), |i| nested[i]).unwrap_err();
        assert_eq!(err.invariant, "pick-antichain");
        // Same node twice (unsorted/duplicate input is also rejected).
        let dup = [(0, 4, 5), (0, 4, 5)];
        assert!(try_antichain(dup.len(), |i| dup[i]).is_err());
        // Nesting across documents is fine (regions are per-document).
        let cross = [(0, 1, 9), (1, 4, 5)];
        assert!(try_antichain(cross.len(), |i| cross[i]).is_ok());
    }

    #[test]
    fn threshold_scores() {
        assert!(try_scores_above([1.0, 0.6], 0.5).is_ok());
        assert!(try_scores_above([1.0, 0.5], 0.5).is_err());
        assert!(try_scores_above([f64::NAN], 0.5).is_err());
        assert!(try_scores_above([], 0.5).is_ok());
    }

    #[test]
    fn topk_early_exit() {
        assert!(try_topk_early_exit_safe(2.0, 1.0).is_ok());
        // Equality is NOT safe: a tying candidate may exist.
        assert!(try_topk_early_exit_safe(1.0, 1.0).is_err());
        assert!(try_topk_early_exit_safe(0.5, 1.0).is_err());
        assert!(try_topk_early_exit_safe(f64::NAN, 0.0).is_err());
        assert!(try_topk_early_exit_safe(1.0, f64::NAN).is_err());
        // An infinite bound (scorer without a bound) never admits an exit.
        assert!(try_topk_early_exit_safe(1e300, f64::INFINITY).is_err());
    }

    #[test]
    fn scatter_merge_bound_allows_equality_and_untruncated_shards() {
        assert!(try_scatter_merge_bound(2.0, [Some(1.0), None, Some(2.0)]).is_ok());
        assert!(try_scatter_merge_bound(2.0, [None, None]).is_ok());
        assert!(try_scatter_merge_bound(2.0, []).is_ok());
        assert!(try_scatter_merge_bound(1.0, [Some(1.5)]).is_err());
        assert!(try_scatter_merge_bound(f64::NAN, [Some(0.0)]).is_err());
        assert!(try_scatter_merge_bound(1.0, [Some(f64::NAN)]).is_err());
    }

    #[test]
    fn topk_order() {
        assert!(try_scores_sorted_desc([3.0, 2.0, 2.0, 0.5]).is_ok());
        assert!(try_scores_sorted_desc([1.0, 2.0]).is_err());
        assert!(try_scores_sorted_desc([1.0, f64::NAN]).is_err());
    }

    #[test]
    fn pick_exclusivity() {
        // 0 -> 1 -> 2 chain (parent(i) = i - 1).
        let parent = |i: usize| if i == 0 { None } else { Some(i - 1) };
        assert!(try_picked_exclusive(3, |i| i == 2, parent).is_ok());
        // Grandparent + grandchild is fine when the middle node is unpicked
        // (paper Fig. 8: a chapter plus a title under an unpicked section).
        assert!(try_picked_exclusive(3, |i| i == 0 || i == 2, parent).is_ok());
        let err = try_picked_exclusive(3, |i| i == 1 || i == 2, parent).unwrap_err();
        assert_eq!(err.invariant, "pick-vertical-exclusive");
    }

    #[test]
    fn horizontal_dedup() {
        // Items 0..3 under one parent; 0 and 2 share a class, 1 differs.
        let same = |i: usize, j: usize| (i, j) == (0, 2) || (i, j) == (2, 0);
        assert!(try_horizontal_dedup(3, |i| i == 0 || i == 1, same).is_ok());
        let err = try_horizontal_dedup(3, |_| true, same).unwrap_err();
        assert_eq!(err.invariant, "pick-horizontal-dedup");
        // Dropping one member of the clashing pair restores the invariant.
        assert!(try_horizontal_dedup(3, |i| i != 2, same).is_ok());
    }

    #[test]
    fn cache_coherence() {
        assert!(try_cache_coherent(3, 3).is_ok());
        let err = try_cache_coherent(2, 3).unwrap_err();
        assert_eq!(err.invariant, "cache-coherent");
        assert!(err.to_string().contains("generation 2"), "{err}");
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental and one-shot digests agree on split input.
        let mut d = Crc32::new();
        d.update(b"1234");
        d.update(b"56789");
        assert_eq!(d.finish(), 0xCBF4_3926);
    }

    #[test]
    fn snapshot_seal_accepts_well_sealed_bytes() {
        let magic = b"TESTMAG";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(magic);
        bytes.push(2); // version
        bytes.extend_from_slice(b"payload");
        let seal = crc32(&bytes);
        bytes.extend_from_slice(&seal.to_le_bytes());
        assert!(try_snapshot_sealed(magic, &bytes).is_ok());
    }

    #[test]
    fn snapshot_seal_violations_caught() {
        let magic = b"TESTMAG";
        let build = |version: u8| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(magic);
            bytes.push(version);
            bytes.extend_from_slice(b"payload");
            let seal = crc32(&bytes);
            bytes.extend_from_slice(&seal.to_le_bytes());
            bytes
        };
        // Too short.
        let err = try_snapshot_sealed(magic, b"TE").unwrap_err();
        assert_eq!(err.invariant, "snapshot-sealed");
        // Wrong magic.
        let mut bad = build(2);
        bad[0] ^= 0xFF;
        // (recompute nothing: magic is checked before the seal)
        assert!(try_snapshot_sealed(magic, &bad).is_err());
        // Unsealed (v1) format.
        assert!(try_snapshot_sealed(magic, &build(1)).is_err());
        // Any single bit flip in body or seal breaks the seal.
        let good = build(2);
        for i in magic.len() + 1..good.len() {
            for bit in 0..8 {
                let mut flipped = good.clone();
                flipped[i] ^= 1 << bit;
                assert!(
                    try_snapshot_sealed(magic, &flipped).is_err(),
                    "flip at byte {i} bit {bit} kept the seal intact"
                );
            }
        }
    }

    #[test]
    fn partitions() {
        assert!(try_partition(10, &[0..4, 4..7, 7..10]).is_ok());
        assert!(try_partition(0, &[]).is_ok());
        assert!(try_partition(10, &[0..4, 5..10]).is_err()); // gap
        assert!(try_partition(10, &[0..4, 4..4, 4..10]).is_err()); // empty
        assert!(try_partition(10, &[0..4, 4..9]).is_err()); // short
        assert!(try_partition(0, std::slice::from_ref(&(0..0))).is_err());
    }

    #[test]
    // The initializer is dead exactly when the check! body runs — that
    // asymmetry is the behavior under test.
    #[allow(unused_assignments)]
    fn check_macro_gates_on_cfg() {
        let mut ran = false;
        check! {
            ran = true;
        }
        // In this crate the macro's cfg and ACTIVE agree by construction;
        // debug test builds run the body, release builds without the
        // feature skip it entirely.
        assert_eq!(ran, ACTIVE);
        let _ = &mut ran;
    }

    #[test]
    fn assert_forms_panic_with_context() {
        let result = std::panic::catch_unwind(|| {
            assert_postings_sorted(2, |_| (0, 0, 0));
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("postings-sorted"), "{msg}");
    }

    #[test]
    fn error_display() {
        let e = InvariantError {
            invariant: "postings-sorted",
            detail: "posting 3 out of order".into(),
        };
        assert_eq!(
            e.to_string(),
            "invariant `postings-sorted` violated: posting 3 out of order"
        );
    }
}
