//! Criterion bench for the Sec. 6 Pick experiment: stack-based
//! parent/child redundancy elimination over scored inputs of increasing
//! size (the paper reports 0.01–1.03 s over 200–55,000 nodes on its 2003
//! testbed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tix_bench::Fixture;

fn bench_pick(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("pick_redundancy_elimination");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[200usize, 1_000, 5_000, 20_000, 55_000] {
        let input = fixture.pick_input(n);
        if input.len() < n {
            continue;
        }
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |bench, input| {
            bench.iter(|| black_box(fixture.run_pick(input)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pick);
criterion_main!(benches);
