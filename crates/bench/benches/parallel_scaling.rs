//! Criterion bench for the document-partitioned parallel access methods:
//! TermJoin, PhraseFinder, and Pick at 1/2/4/8 worker threads, plus the
//! parallel index build. The `scaling` binary produces the same axis with
//! the paper's five-run methodology and writes `results/BENCH_scaling.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tix_bench::{Fixture, Method};
use tix_corpus::workloads;
use tix_exec::termjoin::SimpleScorer;
use tix_index::InvertedIndex;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_scaling(c: &mut Criterion) {
    let fixture = Fixture::small();
    let scorer = SimpleScorer::new(vec![0.8, 0.6]);
    let (a, b) = (workloads::pair_term(1000, 0), workloads::pair_term(1000, 1));
    let terms = [a.as_str(), b.as_str()];
    let (pa, pb) = workloads::table5_terms(0);
    let phrase = [pa.as_str(), pb.as_str()];
    let pick_input = fixture.pick_input(10_000);

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("index_build", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| black_box(InvertedIndex::build_with_threads(&fixture.store, threads)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("term_join", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    black_box(fixture.run_method_parallel(
                        Method::TermJoin,
                        &terms,
                        &scorer,
                        threads,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("phrase_finder", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| black_box(fixture.run_phrase_parallel(&phrase, threads)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pick", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| black_box(fixture.run_pick_parallel(&pick_input, threads)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
