//! Criterion bench for Table 5: PhraseFinder vs the Comp3 composite on
//! representative phrase rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tix_bench::Fixture;
use tix_corpus::workloads;
use tix_exec::phrase::{comp3, phrase_finder};

fn bench_table5(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("table5_phrase");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // Rows 1 (large result), 8 (small result), 11 (high-frequency terms).
    for &row in &[0usize, 7, 10] {
        let (a, b) = workloads::table5_terms(row);
        let terms = [a.as_str(), b.as_str()];
        group.bench_with_input(
            BenchmarkId::new("PhraseFinder", row + 1),
            &terms,
            |bench, terms| {
                bench.iter(|| black_box(phrase_finder(&fixture.store, &fixture.index, terms).len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("Comp3", row + 1),
            &terms,
            |bench, terms| {
                bench.iter(|| black_box(comp3(&fixture.store, &fixture.index, terms).len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
