//! Criterion bench for Table 3: term 1 fixed at 1,000 occurrences, term 2
//! varying, complex scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tix_bench::{Fixture, Method};
use tix_corpus::workloads;
use tix_exec::termjoin::{ChildCountMode, ComplexScorer};

fn bench_table3(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("table3_fixed_term1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &freq in &[20usize, 1000, 7000] {
        let t2 = workloads::table3_term2(freq);
        let terms = [workloads::TABLE3_TERM1, t2.as_str()];
        for method in [
            Method::Comp1,
            Method::Comp2,
            Method::GeneralizedMeet,
            Method::TermJoin,
            Method::EnhancedTermJoin,
        ] {
            let mode = if method == Method::EnhancedTermJoin {
                ChildCountMode::Index
            } else {
                ChildCountMode::Navigate
            };
            let scorer = ComplexScorer::new(vec![0.8, 0.6], mode);
            group.bench_with_input(
                BenchmarkId::new(method.label(), freq),
                &terms,
                |bench, terms| bench.iter(|| black_box(fixture.run_method(method, terms, &scorer))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
