//! Criterion bench for Table 4: increasing query size (2 → 7 terms of
//! frequency ≈ 1,500), complex scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tix_bench::{Fixture, Method};
use tix_corpus::workloads;
use tix_exec::termjoin::{ChildCountMode, ComplexScorer};

fn bench_table4(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("table4_query_size");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let all_terms: Vec<String> = (0..7).map(workloads::table4_term).collect();
    for &n in &[2usize, 4, 7] {
        let terms: Vec<&str> = all_terms[..n].iter().map(String::as_str).collect();
        for method in [
            Method::Comp1,
            Method::Comp2,
            Method::GeneralizedMeet,
            Method::TermJoin,
            Method::EnhancedTermJoin,
        ] {
            let mode = if method == Method::EnhancedTermJoin {
                ChildCountMode::Index
            } else {
                ChildCountMode::Navigate
            };
            let scorer = ComplexScorer::new(vec![0.8, 0.6], mode);
            group.bench_with_input(
                BenchmarkId::new(method.label(), n),
                &terms,
                |bench, terms| bench.iter(|| black_box(fixture.run_method(method, terms, &scorer))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
