//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * what the complex-scoring detail buffers cost TermJoin (the paper's
//!   `if (!s)` branches in Fig. 11);
//! * what the child-count index buys over store navigation in isolation;
//! * the stack-based structural join against a nested-loop reference;
//! * histogram construction for quantile-derived Pick thresholds
//!   (Sec. 5.3 auxiliary data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tix_bench::Fixture;
use tix_corpus::workloads;
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::structural::{nested_loop_join_count, structural_join_count};
use tix_exec::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin};
use tix_store::DocId;

fn bench_detail_buffers(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("ablation_detail_buffers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    let (a, b) = (workloads::pair_term(3000, 0), workloads::pair_term(3000, 1));
    let terms = [a.as_str(), b.as_str()];
    let simple = SimpleScorer::new(vec![0.8, 0.6]);
    group.bench_function("simple_no_buffers", |bench| {
        bench.iter(|| {
            black_box(
                TermJoin::new(&fixture.store, &fixture.index, &terms, &simple)
                    .run()
                    .len(),
            )
        })
    });
    let complex = ComplexScorer::new(vec![0.8, 0.6], ChildCountMode::Index);
    group.bench_function("complex_with_buffers", |bench| {
        bench.iter(|| {
            black_box(
                TermJoin::new(&fixture.store, &fixture.index, &terms, &complex)
                    .run()
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_child_count_access(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("ablation_child_count");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    // Count children of every element of one document both ways.
    let nodes: Vec<_> = fixture.store.elements_of(DocId(0)).collect();
    group.bench_function("index_lookup", |bench| {
        bench.iter(|| {
            let total: u32 = nodes.iter().map(|&n| fixture.store.child_count(n)).sum();
            black_box(total)
        })
    });
    group.bench_function("navigation", |bench| {
        bench.iter(|| {
            let total: u32 = nodes
                .iter()
                .map(|&n| fixture.store.count_children_by_navigation(n))
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_structural_join(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("ablation_structural_join");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    let term = workloads::pair_term(1000, 0);
    let descendants: Vec<_> = fixture
        .index
        .postings(&term)
        .iter()
        .map(|p| p.node_ref())
        .collect();
    // Ancestor side: the elements of the first 40 documents (a nested loop
    // over the full list would dominate the bench budget).
    let ancestors: Vec<_> = (0..40)
        .flat_map(|d| fixture.store.elements_of(DocId(d)))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("stack_merge", descendants.len()),
        &(),
        |bench, ()| {
            bench.iter(|| {
                black_box(
                    structural_join_count(&fixture.store, ancestors.iter().copied(), &descendants)
                        .len(),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("nested_loop", descendants.len()),
        &(),
        |bench, ()| {
            bench.iter(|| {
                black_box(
                    nested_loop_join_count(&fixture.store, ancestors.iter().copied(), &descendants)
                        .len(),
                )
            })
        },
    );
    group.finish();
}

fn bench_histogram_pick(c: &mut Criterion) {
    let fixture = Fixture::small();
    let mut group = c.benchmark_group("ablation_histogram_pick");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    let input = fixture.pick_input(20_000);
    group.bench_function("fixed_threshold", |bench| {
        bench.iter(|| black_box(pick_stream(&fixture.store, &input, &PickParams::paper()).len()))
    });
    group.bench_function("histogram_quantile_threshold", |bench| {
        bench.iter(|| {
            let params = PickParams::from_scores(&input, 0.8, 0.5);
            black_box(pick_stream(&fixture.store, &input, &params).len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_detail_buffers,
    bench_child_count_access,
    bench_structural_join,
    bench_histogram_pick
);
criterion_main!(benches);
