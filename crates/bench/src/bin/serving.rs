//! Closed-loop serving benchmark for `tix-server`.
//!
//! Boots an in-process server over a generated corpus (or targets an
//! already-running one), then runs N closed-loop clients — each sends a
//! request, waits for the full response, and immediately sends the next —
//! until a shared request budget is spent. Reports throughput and
//! client-observed p50/p95/p99 latency, and writes
//! `results/BENCH_serving.json`.
//!
//! The query mix rotates over `/search` (single- and two-term), `/phrase`,
//! and `/health`, using the generated corpus's background vocabulary
//! (`w0`…`w9`), so repeated queries exercise the result cache the way a
//! real skewed workload would.
//!
//! Environment:
//! * `TIX_SERVE_ADDR`     — target an external server instead of booting
//!   one in-process (e.g. `127.0.0.1:7878`; used by the CI smoke job);
//! * `TIX_SERVE_ARTICLES` — self-boot corpus size (default 200);
//! * `TIX_SERVE_CLIENTS`  — concurrent closed-loop clients (default 4);
//! * `TIX_SERVE_REQUESTS` — total request budget (default 2000).
//!
//! Any response outside 2xx/503 — or any transport error — fails the run
//! with exit code 1, so the CI smoke job doubles as a correctness check.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tix::Database;
use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_server::metrics::LatencyHistogram;
use tix_server::{Server, ServerConfig};

/// Per-status-class outcome counts shared by every client.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
}

fn main() {
    let clients: usize = env_parse("TIX_SERVE_CLIENTS", 4).max(1);
    let budget: usize = env_parse("TIX_SERVE_REQUESTS", 2000).max(1);
    let external = std::env::var("TIX_SERVE_ADDR").ok();

    // Self-boot mode builds its own corpus + server; external mode targets
    // a server somebody else booted (the CI smoke job boots `tix serve`).
    let server = if external.is_none() {
        let articles: usize = env_parse("TIX_SERVE_ARTICLES", 200).max(1);
        eprintln!("booting in-process server over {articles} generated articles …");
        let spec = CorpusSpec {
            articles,
            ..CorpusSpec::small()
        };
        let generator = Generator::new(spec, PlantSpec::default()).expect("valid corpus spec");
        let mut db = Database::new();
        generator.load_into(db.store_mut()).expect("corpus loads");
        db.build_index();
        Some(Server::start(db, ServerConfig::default()).expect("server boots"))
    } else {
        None
    };
    let addr: String = match (&server, &external) {
        (Some(s), _) => s.addr().to_string(),
        (None, Some(a)) => a.clone(),
        (None, None) => unreachable!(),
    };
    eprintln!("target: http://{addr}  clients: {clients}  budget: {budget}");

    let next = AtomicUsize::new(0);
    let outcomes = Outcomes::default();
    let latency = LatencyHistogram::default();
    let client_ids: Vec<usize> = (0..clients).collect();

    let started = Instant::now();
    // Clients run through the same document-partitioning primitive the
    // engine uses — one closed loop per worker, drawing request numbers
    // from the shared budget counter.
    tix_parallel::parallel_map(&client_ids, clients, |_client| loop {
        let seq = next.fetch_add(1, Ordering::Relaxed);
        if seq >= budget {
            break;
        }
        let target = request_target(seq);
        let begin = Instant::now();
        match roundtrip(&addr, &target) {
            Ok(status) if (200..300).contains(&status) => {
                latency.record(begin.elapsed());
                outcomes.ok.fetch_add(1, Ordering::Relaxed);
            }
            Ok(503) => {
                // Load shedding is a correct answer under saturation; count
                // it separately and briefly back off, as a client honoring
                // Retry-After would.
                outcomes.shed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(status) => {
                eprintln!("FAIL: {target} answered {status}");
                outcomes.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!("FAIL: {target}: {e}");
                outcomes.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    let elapsed = started.elapsed();

    let ok = outcomes.ok.load(Ordering::Relaxed);
    let shed = outcomes.shed.load(Ordering::Relaxed);
    let failed = outcomes.failed.load(Ordering::Relaxed);
    let throughput = ok as f64 / elapsed.as_secs_f64().max(1e-9);
    let (p50, p95, p99) = (
        latency.quantile_micros(0.50),
        latency.quantile_micros(0.95),
        latency.quantile_micros(0.99),
    );

    println!("\n## Serving benchmark ({clients} clients, {budget} requests)\n");
    println!("| metric | value |");
    println!("|---|---:|");
    println!("| completed (2xx) | {ok} |");
    println!("| shed (503) | {shed} |");
    println!("| failed | {failed} |");
    println!("| wall time (s) | {:.3} |", elapsed.as_secs_f64());
    println!("| throughput (req/s) | {throughput:.1} |");
    println!("| p50 (µs) | {p50} |");
    println!("| p95 (µs) | {p95} |");
    println!("| p99 (µs) | {p99} |");

    if let Some(server) = &server {
        eprintln!("server metrics: {}", server.metrics_json());
    }

    let mut json = String::from("{\n");
    writeln!(json, "  \"experiment\": \"serving\",").unwrap();
    writeln!(json, "  \"clients\": {clients},").unwrap();
    writeln!(json, "  \"requests\": {budget},").unwrap();
    writeln!(json, "  \"completed_2xx\": {ok},").unwrap();
    writeln!(json, "  \"shed_503\": {shed},").unwrap();
    writeln!(json, "  \"failed\": {failed},").unwrap();
    writeln!(json, "  \"wall_s\": {:.4},", elapsed.as_secs_f64()).unwrap();
    writeln!(json, "  \"throughput_rps\": {throughput:.2},").unwrap();
    writeln!(
        json,
        "  \"latency_us\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"mean\": {} }}",
        latency.mean_micros()
    )
    .unwrap();
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_serving.json", &json).expect("write BENCH_serving.json");
    eprintln!("wrote results/BENCH_serving.json");

    if let Some(server) = server {
        server.shutdown();
    }
    if failed > 0 {
        eprintln!("error: {failed} requests failed");
        std::process::exit(1);
    }
}

/// The rotating query mix. Skewed on purpose: a third of searches repeat
/// the same two-term query so the result cache sees realistic reuse.
fn request_target(seq: usize) -> String {
    match seq % 6 {
        0 | 3 => "/search?q=w0+w1&k=10".to_string(),
        1 => format!("/search?q=w{}&k=10", seq % 10),
        2 => format!("/search?q=w{}+w{}&k=5", seq % 10, (seq + 1) % 10),
        4 => format!("/phrase?q=w{}+w{}", seq % 10, (seq + 1) % 10),
        _ => "/health".to_string(),
    }
}

/// One full HTTP round trip; returns the response status.
fn roundtrip(addr: &str, target: &str) -> Result<u16, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let header = String::from_utf8_lossy(&response);
    header
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparsable response: {:.60}", header))
}

fn env_parse<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
