//! Cluster benchmark and durability drill for `tix-cluster`.
//!
//! Two experiments, written to `results/BENCH_cluster.json`:
//!
//! 1. **kill -9 durability drill** (multi-process) — boots a 2-shard ×
//!    1-replica cluster as real `tix` processes (one per node, plus a
//!    coordinator), loads documents through the coordinator, SIGKILLs a
//!    shard primary mid-load, keeps loading, restarts the dead node, and
//!    then proves **zero acknowledged documents were lost**: every name
//!    that got a 201 must answer a routed `/query`. A replica is
//!    SIGKILLed and restarted the same way (reads keep flowing from the
//!    primary while it is down). The coordinator holds no state, so its
//!    restart story is trivial and not drilled.
//! 2. **read throughput vs replica count** (in-process) — a 1-shard
//!    cluster at 0, 1, and 2 replicas, hammered with concurrent
//!    `/search` clients through the coordinator for a fixed window.
//!
//! Environment:
//! * `TIX_BIN` — path to the `tix` binary (default: next to this binary
//!   in the target directory);
//! * `TIX_CLUSTER_DOCS` — documents for the drill (default 40);
//! * `TIX_CLUSTER_SECS` — seconds per throughput window (default 2).
//!
//! The CI box is a single shared core, so the replica scaling numbers
//! measure routing overhead, not parallel speedup — see EXPERIMENTS.md.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tix_cluster::{client, local::scratch_dir, LocalCluster};

const TIMEOUT: Duration = Duration::from_secs(10);

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `tix` binary to spawn: `TIX_BIN`, or a sibling of this binary in
/// the cargo target directory.
fn tix_bin() -> PathBuf {
    if let Ok(path) = std::env::var("TIX_BIN") {
        return PathBuf::from(path);
    }
    let me = std::env::current_exe().expect("current_exe");
    for dir in me.ancestors().skip(1).take(3) {
        let candidate = dir.join("tix");
        if candidate.is_file() {
            return candidate;
        }
    }
    panic!("cannot find the tix binary next to {me:?}; set TIX_BIN");
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local addr")
        .port()
}

/// A spawned cluster node process with its address and respawn recipe.
struct NodeProc {
    label: String,
    addr: String,
    args: Vec<String>,
    child: Child,
}

impl NodeProc {
    fn spawn(bin: &PathBuf, label: &str, addr: &str, args: &[String]) -> NodeProc {
        let child = Command::new(bin)
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {label}: {e}"));
        NodeProc {
            label: label.to_string(),
            addr: addr.to_string(),
            args: args.to_vec(),
            child,
        }
    }

    /// SIGKILL — no shutdown hooks, no flushes: the crash the WAL's
    /// fsync-before-ack contract exists for.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn respawn(&mut self, bin: &PathBuf) {
        self.child = Command::new(bin)
            .args(&self.args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("respawn {}: {e}", self.label));
    }
}

fn wait_healthy(addr: &str, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(r) = client::get(addr, "/health", Duration::from_millis(500)) {
            if r.status == 200 {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{what} at {addr} never became healthy"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn doc_xml(i: usize) -> String {
    format!(
        "<article><sec><p>alpha beta shard{} payload</p></sec><sec><p>gamma delta {}</p></sec></article>",
        i % 7,
        i
    )
}

struct DrillResult {
    docs_attempted: usize,
    docs_acked: usize,
    writes_failed_during_outage: usize,
    docs_lost: usize,
    primary_downtime_writes: usize,
    wall_s: f64,
}

/// The multi-process drill. Returns what happened; panics if any
/// acknowledged document is missing afterwards.
fn durability_drill(docs: usize) -> DrillResult {
    let bin = tix_bin();
    let dir = scratch_dir("bench-drill");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // Hand-build the topology from individually probed free ports (the
    // CLI's `cluster init` assigns a consecutive range, which is less
    // robust on a busy CI box).
    let topology = tix_cluster::Topology {
        shards: (0..2)
            .map(|_| tix_cluster::ShardTopology {
                primary: format!("127.0.0.1:{}", free_port()),
                replicas: vec![format!("127.0.0.1:{}", free_port())],
            })
            .collect(),
    };
    topology.save(&dir).expect("save topology");
    let dir_arg = dir.to_string_lossy().into_owned();
    let coordinator_addr = format!("127.0.0.1:{}", free_port());

    let mut nodes: Vec<NodeProc> = Vec::new();
    for (shard, group) in topology.shards.iter().enumerate() {
        nodes.push(NodeProc::spawn(
            &bin,
            &format!("shard-{shard}-primary"),
            &group.primary,
            &[
                "cluster".into(),
                "serve".into(),
                dir_arg.clone(),
                "--node".into(),
                format!("{shard}:primary"),
            ],
        ));
        for (r, addr) in group.replicas.iter().enumerate() {
            nodes.push(NodeProc::spawn(
                &bin,
                &format!("shard-{shard}-replica-{r}"),
                addr,
                &[
                    "cluster".into(),
                    "serve".into(),
                    dir_arg.clone(),
                    "--node".into(),
                    format!("{shard}:replica:{r}"),
                ],
            ));
        }
    }
    let mut coordinator = NodeProc::spawn(
        &bin,
        "coordinator",
        &coordinator_addr,
        &[
            "cluster".into(),
            "serve".into(),
            dir_arg.clone(),
            "--coordinator".into(),
            "--addr".into(),
            coordinator_addr.clone(),
        ],
    );
    for node in &nodes {
        wait_healthy(&node.addr, &node.label);
    }
    wait_healthy(&coordinator_addr, "coordinator");

    let started = Instant::now();
    let mut acked: Vec<String> = Vec::new();
    let mut failed_during_outage = 0usize;
    let mut downtime_writes = 0usize;
    let kill_primary_at = docs / 3;
    let restart_primary_at = 2 * docs / 3;
    let kill_replica_at = docs / 2;
    // nodes[0] is shard 0's primary, nodes[3] is shard 1's replica.
    for i in 0..docs {
        if i == kill_primary_at {
            eprintln!("kill -9 {} mid-load", nodes[0].label);
            nodes[0].kill9();
        }
        if i == kill_replica_at {
            eprintln!("kill -9 {} mid-load", nodes[3].label);
            nodes[3].kill9();
        }
        if i == restart_primary_at {
            eprintln!("restarting {} and {}", nodes[0].label, nodes[3].label);
            nodes[0].respawn(&bin);
            nodes[3].respawn(&bin);
            wait_healthy(&nodes[0].addr, &nodes[0].label);
            wait_healthy(&nodes[3].addr, &nodes[3].label);
        }
        let name = format!("doc-{i}.xml");
        let path = format!("/documents?name={}", client::encode_component(&name));
        let primary_down = i >= kill_primary_at && i < restart_primary_at;
        if primary_down && tix_cluster::shard_of(&name, 2) == 0 {
            downtime_writes += 1;
        }
        match client::request(
            &coordinator_addr,
            "POST",
            &path,
            doc_xml(i).as_bytes(),
            TIMEOUT,
        ) {
            Ok(r) if r.status == 201 => acked.push(name),
            Ok(_) | Err(_) => failed_during_outage += 1,
        }
    }

    // Every acknowledged document must be queryable after the crash and
    // restart — the acked-write durability contract.
    let mut lost = 0usize;
    for name in &acked {
        let query = format!("For $p in document(\"{name}\")//p Return $p");
        let ok = (0..3).any(|attempt| {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(200));
            }
            matches!(
                client::request(&coordinator_addr, "POST", "/query", query.as_bytes(), TIMEOUT),
                Ok(r) if r.status == 200
            )
        });
        if !ok {
            eprintln!("LOST acked document {name}");
            lost += 1;
        }
    }
    let wall_s = started.elapsed().as_secs_f64();

    coordinator.kill9();
    for node in &mut nodes {
        node.kill9();
    }
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(lost, 0, "{lost} acknowledged documents lost after kill -9");
    DrillResult {
        docs_attempted: docs,
        docs_acked: acked.len(),
        writes_failed_during_outage: failed_during_outage,
        docs_lost: lost,
        primary_downtime_writes: downtime_writes,
        wall_s,
    }
}

struct ThroughputPoint {
    replicas: usize,
    requests: u64,
    errors: u64,
    window_s: f64,
    rps: f64,
}

/// Concurrent `/search` clients against a 1-shard in-process cluster at
/// each replica count.
fn read_throughput(window: Duration) -> Vec<ThroughputPoint> {
    const CLIENTS: usize = 4;
    let mut points = Vec::new();
    for replicas in [0usize, 1, 2] {
        let dir = scratch_dir(&format!("bench-read-{replicas}"));
        let cluster = LocalCluster::start(&dir, 1, replicas).expect("start cluster");
        for i in 0..30 {
            let name = format!("doc-{i}.xml");
            let (status, body) = cluster.insert(&name, &doc_xml(i)).expect("insert");
            assert_eq!(status, 201, "{body}");
        }
        assert!(cluster.wait_replicated(Duration::from_secs(20)));
        let addr = cluster.coordinator_addr();
        let stop = Instant::now() + window;
        let (requests, errors) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let mut ok = 0u64;
                        let mut err = 0u64;
                        let query = ["alpha", "beta", "gamma", "delta"][c % 4];
                        while Instant::now() < stop {
                            match client::get(&addr, &format!("/search?q={query}&k=10"), TIMEOUT) {
                                Ok(r) if r.status == 200 => ok += 1,
                                _ => err += 1,
                            }
                        }
                        (ok, err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
        });
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let window_s = window.as_secs_f64();
        points.push(ThroughputPoint {
            replicas,
            requests,
            errors,
            window_s,
            rps: requests as f64 / window_s.max(1e-9),
        });
    }
    points
}

fn main() {
    let docs: usize = env_parse("TIX_CLUSTER_DOCS", 40).max(9);
    let secs: u64 = env_parse("TIX_CLUSTER_SECS", 2).max(1);

    eprintln!("durability drill: {docs} docs through a 2×1 multi-process cluster …");
    let drill = durability_drill(docs);
    eprintln!("read throughput: {secs}s windows at 0/1/2 replicas …");
    let reads = read_throughput(Duration::from_secs(secs));

    println!("\n## Cluster benchmark\n");
    println!("### kill -9 durability drill (2 shards × 1 replica, real processes)\n");
    println!("| metric | value |");
    println!("|---|---:|");
    println!("| documents attempted | {} |", drill.docs_attempted);
    println!("| documents acknowledged | {} |", drill.docs_acked);
    println!(
        "| writes refused during outage | {} |",
        drill.writes_failed_during_outage
    );
    println!(
        "| writes aimed at the dead shard | {} |",
        drill.primary_downtime_writes
    );
    println!(
        "| **acknowledged documents lost** | **{}** |",
        drill.docs_lost
    );
    println!("| drill wall (s) | {:.2} |", drill.wall_s);
    println!("\n### read throughput vs replicas (1 shard, 4 clients, single core)\n");
    println!("| replicas | requests | errors | req/s |");
    println!("|---:|---:|---:|---:|");
    for p in &reads {
        println!(
            "| {} | {} | {} | {:.1} |",
            p.replicas, p.requests, p.errors, p.rps
        );
    }

    let mut json = String::from("{\n");
    writeln!(json, "  \"experiment\": \"cluster\",").unwrap();
    writeln!(
        json,
        "  \"note\": \"single shared CI core: replica scaling measures routing overhead, not parallel speedup; the drill result is docs_lost == 0\","
    )
    .unwrap();
    writeln!(json, "  \"durability_drill\": {{").unwrap();
    writeln!(json, "    \"shards\": 2,").unwrap();
    writeln!(json, "    \"replicas_per_shard\": 1,").unwrap();
    writeln!(json, "    \"docs_attempted\": {},", drill.docs_attempted).unwrap();
    writeln!(json, "    \"docs_acked\": {},", drill.docs_acked).unwrap();
    writeln!(
        json,
        "    \"writes_failed_during_outage\": {},",
        drill.writes_failed_during_outage
    )
    .unwrap();
    writeln!(
        json,
        "    \"writes_aimed_at_dead_shard\": {},",
        drill.primary_downtime_writes
    )
    .unwrap();
    writeln!(json, "    \"docs_lost\": {},", drill.docs_lost).unwrap();
    writeln!(json, "    \"wall_s\": {:.3}", drill.wall_s).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"read_throughput\": [").unwrap();
    for (i, p) in reads.iter().enumerate() {
        let comma = if i + 1 < reads.len() { "," } else { "" };
        writeln!(
            json,
            "    {{ \"replicas\": {}, \"requests\": {}, \"errors\": {}, \"window_s\": {:.1}, \"requests_per_s\": {:.2} }}{comma}",
            p.replicas, p.requests, p.errors, p.window_s, p.rps
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    eprintln!("wrote results/BENCH_cluster.json");
}
