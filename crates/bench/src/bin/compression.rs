//! Compression & cold-start benchmark for the v3 `TIXPAK` index format.
//!
//! Compares the v2 (`TIXIDX`) and v3 (`TIXPAK`) representations of the
//! same index on four axes:
//!
//! * **bytes on disk** — v2 fixed-width snapshot vs v3 delta+varint
//!   blocks (plus per-block skip metadata);
//! * **resident memory** — v2 decodes every posting eagerly; v3 holds
//!   the raw file bytes and decodes per term on first use, so resident
//!   size after a query workload = file bytes + the decoded fraction;
//! * **cold start** — time from bytes-on-disk to the first query
//!   answer. v3 parses only the header and dictionary before answering
//!   (the decode counters printed below prove the rest of the file was
//!   never touched);
//! * **query latency** — p50/p95 of the Threshold top-k workload with
//!   block-max skipping (v3 metadata) vs without (v2 path), plus the
//!   `postings_scanned` reduction against PR 6's scan-everything
//!   baseline.
//!
//! Results go to stdout as markdown and to
//! `results/BENCH_compression.json`. Wall-clock numbers in the committed
//! file come from a single-core CI container — treat them as indicative
//! shapes, not hardware-representative measurements; the byte/postings
//! counts are exact and machine-independent.
//!
//! Environment:
//! * `TIX_ARTICLES` — corpus size (default 200, the small fixture shape);
//! * `TIX_SCALE`    — plant-frequency scale (default 0.1).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use tix_bench::{fmt_ms, Fixture};
use tix_corpus::{workloads, CorpusSpec};
use tix_exec::pick::PickParams;
use tix_exec::{pushdown, SimpleScorer};
use tix_index::{IndexReader, InvertedIndex, Posting};
use tix_pack::{pack_bytes, PackIndex};

/// Samples per latency distribution (p95 needs a populated tail).
const SAMPLES: usize = 40;

fn main() {
    let articles: usize = env_parse("TIX_ARTICLES", 200);
    let scale: f64 = env_parse("TIX_SCALE", 0.1);
    let spec = CorpusSpec {
        articles,
        ..CorpusSpec::small()
    };
    eprintln!("building fixture: {articles} articles, scale {scale} …");
    let fixture = Fixture::build(spec, scale);
    eprintln!(
        "corpus: {} docs, {} terms, {} tokens",
        fixture.store.doc_ids().count(),
        fixture.index.term_count(),
        fixture.index.total_tokens()
    );

    // ---- bytes on disk --------------------------------------------------
    let mut v2 = Vec::new();
    fixture.index.save_snapshot(&mut v2).expect("v2 serializes");
    let v3 = pack_bytes(&fixture.index).expect("v3 serializes");
    let ratio = v3.len() as f64 / v2.len() as f64;
    // v2's resident form: every posting decoded, plus the dictionary.
    let v2_resident = fixture.index.total_tokens() as usize * std::mem::size_of::<Posting>();

    // ---- cold start: bytes → first query answer -------------------------
    let t3v = workloads::table3_term2(3000);
    let terms: Vec<&str> = vec!["t3fix", &t3v];
    let pick = PickParams::paper();
    let scorer = SimpleScorer::uniform();
    let first_query = |index: &dyn IndexReader| {
        pushdown::search_topk(
            &fixture.store,
            index,
            &terms,
            &scorer,
            Some(&pick),
            10,
            Some(0.5),
            &|| false,
        )
        .expect("never cancelled")
    };

    let v2_cold = median(SAMPLES, || {
        let start = Instant::now();
        let index = InvertedIndex::load_snapshot(&v2[..]).expect("v2 loads");
        let run = first_query(&index);
        (start.elapsed(), run.results.len())
    });
    let v3_cold = median(SAMPLES, || {
        let start = Instant::now();
        let pack = PackIndex::from_bytes(v3.clone()).expect("v3 loads");
        let run = first_query(&pack);
        (start.elapsed(), run.results.len())
    });

    // Decode counters after one cold query: the O(1)-startup evidence.
    let pack = PackIndex::from_bytes(v3.clone()).expect("v3 loads");
    let opened_decoded = pack.decoded_terms();
    let run = first_query(&pack);
    let after_one_query = (pack.decoded_terms(), pack.decoded_blocks());
    let total_blocks = pack.total_blocks();
    assert_eq!(opened_decoded, 0, "open decoded postings eagerly");
    assert!(
        after_one_query.1 < total_blocks,
        "one query decoded all {total_blocks} blocks"
    );
    // v3 resident after the workload: raw bytes + decoded blocks.
    let v3_resident = v3.len()
        + after_one_query.1 * pack.block_postings() as usize * std::mem::size_of::<Posting>();

    // ---- query latency: block-max skipping on vs off --------------------
    // Same Threshold top-10 workload as BENCH_planner's threshold-top10
    // row (PR 6 baseline: 3994/4000 postings scanned with no skipping).
    let with_run = first_query(&pack);
    let without_run = first_query(&fixture.index);
    assert_eq!(
        with_run.results.len(),
        without_run.results.len(),
        "block-max skipping changed the answer"
    );
    assert!(
        with_run.postings_scanned <= without_run.postings_scanned,
        "skipping scanned more ({} vs {})",
        with_run.postings_scanned,
        without_run.postings_scanned
    );

    let with_samples = distribution(SAMPLES, || {
        let r = first_query(&pack);
        assert!(!r.results.is_empty());
    });
    let without_samples = distribution(SAMPLES, || {
        let r = first_query(&fixture.index);
        assert!(!r.results.is_empty());
    });

    // ---- report ---------------------------------------------------------
    let mut table = String::from(
        "| metric | v2 (TIXIDX) | v3 (TIXPAK) |\n\
         |---|---:|---:|\n",
    );
    writeln!(
        table,
        "| bytes on disk | {} | {} ({ratio:.2}×) |",
        v2.len(),
        v3.len()
    )
    .unwrap();
    writeln!(
        table,
        "| resident after 1 query (est. bytes) | {v2_resident} | {v3_resident} |"
    )
    .unwrap();
    writeln!(
        table,
        "| cold start → first answer | {} ms | {} ms |",
        fmt_ms(v2_cold),
        fmt_ms(v3_cold)
    )
    .unwrap();
    writeln!(
        table,
        "| terms/blocks decoded by 1st query | all | {}/{} terms, {}/{} blocks |",
        after_one_query.0,
        pack.term_count(),
        after_one_query.1,
        total_blocks
    )
    .unwrap();
    writeln!(
        table,
        "| top-10 p50 / p95 | {} / {} ms | {} / {} ms |",
        fmt_ms(percentile(&without_samples, 50)),
        fmt_ms(percentile(&without_samples, 95)),
        fmt_ms(percentile(&with_samples, 50)),
        fmt_ms(percentile(&with_samples, 95))
    )
    .unwrap();
    writeln!(
        table,
        "| postings scanned (top-10, min 0.5) | {}/{} | {}/{} (+{} skipped) |",
        without_run.postings_scanned,
        without_run.postings_total,
        with_run.postings_scanned,
        with_run.postings_total,
        with_run.postings_skipped
    )
    .unwrap();
    println!("\n## v2 vs v3 index format ({articles} articles, scale {scale})\n\n{table}");
    println!("run: {} results (both formats agree)\n", run.results.len());

    let mut json = String::from("{\n");
    writeln!(json, "  \"experiment\": \"compression\",").unwrap();
    writeln!(json, "  \"articles\": {articles},").unwrap();
    writeln!(json, "  \"scale\": {scale},").unwrap();
    writeln!(
        json,
        "  \"note\": \"wall-clock numbers from a single-core CI container; byte and postings counts are exact\","
    )
    .unwrap();
    writeln!(json, "  \"v2\": {{").unwrap();
    writeln!(json, "    \"bytes_on_disk\": {},", v2.len()).unwrap();
    writeln!(json, "    \"resident_bytes_est\": {v2_resident},").unwrap();
    writeln!(json, "    \"cold_start_ms\": {:.4},", ms(v2_cold)).unwrap();
    writeln!(
        json,
        "    \"topk_p50_ms\": {:.4},",
        ms(percentile(&without_samples, 50))
    )
    .unwrap();
    writeln!(
        json,
        "    \"topk_p95_ms\": {:.4},",
        ms(percentile(&without_samples, 95))
    )
    .unwrap();
    writeln!(
        json,
        "    \"postings_scanned\": {},",
        without_run.postings_scanned
    )
    .unwrap();
    writeln!(
        json,
        "    \"postings_total\": {}",
        without_run.postings_total
    )
    .unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"v3\": {{").unwrap();
    writeln!(json, "    \"bytes_on_disk\": {},", v3.len()).unwrap();
    writeln!(json, "    \"bytes_vs_v2\": {ratio:.4},").unwrap();
    writeln!(json, "    \"resident_bytes_est\": {v3_resident},").unwrap();
    writeln!(json, "    \"cold_start_ms\": {:.4},", ms(v3_cold)).unwrap();
    writeln!(
        json,
        "    \"topk_p50_ms\": {:.4},",
        ms(percentile(&with_samples, 50))
    )
    .unwrap();
    writeln!(
        json,
        "    \"topk_p95_ms\": {:.4},",
        ms(percentile(&with_samples, 95))
    )
    .unwrap();
    writeln!(
        json,
        "    \"postings_scanned\": {},",
        with_run.postings_scanned
    )
    .unwrap();
    writeln!(
        json,
        "    \"postings_skipped\": {},",
        with_run.postings_skipped
    )
    .unwrap();
    writeln!(json, "    \"postings_total\": {},", with_run.postings_total).unwrap();
    writeln!(
        json,
        "    \"first_query_decoded_terms\": {},",
        after_one_query.0
    )
    .unwrap();
    writeln!(json, "    \"term_count\": {},", pack.term_count()).unwrap();
    writeln!(
        json,
        "    \"first_query_decoded_blocks\": {},",
        after_one_query.1
    )
    .unwrap();
    writeln!(json, "    \"total_blocks\": {total_blocks}").unwrap();
    writeln!(json, "  }}\n}}").unwrap();

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_compression.json";
    std::fs::write(path, &json).expect("write BENCH_compression.json");
    eprintln!("wrote {path}");
}

/// Median wall time of `run` over `n` samples (the returned payload keeps
/// the optimizer honest).
fn median(n: usize, mut run: impl FnMut() -> (Duration, usize)) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let (d, len) = run();
            std::hint::black_box(len);
            d
        })
        .collect();
    samples.sort();
    samples.get(n / 2).copied().unwrap_or_default()
}

/// Sorted wall-time samples of `run`.
fn distribution(n: usize, mut run: impl FnMut()) -> Vec<Duration> {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples
}

/// The `p`-th percentile of pre-sorted samples (nearest-rank).
fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1) - 1;
    sorted
        .get(rank.min(sorted.len() - 1))
        .copied()
        .unwrap_or_default()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn env_parse<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
