//! Planner benchmark: for each EXPERIMENTS.md workload shape, time
//! **every** fixed physical plan and compare against the cost-based
//! planner's choice. Also reports the Threshold pushdown's postings
//! savings (`postings_scanned` vs `postings_total`) — the WAND-style
//! early exit is only worth choosing if it actually skips work.
//!
//! All plans produce byte-identical results (enforced exhaustively by
//! `crates/query/tests/plan_equivalence.rs`; spot-checked here), so the
//! comparison is purely about time and postings touched.
//!
//! Results go to stdout as a markdown table and to
//! `results/BENCH_planner.json`.
//!
//! Environment:
//! * `TIX_ARTICLES` — corpus size (default 200, the small fixture shape);
//! * `TIX_SCALE`    — plant-frequency scale (default 0.1).

use std::fmt::Write as _;
use std::time::Duration;

use tix::query::logical::{PhraseSearch, TermSearch};
use tix::query::{candidates, choose, execute, LogicalPlan, PlanInputs, Scoring};
use tix_bench::{fmt_ms, paper_timing, Fixture};
use tix_corpus::workloads;
use tix_corpus::CorpusSpec;

struct Workload {
    name: &'static str,
    logical: LogicalPlan,
}

struct PlanRowTiming {
    label: String,
    cost: u64,
    wall: Duration,
    postings_scanned: u64,
    postings_total: u64,
}

struct WorkloadResult {
    name: &'static str,
    chosen: String,
    rows: Vec<PlanRowTiming>,
}

impl WorkloadResult {
    fn wall_of(&self, label: &str) -> Duration {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .expect("chosen plan was timed")
            .wall
    }

    fn best_wall(&self) -> Duration {
        self.rows.iter().map(|r| r.wall).min().expect("non-empty")
    }
}

fn term_search(terms: &[&str], scoring: Scoring, k: usize, min_score: Option<f64>) -> LogicalPlan {
    LogicalPlan::TermSearch(TermSearch {
        terms: terms.iter().map(|t| t.to_string()).collect(),
        scoring,
        pick: None,
        k,
        min_score,
    })
}

fn main() {
    let articles: usize = env_parse("TIX_ARTICLES", 200);
    let scale: f64 = env_parse("TIX_SCALE", 0.1);
    let spec = CorpusSpec {
        articles,
        ..CorpusSpec::small()
    };
    eprintln!("building fixture: {articles} articles, scale {scale} …");
    let fixture = Fixture::build(spec, scale);
    eprintln!(
        "corpus: {} docs, {} terms, {} tokens",
        fixture.store.doc_ids().count(),
        fixture.index.term_count(),
        fixture.index.total_tokens()
    );

    let t3v = workloads::table3_term2(3000);
    let t4: Vec<String> = (0..4).map(workloads::table4_term).collect();
    let t4_refs: Vec<&str> = t4.iter().map(String::as_str).collect();
    let (ph_a, ph_b) = workloads::table5_terms(0);
    let workloads: Vec<Workload> = vec![
        Workload {
            name: "table3-2term",
            logical: term_search(&["t3fix", &t3v], Scoring::SimpleUniform, usize::MAX, None),
        },
        Workload {
            name: "table4-4term",
            logical: term_search(&t4_refs, Scoring::SimpleUniform, usize::MAX, None),
        },
        Workload {
            name: "table3-complex",
            logical: term_search(&["t3fix", &t3v], Scoring::Complex, usize::MAX, None),
        },
        Workload {
            name: "threshold-top10",
            logical: term_search(&["t3fix", &t3v], Scoring::SimpleUniform, 10, Some(0.5)),
        },
        Workload {
            name: "table5-phrase",
            logical: LogicalPlan::Phrase(PhraseSearch {
                terms: vec![ph_a, ph_b],
                k: usize::MAX,
                min_score: None,
            }),
        },
    ];

    let mut results: Vec<WorkloadResult> = Vec::new();
    for w in &workloads {
        let inputs = PlanInputs::gather(&fixture.store, &fixture.index, w.logical.terms());
        let choice = choose(&w.logical, &inputs);
        let chosen = choice.chosen.plan.label();
        eprintln!("{}: planner chose {chosen}", w.name);
        let baseline = execute(
            &fixture.store,
            &fixture.index,
            &w.logical,
            &choice.chosen.plan,
            1,
            &|| false,
        )
        .expect("never cancelled");
        let mut rows = Vec::new();
        for candidate in candidates(&w.logical, &inputs) {
            let run = execute(
                &fixture.store,
                &fixture.index,
                &w.logical,
                &candidate.plan,
                1,
                &|| false,
            )
            .expect("never cancelled");
            // Every plan must agree with the planner's choice — the
            // exhaustive proof lives in plan_equivalence.rs; this keeps
            // the benchmark honest about what it compares.
            assert_eq!(
                run.results.len(),
                baseline.results.len(),
                "{}: {} disagrees with {chosen}",
                w.name,
                candidate.plan.label()
            );
            let wall = paper_timing(|| {
                let r = execute(
                    &fixture.store,
                    &fixture.index,
                    &w.logical,
                    &candidate.plan,
                    1,
                    &|| false,
                )
                .expect("never cancelled");
                assert!(r.results.len() == baseline.results.len());
            });
            eprintln!(
                "  {:<28} cost={:<12} {} ms  postings {}/{}",
                candidate.plan.label(),
                candidate.cost,
                fmt_ms(wall),
                run.postings_scanned,
                run.postings_total
            );
            rows.push(PlanRowTiming {
                label: candidate.plan.label(),
                cost: candidate.cost,
                wall,
                postings_scanned: run.postings_scanned,
                postings_total: run.postings_total,
            });
        }
        results.push(WorkloadResult {
            name: w.name,
            chosen,
            rows,
        });
    }

    // The pushdown workload must actually skip postings.
    let pushdown = results
        .iter()
        .find(|r| r.name == "threshold-top10")
        .expect("threshold workload present");
    assert_eq!(pushdown.chosen, "term-join+pushdown");
    let row = pushdown
        .rows
        .iter()
        .find(|r| r.label == "term-join+pushdown")
        .expect("pushdown candidate timed");
    assert!(
        row.postings_scanned < row.postings_total,
        "pushdown scanned {}/{} postings — no early exit",
        row.postings_scanned,
        row.postings_total
    );

    print_and_save(&results, articles, scale);
}

fn print_and_save(results: &[WorkloadResult], articles: usize, scale: f64) {
    let mut table = String::from(
        "| workload | chosen plan | chosen (ms) | best fixed (ms) | ratio | postings scanned/total |\n\
         |---|---|---:|---:|---:|---:|\n",
    );
    for r in results {
        let chosen_wall = r.wall_of(&r.chosen);
        let best = r.best_wall();
        let row = r
            .rows
            .iter()
            .find(|row| row.label == r.chosen)
            .expect("chosen row");
        writeln!(
            table,
            "| {} | {} | {} | {} | {:.2} | {}/{} |",
            r.name,
            r.chosen,
            fmt_ms(chosen_wall),
            fmt_ms(best),
            chosen_wall.as_secs_f64() / best.as_secs_f64().max(1e-12),
            row.postings_scanned,
            row.postings_total
        )
        .unwrap();
    }
    println!("\n## Planner vs fixed plans ({articles} articles, scale {scale})\n\n{table}");

    let mut json = String::from("{\n");
    writeln!(json, "  \"experiment\": \"planner\",").unwrap();
    writeln!(json, "  \"articles\": {articles},").unwrap();
    writeln!(json, "  \"scale\": {scale},").unwrap();
    json.push_str("  \"workloads\": {\n");
    for (i, r) in results.iter().enumerate() {
        let chosen_wall = r.wall_of(&r.chosen).as_secs_f64() * 1e3;
        let best = r.best_wall().as_secs_f64() * 1e3;
        writeln!(json, "    \"{}\": {{", r.name).unwrap();
        writeln!(json, "      \"chosen\": \"{}\",", r.chosen).unwrap();
        writeln!(json, "      \"chosen_wall_ms\": {chosen_wall:.4},").unwrap();
        writeln!(json, "      \"best_fixed_wall_ms\": {best:.4},").unwrap();
        writeln!(
            json,
            "      \"chosen_over_best\": {:.3},",
            chosen_wall / best.max(1e-12)
        )
        .unwrap();
        json.push_str("      \"plans\": [\n");
        for (j, row) in r.rows.iter().enumerate() {
            write!(
                json,
                "        {{\"plan\": \"{}\", \"cost\": {}, \"wall_ms\": {:.4}, \
                 \"postings_scanned\": {}, \"postings_total\": {}}}",
                row.label,
                row.cost,
                row.wall.as_secs_f64() * 1e3,
                row.postings_scanned,
                row.postings_total
            )
            .unwrap();
            json.push_str(if j + 1 == r.rows.len() { "\n" } else { ",\n" });
        }
        json.push_str("      ]\n");
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_planner.json";
    std::fs::write(path, &json).expect("write BENCH_planner.json");
    eprintln!("wrote {path}");
}

fn env_parse<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
