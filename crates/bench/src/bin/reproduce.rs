//! Regenerate every table of the paper's experimental evaluation (Sec. 6).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tix-bench --bin reproduce [-- TABLE…]
//!   TABLE ∈ { table1 table2 table3 table4 table5 pick all }   (default: all)
//!
//! environment:
//!   TIX_ARTICLES  corpus size in articles        (default 3000)
//!   TIX_SCALE     planted-frequency scale factor (default 1.0)
//! ```
//!
//! The methodology follows the paper: each cell is run five times, the
//! fastest and slowest readings are dropped, and the remaining three are
//! averaged. All cells are reported in **milliseconds** (the paper reports
//! seconds against a 2003 disk-resident 5 GB TIMBER database; our store is
//! in-memory, so absolute numbers are smaller across the board — the
//! comparisons of interest are *between methods*).

use std::time::Duration;

use tix_bench::{fmt_ms, paper_timing, Fixture, Method};
use tix_corpus::{workloads, CorpusSpec};
use tix_exec::phrase::{comp3, phrase_finder};
use tix_exec::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tables: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "figures", "table1", "table2", "table3", "table4", "table5", "pick",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    let articles: usize = std::env::var("TIX_ARTICLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000);
    let scale: f64 = std::env::var("TIX_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    let spec = CorpusSpec {
        articles,
        ..CorpusSpec::default()
    };
    eprintln!(
        "building corpus: {articles} articles (~{} nodes), plant scale {scale} …",
        spec.approx_nodes()
    );
    let start = std::time::Instant::now();
    let fixture = Fixture::build(spec, scale);
    eprintln!(
        "corpus ready in {:.1} s: {}",
        start.elapsed().as_secs_f64(),
        fixture.store.stats()
    );
    println!("# TIX experiment reproduction");
    println!();
    println!("corpus: {}", fixture.store.stats());
    println!("plant scale: {scale} (row labels give the paper's nominal frequencies)");
    println!("all timings in milliseconds; five runs per cell, min/max dropped, rest averaged");

    for table in tables {
        match table {
            "table1" => table1(&fixture),
            "table2" => table2(&fixture),
            "table3" => table3(&fixture),
            "table4" => table4(&fixture),
            "table5" => table5(&fixture),
            "pick" => pick_experiment(&fixture),
            "figures" => figures(),
            other => eprintln!("unknown table {other:?} — skipping"),
        }
    }
}

fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

fn header(cols: &[&str]) {
    print_row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    print_row(&cols.iter().map(|_| "---".to_string()).collect::<Vec<_>>());
}

/// Time one method × term-list cell.
fn cell<S: tix_exec::termjoin::TermJoinScorer>(
    fixture: &Fixture,
    method: Method,
    terms: &[&str],
    scorer: &S,
) -> Duration {
    paper_timing(|| {
        let n = fixture.run_method(method, terms, scorer);
        std::hint::black_box(n);
    })
}

/// Figures 6 and 8: the worked Query 2 results on the Fig. 1 example
/// database (also asserted exactly by `tests/figures.rs`).
fn figures() {
    use tix_core::ops;
    use tix_core::pattern::{EdgeKind, PatternTree, Predicate};
    use tix_core::scoring::paper::ScoreFoo;
    use tix_core::scoring::ScoreContext;
    use tix_core::Collection;

    let (store, _, _) = tix_corpus::fig1::load().expect("fig. 1 database loads");
    let mut pattern = PatternTree::new();
    let n1 = pattern.add_root(Predicate::tag("article"));
    let n2 = pattern.add_child(n1, EdgeKind::Child, Predicate::tag("author"));
    let n3 = pattern.add_child(
        n2,
        EdgeKind::Child,
        Predicate::And(vec![Predicate::tag("sname"), Predicate::content_eq("Doe")]),
    );
    let n4 = pattern.add_child(n1, EdgeKind::SelfOrDescendant, Predicate::True);
    pattern.score_primary(
        n4,
        ScoreFoo::shared(&["search engine"], &["internet", "information retrieval"]),
    );
    pattern.score_from_descendant(n1, n4);

    let input = Collection::document(&store, "articles.xml").expect("loaded");
    let projected = ops::project(&store, &input, &pattern, &[n1, n3, n4]);
    println!("\n## Figure 6 — Query 2 under scored projection\n");
    println!("```");
    for tree in projected.iter() {
        print!("{}", tree.outline(&store));
    }
    println!("```");
    let ctx = ScoreContext::new(&store);
    let picked = ops::pick(
        &ctx,
        &projected,
        n4,
        &ops::FractionPick::paper(),
        pattern.rules(),
    );
    println!("\n## Figure 8 — projection followed by Pick\n");
    println!("```");
    for tree in picked.iter() {
        print!("{}", tree.outline(&store));
    }
    println!("```");
}

/// Table 1: two terms of equal frequency, increasing; simple scoring.
fn table1(fixture: &Fixture) {
    println!("\n## Table 1 — two index terms, increasing frequency, simple scoring\n");
    let methods = [
        Method::Comp1,
        Method::Comp2,
        Method::GeneralizedMeet,
        Method::TermJoin,
    ];
    let mut cols = vec!["approx. term freq"];
    cols.extend(methods.iter().map(|m| m.label()));
    header(&cols);
    let scorer = SimpleScorer::new(vec![0.8, 0.6]);
    for &freq in workloads::TABLE12_FREQUENCIES {
        let (a, b) = (workloads::pair_term(freq, 0), workloads::pair_term(freq, 1));
        let terms = [a.as_str(), b.as_str()];
        let mut cells = vec![freq.to_string()];
        for method in methods {
            cells.push(fmt_ms(cell(fixture, method, &terms, &scorer)));
        }
        print_row(&cells);
    }
}

/// Table 2: as Table 1 but with the complex scoring function and the
/// Enhanced TermJoin column.
fn table2(fixture: &Fixture) {
    println!("\n## Table 2 — two index terms, increasing frequency, complex scoring\n");
    let methods = [
        Method::Comp1,
        Method::Comp2,
        Method::GeneralizedMeet,
        Method::TermJoin,
        Method::EnhancedTermJoin,
    ];
    let mut cols = vec!["approx. term freq"];
    cols.extend(methods.iter().map(|m| m.label()));
    header(&cols);
    for &freq in workloads::TABLE12_FREQUENCIES {
        let (a, b) = (workloads::pair_term(freq, 0), workloads::pair_term(freq, 1));
        let terms = [a.as_str(), b.as_str()];
        let mut cells = vec![freq.to_string()];
        for method in methods {
            cells.push(fmt_ms(complex_cell(fixture, method, &terms)));
        }
        print_row(&cells);
    }
}

fn complex_cell(fixture: &Fixture, method: Method, terms: &[&str]) -> Duration {
    let mode = if method == Method::EnhancedTermJoin {
        ChildCountMode::Index
    } else {
        ChildCountMode::Navigate
    };
    let scorer = ComplexScorer::new(vec![0.8, 0.6], mode);
    cell(fixture, method, terms, &scorer)
}

/// Table 3: term 1 fixed at 1,000; term 2 varies; complex scoring.
fn table3(fixture: &Fixture) {
    println!("\n## Table 3 — term1 fixed at 1,000, term2 varying, complex scoring\n");
    let methods = [
        Method::Comp1,
        Method::Comp2,
        Method::GeneralizedMeet,
        Method::TermJoin,
        Method::EnhancedTermJoin,
    ];
    let mut cols = vec!["approx. term2 freq"];
    cols.extend(methods.iter().map(|m| m.label()));
    header(&cols);
    for &freq in workloads::TABLE3_TERM2_FREQUENCIES {
        let t2 = workloads::table3_term2(freq);
        let terms = [workloads::TABLE3_TERM1, t2.as_str()];
        let mut cells = vec![freq.to_string()];
        for method in methods {
            cells.push(fmt_ms(complex_cell(fixture, method, &terms)));
        }
        print_row(&cells);
    }
}

/// Table 4: increasing number of terms, each ≈ 1,500; complex scoring.
fn table4(fixture: &Fixture) {
    println!("\n## Table 4 — increasing query size (terms ≈ 1,500 each), complex scoring\n");
    let methods = [
        Method::Comp1,
        Method::Comp2,
        Method::GeneralizedMeet,
        Method::TermJoin,
        Method::EnhancedTermJoin,
    ];
    let mut cols = vec!["# terms in query"];
    cols.extend(methods.iter().map(|m| m.label()));
    header(&cols);
    let all_terms: Vec<String> = (0..7).map(workloads::table4_term).collect();
    for &n in workloads::TABLE4_TERM_COUNTS {
        let terms: Vec<&str> = all_terms[..n].iter().map(String::as_str).collect();
        let mut cells = vec![n.to_string()];
        for method in methods {
            cells.push(fmt_ms(complex_cell(fixture, method, &terms)));
        }
        print_row(&cells);
    }
}

/// Table 5: PhraseFinder vs Comp3 on 13 two-term phrases.
fn table5(fixture: &Fixture) {
    println!("\n## Table 5 — PhraseFinder vs composite (Comp3) on 13 phrases\n");
    header(&[
        "query",
        "term1 freq",
        "term2 freq",
        "result size",
        "Comp3",
        "PhraseFinder",
    ]);
    for (i, _row) in workloads::TABLE5_ROWS.iter().enumerate() {
        let (a, b) = workloads::table5_terms(i);
        let terms = [a.as_str(), b.as_str()];
        let f1 = fixture.index.collection_frequency(&a);
        let f2 = fixture.index.collection_frequency(&b);
        let result_size = phrase_finder(&fixture.store, &fixture.index, &terms).len();
        let c3 = paper_timing(|| {
            std::hint::black_box(comp3(&fixture.store, &fixture.index, &terms).len());
        });
        let pf = paper_timing(|| {
            std::hint::black_box(phrase_finder(&fixture.store, &fixture.index, &terms).len());
        });
        print_row(&[
            (i + 1).to_string(),
            f1.to_string(),
            f2.to_string(),
            result_size.to_string(),
            fmt_ms(c3),
            fmt_ms(pf),
        ]);
    }
}

/// The Sec. 6 Pick experiment: parent/child redundancy elimination over
/// inputs of 200 to 55,000 nodes.
fn pick_experiment(fixture: &Fixture) {
    println!("\n## Pick — parent/child redundancy elimination (Sec. 6 prose)\n");
    header(&["input size (nodes)", "picked", "time"]);
    for &n in &[200usize, 1_000, 5_000, 20_000, 55_000] {
        let input = fixture.pick_input(n);
        if input.len() < n {
            eprintln!("corpus too small for a {n}-node pick input — skipping");
            continue;
        }
        let picked = fixture.run_pick(&input);
        let time = paper_timing(|| {
            std::hint::black_box(fixture.run_pick(&input));
        });
        print_row(&[n.to_string(), picked.to_string(), fmt_ms(time)]);
    }
}
