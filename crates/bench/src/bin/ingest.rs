//! Live-ingestion benchmark for `tix-ingest`.
//!
//! Measures the four costs that matter for the write path, over a
//! generated corpus in a scratch ingestion directory:
//!
//! 1. **Ingest throughput** — WAL-append + fsync + parse + incremental
//!    index maintenance per document (docs/s, MB/s, per-doc latency);
//! 2. **Incremental maintenance vs rebuild** — time to maintain the index
//!    through one insert vs a from-scratch `InvertedIndex::build` at the
//!    same corpus size (the ratio is the point of incrementality);
//! 3. **Checkpoint** — snapshotting store+index and truncating the WAL;
//! 4. **Recovery** — replaying a WAL of N records over the last
//!    checkpoint at startup (records/s).
//!
//! Writes `results/BENCH_ingest.json`. Environment:
//! * `TIX_INGEST_ARTICLES` — corpus size in articles (default 200);
//! * `TIX_INGEST_SEED`     — corpus seed (default 11).
//!
//! Numbers from CI come from a single shared core with fsyncs hitting
//! whatever the container's filesystem provides — treat absolute figures
//! as indicative and the ratios (incremental vs rebuild, replay vs
//! ingest) as the result.

use std::fmt::Write as _;
use std::sync::RwLock;
use std::time::{Duration, Instant};

use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_index::InvertedIndex;
use tix_ingest::{CommitStats, DurabilityMode, Ingest, IngestOptions};
use tix_parallel::parallel_map;
use tix_server::metrics::LatencyHistogram;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let articles: usize = env_parse("TIX_INGEST_ARTICLES", 200).max(2);
    let seed: u64 = env_parse("TIX_INGEST_SEED", 11);

    eprintln!("generating {articles} articles (seed {seed}) …");
    let spec = CorpusSpec {
        articles,
        seed,
        ..CorpusSpec::small()
    };
    let generator = Generator::new(spec, PlantSpec::default()).expect("valid corpus spec");
    let docs: Vec<(String, String)> = (0..generator.document_count())
        .map(|i| generator.document(i))
        .collect();
    let xml_bytes: usize = docs.iter().map(|(_, xml)| xml.len()).sum();

    let dir = std::env::temp_dir().join("tix-bench-ingest");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: ingest the whole corpus, one WAL-committed insert at a time.
    let (ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).expect("open dir");
    let insert_latency = LatencyHistogram::default();
    let ingest_started = Instant::now();
    for (name, xml) in &docs {
        let begin = Instant::now();
        ingest
            .insert_document(&mut db, name, xml)
            .expect("insert succeeds");
        insert_latency.record(begin.elapsed());
    }
    let ingest_wall = ingest_started.elapsed();
    let wal_len = ingest.wal_len();

    // Phase 2: maintain-one-insert vs from-scratch rebuild at this size.
    // Remove + re-insert the last document so the maintained path runs at
    // full corpus size, then time a cold rebuild over the same store.
    let (last_name, last_xml) = docs.last().expect("at least one doc").clone();
    ingest
        .remove_document(&mut db, &last_name)
        .expect("remove succeeds");
    let begin = Instant::now();
    ingest
        .insert_document(&mut db, &last_name, &last_xml)
        .expect("re-insert succeeds");
    let incremental = begin.elapsed();
    let begin = Instant::now();
    let rebuilt = InvertedIndex::build(db.store());
    let rebuild = begin.elapsed();
    assert_eq!(rebuilt.term_count(), db.index().term_count());

    // Phase 3: checkpoint (snapshot + meta commit + WAL truncation).
    let begin = Instant::now();
    ingest.checkpoint(&mut db).expect("checkpoint succeeds");
    let checkpoint = begin.elapsed();
    assert_eq!(
        ingest.wal_len(),
        tix_ingest::WAL_HEADER_LEN,
        "checkpoint truncates the WAL to its header"
    );

    // Phase 4: replay. Rebuild a WAL tail of half the corpus by removing
    // and re-inserting, then reopen and time startup recovery.
    let replayed: Vec<&(String, String)> = docs.iter().take(articles / 2).collect();
    for (name, _) in &replayed {
        ingest
            .remove_document(&mut db, name)
            .expect("remove succeeds");
    }
    for (name, xml) in &replayed {
        ingest
            .insert_document(&mut db, name, xml)
            .expect("re-insert succeeds");
    }
    let replay_records = 2 * replayed.len();
    drop((ingest, db));
    let begin = Instant::now();
    let (_ingest, db) = Ingest::open(&dir, IngestOptions::default()).expect("recovery succeeds");
    let recovery = begin.elapsed();
    assert_eq!(
        db.store().doc_count(),
        articles,
        "recovery restores all docs"
    );

    // Phase 5: durability modes under concurrency. A Strict single-writer
    // baseline (one fsync per document, no batching opportunity), then
    // Strict/Batched/Flush with concurrent clients staging under a shared
    // write lock and riding group commit. On a single shared core the
    // clients interleave rather than truly overlap, but commits still
    // queue behind one leader, so the fsync amortization is real.
    let clients: usize = env_parse("TIX_INGEST_CLIENTS", 8).max(2);
    let strict_1 = durability_run(&docs, DurabilityMode::Strict, 1);
    let strict_n = durability_run(&docs, DurabilityMode::Strict, clients);
    let batched_n = durability_run(
        &docs,
        DurabilityMode::Batched {
            max_delay: Duration::from_millis(5),
        },
        clients,
    );
    let flush_n = durability_run(&docs, DurabilityMode::Flush, clients);
    let mode_runs = [
        ("strict", 1usize, &strict_1),
        ("strict", clients, &strict_n),
        ("batched:5", clients, &batched_n),
        ("flush", clients, &flush_n),
    ];

    let docs_per_s = articles as f64 / ingest_wall.as_secs_f64().max(1e-9);
    let mb_per_s = xml_bytes as f64 / 1e6 / ingest_wall.as_secs_f64().max(1e-9);
    let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    let replay_per_s = replay_records as f64 / recovery.as_secs_f64().max(1e-9);

    println!("\n## Ingest benchmark ({articles} articles, {xml_bytes} XML bytes)\n");
    println!("| metric | value |");
    println!("|---|---:|");
    println!("| ingest wall (s) | {:.3} |", ingest_wall.as_secs_f64());
    println!("| ingest (docs/s) | {docs_per_s:.1} |");
    println!("| ingest (MB/s) | {mb_per_s:.2} |");
    println!(
        "| insert p50/p95/p99 (µs) | {}/{}/{} |",
        insert_latency.quantile_micros(0.50),
        insert_latency.quantile_micros(0.95),
        insert_latency.quantile_micros(0.99)
    );
    println!("| WAL after ingest (bytes) | {wal_len} |");
    println!("| incremental insert (µs) | {} |", us(incremental));
    println!("| full rebuild (µs) | {} |", us(rebuild));
    println!("| rebuild / incremental | {speedup:.1}× |");
    println!("| checkpoint (µs) | {} |", us(checkpoint));
    println!(
        "| recovery of {replay_records} records (µs) | {} |",
        us(recovery)
    );
    println!("| replay (records/s) | {replay_per_s:.1} |");

    println!("\n## Durability modes ({articles} docs, group commit)\n");
    println!("| mode | clients | docs/s | fsyncs | fsyncs saved | max batch | stall (µs) |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for (mode, n, run) in &mode_runs {
        println!(
            "| {mode} | {n} | {:.1} | {} | {} | {} | {} |",
            run.docs_per_s(articles),
            run.stats.fsyncs,
            run.stats.fsyncs_saved(),
            run.stats.max_batch_frames,
            run.stats.checkpoint_stall_us
        );
    }
    let group_commit_speedup =
        batched_n.docs_per_s(articles) / strict_1.docs_per_s(articles).max(1e-9);
    println!("\ngroup commit (batched, {clients} clients) vs strict single-writer: {group_commit_speedup:.1}×");

    let mut json = String::from("{\n");
    writeln!(json, "  \"experiment\": \"ingest\",").unwrap();
    writeln!(
        json,
        "  \"note\": \"single shared CI core, container fsyncs: ratios are the result, absolute figures are indicative\","
    )
    .unwrap();
    writeln!(json, "  \"articles\": {articles},").unwrap();
    writeln!(json, "  \"xml_bytes\": {xml_bytes},").unwrap();
    writeln!(
        json,
        "  \"ingest_wall_s\": {:.4},",
        ingest_wall.as_secs_f64()
    )
    .unwrap();
    writeln!(json, "  \"ingest_docs_per_s\": {docs_per_s:.2},").unwrap();
    writeln!(json, "  \"ingest_mb_per_s\": {mb_per_s:.3},").unwrap();
    writeln!(
        json,
        "  \"insert_latency_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {} }},",
        insert_latency.quantile_micros(0.50),
        insert_latency.quantile_micros(0.95),
        insert_latency.quantile_micros(0.99),
        insert_latency.mean_micros()
    )
    .unwrap();
    writeln!(json, "  \"wal_bytes_after_ingest\": {wal_len},").unwrap();
    writeln!(json, "  \"incremental_insert_us\": {},", us(incremental)).unwrap();
    writeln!(json, "  \"full_rebuild_us\": {},", us(rebuild)).unwrap();
    writeln!(json, "  \"rebuild_over_incremental\": {speedup:.2},").unwrap();
    writeln!(json, "  \"checkpoint_us\": {},", us(checkpoint)).unwrap();
    writeln!(json, "  \"recovery_records\": {replay_records},").unwrap();
    writeln!(json, "  \"recovery_us\": {},", us(recovery)).unwrap();
    writeln!(json, "  \"replay_records_per_s\": {replay_per_s:.2},").unwrap();
    writeln!(json, "  \"durability\": {{").unwrap();
    writeln!(json, "    \"clients\": {clients},").unwrap();
    writeln!(
        json,
        "    \"group_commit_speedup_vs_strict_single\": {group_commit_speedup:.2},"
    )
    .unwrap();
    writeln!(json, "    \"runs\": [").unwrap();
    for (i, (mode, n, run)) in mode_runs.iter().enumerate() {
        let comma = if i + 1 < mode_runs.len() { "," } else { "" };
        writeln!(
            json,
            "      {{ \"mode\": \"{mode}\", \"clients\": {n}, \"wall_s\": {:.4}, \"docs_per_s\": {:.2}, \"batches\": {}, \"frames\": {}, \"fsyncs\": {}, \"fsyncs_saved\": {}, \"max_batch_frames\": {}, \"checkpoint_stall_us\": {} }}{comma}",
            run.wall.as_secs_f64(),
            run.docs_per_s(articles),
            run.stats.batches,
            run.stats.frames,
            run.stats.fsyncs,
            run.stats.fsyncs_saved(),
            run.stats.max_batch_frames,
            run.stats.checkpoint_stall_us
        )
        .unwrap();
    }
    writeln!(json, "    ]").unwrap();
    writeln!(json, "  }}").unwrap();
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    eprintln!("wrote results/BENCH_ingest.json");

    let _ = std::fs::remove_dir_all(&dir);
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One durability-mode ingest run: wall time and commit-pipeline stats.
struct ModeRun {
    wall: Duration,
    stats: CommitStats,
}

impl ModeRun {
    fn docs_per_s(&self, docs: usize) -> f64 {
        docs as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Ingest the whole corpus into a fresh directory under `mode`. With one
/// client this is the classic apply+commit loop; with several, clients
/// stage under a shared write lock and commit with no lock held, so
/// concurrent commits coalesce into one leader's batch. A final `flush`
/// is included in the wall time so every mode pays for full durability
/// before the clock stops.
fn durability_run(docs: &[(String, String)], mode: DurabilityMode, clients: usize) -> ModeRun {
    let dir = std::env::temp_dir().join(format!(
        "tix-bench-ingest-{}-{clients}",
        mode.to_string().replace(':', "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let options = IngestOptions {
        durability: mode,
        ..IngestOptions::default()
    };
    let (ingest, db) = Ingest::open(&dir, options).expect("open mode dir");
    let started = Instant::now();
    if clients <= 1 {
        let mut db = db;
        for (name, xml) in docs {
            ingest
                .insert_document(&mut db, name, xml)
                .expect("insert succeeds");
        }
        ingest.flush().expect("flush succeeds");
    } else {
        let db = RwLock::new(db);
        let indices: Vec<usize> = (0..docs.len()).collect();
        parallel_map(&indices, clients, |&i| {
            let (name, xml) = &docs[i];
            let staged = {
                let mut db = db.write().expect("db lock");
                ingest.stage_insert(&mut db, name, xml)
            };
            let (_, ticket) = staged.expect("stage succeeds");
            ingest.commit(ticket).expect("commit succeeds");
        });
        ingest.flush().expect("flush succeeds");
    }
    let wall = started.elapsed();
    let stats = ingest.commit_stats();
    drop(ingest);
    let _ = std::fs::remove_dir_all(&dir);
    ModeRun { wall, stats }
}
