//! Live-ingestion benchmark for `tix-ingest`.
//!
//! Measures the four costs that matter for the write path, over a
//! generated corpus in a scratch ingestion directory:
//!
//! 1. **Ingest throughput** — WAL-append + fsync + parse + incremental
//!    index maintenance per document (docs/s, MB/s, per-doc latency);
//! 2. **Incremental maintenance vs rebuild** — time to maintain the index
//!    through one insert vs a from-scratch `InvertedIndex::build` at the
//!    same corpus size (the ratio is the point of incrementality);
//! 3. **Checkpoint** — snapshotting store+index and truncating the WAL;
//! 4. **Recovery** — replaying a WAL of N records over the last
//!    checkpoint at startup (records/s).
//!
//! Writes `results/BENCH_ingest.json`. Environment:
//! * `TIX_INGEST_ARTICLES` — corpus size in articles (default 200);
//! * `TIX_INGEST_SEED`     — corpus seed (default 11).
//!
//! Numbers from CI come from a single shared core with fsyncs hitting
//! whatever the container's filesystem provides — treat absolute figures
//! as indicative and the ratios (incremental vs rebuild, replay vs
//! ingest) as the result.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_index::InvertedIndex;
use tix_ingest::{Ingest, IngestOptions};
use tix_server::metrics::LatencyHistogram;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let articles: usize = env_parse("TIX_INGEST_ARTICLES", 200).max(2);
    let seed: u64 = env_parse("TIX_INGEST_SEED", 11);

    eprintln!("generating {articles} articles (seed {seed}) …");
    let spec = CorpusSpec {
        articles,
        seed,
        ..CorpusSpec::small()
    };
    let generator = Generator::new(spec, PlantSpec::default()).expect("valid corpus spec");
    let docs: Vec<(String, String)> = (0..generator.document_count())
        .map(|i| generator.document(i))
        .collect();
    let xml_bytes: usize = docs.iter().map(|(_, xml)| xml.len()).sum();

    let dir = std::env::temp_dir().join("tix-bench-ingest");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: ingest the whole corpus, one WAL-committed insert at a time.
    let (mut ingest, mut db) = Ingest::open(&dir, IngestOptions::default()).expect("open dir");
    let insert_latency = LatencyHistogram::default();
    let ingest_started = Instant::now();
    for (name, xml) in &docs {
        let begin = Instant::now();
        ingest
            .insert_document(&mut db, name, xml)
            .expect("insert succeeds");
        insert_latency.record(begin.elapsed());
    }
    let ingest_wall = ingest_started.elapsed();
    let wal_len = ingest.wal_len();

    // Phase 2: maintain-one-insert vs from-scratch rebuild at this size.
    // Remove + re-insert the last document so the maintained path runs at
    // full corpus size, then time a cold rebuild over the same store.
    let (last_name, last_xml) = docs.last().expect("at least one doc").clone();
    ingest
        .remove_document(&mut db, &last_name)
        .expect("remove succeeds");
    let begin = Instant::now();
    ingest
        .insert_document(&mut db, &last_name, &last_xml)
        .expect("re-insert succeeds");
    let incremental = begin.elapsed();
    let begin = Instant::now();
    let rebuilt = InvertedIndex::build(db.store());
    let rebuild = begin.elapsed();
    assert_eq!(rebuilt.term_count(), db.index().term_count());

    // Phase 3: checkpoint (snapshot + meta commit + WAL truncation).
    let begin = Instant::now();
    ingest.checkpoint(&mut db).expect("checkpoint succeeds");
    let checkpoint = begin.elapsed();
    assert_eq!(
        ingest.wal_len(),
        tix_ingest::WAL_HEADER_LEN,
        "checkpoint truncates the WAL to its header"
    );

    // Phase 4: replay. Rebuild a WAL tail of half the corpus by removing
    // and re-inserting, then reopen and time startup recovery.
    let replayed: Vec<&(String, String)> = docs.iter().take(articles / 2).collect();
    for (name, _) in &replayed {
        ingest
            .remove_document(&mut db, name)
            .expect("remove succeeds");
    }
    for (name, xml) in &replayed {
        ingest
            .insert_document(&mut db, name, xml)
            .expect("re-insert succeeds");
    }
    let replay_records = 2 * replayed.len();
    drop((ingest, db));
    let begin = Instant::now();
    let (_ingest, db) = Ingest::open(&dir, IngestOptions::default()).expect("recovery succeeds");
    let recovery = begin.elapsed();
    assert_eq!(
        db.store().doc_count(),
        articles,
        "recovery restores all docs"
    );

    let docs_per_s = articles as f64 / ingest_wall.as_secs_f64().max(1e-9);
    let mb_per_s = xml_bytes as f64 / 1e6 / ingest_wall.as_secs_f64().max(1e-9);
    let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    let replay_per_s = replay_records as f64 / recovery.as_secs_f64().max(1e-9);

    println!("\n## Ingest benchmark ({articles} articles, {xml_bytes} XML bytes)\n");
    println!("| metric | value |");
    println!("|---|---:|");
    println!("| ingest wall (s) | {:.3} |", ingest_wall.as_secs_f64());
    println!("| ingest (docs/s) | {docs_per_s:.1} |");
    println!("| ingest (MB/s) | {mb_per_s:.2} |");
    println!(
        "| insert p50/p95/p99 (µs) | {}/{}/{} |",
        insert_latency.quantile_micros(0.50),
        insert_latency.quantile_micros(0.95),
        insert_latency.quantile_micros(0.99)
    );
    println!("| WAL after ingest (bytes) | {wal_len} |");
    println!("| incremental insert (µs) | {} |", us(incremental));
    println!("| full rebuild (µs) | {} |", us(rebuild));
    println!("| rebuild / incremental | {speedup:.1}× |");
    println!("| checkpoint (µs) | {} |", us(checkpoint));
    println!(
        "| recovery of {replay_records} records (µs) | {} |",
        us(recovery)
    );
    println!("| replay (records/s) | {replay_per_s:.1} |");

    let mut json = String::from("{\n");
    writeln!(json, "  \"experiment\": \"ingest\",").unwrap();
    writeln!(
        json,
        "  \"note\": \"single shared CI core, container fsyncs: ratios are the result, absolute figures are indicative\","
    )
    .unwrap();
    writeln!(json, "  \"articles\": {articles},").unwrap();
    writeln!(json, "  \"xml_bytes\": {xml_bytes},").unwrap();
    writeln!(
        json,
        "  \"ingest_wall_s\": {:.4},",
        ingest_wall.as_secs_f64()
    )
    .unwrap();
    writeln!(json, "  \"ingest_docs_per_s\": {docs_per_s:.2},").unwrap();
    writeln!(json, "  \"ingest_mb_per_s\": {mb_per_s:.3},").unwrap();
    writeln!(
        json,
        "  \"insert_latency_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {} }},",
        insert_latency.quantile_micros(0.50),
        insert_latency.quantile_micros(0.95),
        insert_latency.quantile_micros(0.99),
        insert_latency.mean_micros()
    )
    .unwrap();
    writeln!(json, "  \"wal_bytes_after_ingest\": {wal_len},").unwrap();
    writeln!(json, "  \"incremental_insert_us\": {},", us(incremental)).unwrap();
    writeln!(json, "  \"full_rebuild_us\": {},", us(rebuild)).unwrap();
    writeln!(json, "  \"rebuild_over_incremental\": {speedup:.2},").unwrap();
    writeln!(json, "  \"checkpoint_us\": {},", us(checkpoint)).unwrap();
    writeln!(json, "  \"recovery_records\": {replay_records},").unwrap();
    writeln!(json, "  \"recovery_us\": {},", us(recovery)).unwrap();
    writeln!(json, "  \"replay_records_per_s\": {replay_per_s:.2}").unwrap();
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    eprintln!("wrote results/BENCH_ingest.json");

    let _ = std::fs::remove_dir_all(&dir);
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}
