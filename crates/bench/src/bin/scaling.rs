//! Thread-scaling experiment: wall-clock speedup of the document-
//! partitioned parallel access methods over 1/2/4/8 workers.
//!
//! Measures, per thread count:
//!
//! * parallel index construction (`InvertedIndex::build_with_threads`);
//! * TermJoin (simple scorer, the paper's 1,000×1,000 term pair);
//! * PhraseFinder over a planted phrase;
//! * Pick over a generated scored stream;
//! * `Database::search_batch` over a mixed query batch.
//!
//! Every method produces identical output at every thread count (enforced
//! here with result-count assertions and, exhaustively, by the equivalence
//! tests in `tix-exec`); only wall-clock time varies. Results go to stdout
//! as a markdown table and to `results/BENCH_scaling.json`.
//!
//! Environment:
//! * `TIX_ARTICLES` — corpus size (default 200, the small fixture shape);
//! * `TIX_SCALE`    — plant-frequency scale (default 0.1);
//! * `TIX_BENCH_THREADS` — comma-separated thread counts (default 1,2,4,8).

use std::fmt::Write as _;
use std::time::Duration;

use tix::Database;
use tix_bench::{fmt_ms, paper_timing, Fixture, Method};
use tix_corpus::CorpusSpec;
use tix_exec::pick::PickParams;
use tix_exec::termjoin::SimpleScorer;
use tix_index::InvertedIndex;

struct Row {
    name: &'static str,
    /// `(threads, averaged wall-clock)` per measured thread count.
    timings: Vec<(usize, Duration)>,
}

impl Row {
    fn speedup(&self, threads: usize) -> f64 {
        let base = self.timings[0].1.as_secs_f64();
        let t = self
            .timings
            .iter()
            .find(|(n, _)| *n == threads)
            .expect("measured thread count")
            .1
            .as_secs_f64();
        base / t.max(1e-12)
    }
}

fn main() {
    let articles: usize = env_parse("TIX_ARTICLES", 200);
    let scale: f64 = env_parse("TIX_SCALE", 0.1);
    let threads_axis: Vec<usize> = std::env::var("TIX_BENCH_THREADS")
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    let threads_axis = if threads_axis.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        threads_axis
    };
    assert_eq!(
        threads_axis[0], 1,
        "the first thread count must be 1 (speedup baseline)"
    );

    let spec = CorpusSpec {
        articles,
        ..CorpusSpec::small()
    };
    let insertions = tix_corpus::workloads::paper_plants(scale).total_insertions();
    let capacity = spec.paragraph_count() * 8;
    if insertions > capacity {
        eprintln!(
            "error: the paper workload plants {insertions} term occurrences but \
             {articles} articles only hold {capacity}; raise TIX_ARTICLES or \
             lower TIX_SCALE (e.g. TIX_ARTICLES=200 TIX_SCALE=0.1)"
        );
        std::process::exit(2);
    }
    eprintln!("building fixture: {articles} articles, scale {scale} …");
    let fixture = Fixture::build(spec.clone(), scale);
    eprintln!(
        "corpus: {} docs, {} terms, {} tokens",
        fixture.store.doc_ids().count(),
        fixture.index.term_count(),
        fixture.index.total_tokens()
    );

    let scorer = SimpleScorer::new(vec![0.8, 0.6]);
    let tj_terms = ["qt1000a", "qt1000b"];
    let phrase_terms = ["ph0a", "ph0b"];
    let pick_input = fixture.pick_input(20_000.min(fixture.store.doc_ids().count() * 100));
    let pick = PickParams {
        relevance_threshold: 1.0,
        fraction: 0.5,
    };
    let batch: Vec<Vec<&str>> = vec![
        vec!["qt1000a"],
        vec!["qt1000a", "qt1000b"],
        vec!["qt100a", "qt100b"],
        vec!["ph0a", "ph0b"],
        vec!["qt2000a"],
        vec!["qt2000a", "qt2000b"],
        vec!["qt500a", "qt500b"],
        vec!["t3fix", "t4x0"],
    ];

    // `Database` owns its store, so regenerate the (deterministic) corpus
    // into it rather than copying the fixture's.
    let mut db = Database::new();
    let generator = tix_corpus::Generator::new(spec, tix_corpus::workloads::paper_plants(scale))
        .expect("valid paper plant spec");
    generator.load_into(db.store_mut()).expect("corpus loads");
    db.set_threads(1);
    db.build_index();

    let expected_tj = fixture.run_method(Method::TermJoin, &tj_terms, &scorer);
    let expected_ph = fixture.run_phrase_parallel(&phrase_terms, 1);
    let expected_pick = fixture.run_pick(&pick_input);

    let mut rows: Vec<Row> = Vec::new();
    let mut measure = |name: &'static str, mut run: Box<dyn FnMut(usize) + '_>| {
        let timings = threads_axis
            .iter()
            .map(|&threads| {
                let d = paper_timing(|| run(threads));
                eprintln!("  {name} @ {threads}: {} ms", fmt_ms(d));
                (threads, d)
            })
            .collect();
        rows.push(Row { name, timings });
    };

    measure(
        "index-build",
        Box::new(|threads| {
            let index = InvertedIndex::build_with_threads(&fixture.store, threads);
            assert_eq!(index.term_count(), fixture.index.term_count());
        }),
    );
    measure(
        "term-join",
        Box::new(|threads| {
            let n = fixture.run_method_parallel(Method::TermJoin, &tj_terms, &scorer, threads);
            assert_eq!(n, expected_tj);
        }),
    );
    measure(
        "phrase-finder",
        Box::new(|threads| {
            let n = fixture.run_phrase_parallel(&phrase_terms, threads);
            assert_eq!(n, expected_ph);
        }),
    );
    measure(
        "pick",
        Box::new(|threads| {
            let n = fixture.run_pick_parallel(&pick_input, threads);
            assert_eq!(n, expected_pick);
        }),
    );
    measure(
        "search-batch",
        Box::new(|threads| {
            db.set_threads(threads);
            let results = db.search_batch(&batch, pick, 10);
            assert_eq!(results.len(), batch.len());
        }),
    );

    print_and_save(&rows, &threads_axis, articles, scale);
}

fn print_and_save(rows: &[Row], threads_axis: &[usize], articles: usize, scale: f64) {
    let mut table = String::new();
    let mut header = String::from("| method |");
    let mut rule = String::from("|---|");
    for &t in threads_axis {
        write!(header, " {t} thr (ms) |").unwrap();
        rule.push_str("---:|");
    }
    for &t in &threads_axis[1..] {
        write!(header, " ×{t} speedup |").unwrap();
        rule.push_str("---:|");
    }
    table.push_str(&header);
    table.push('\n');
    table.push_str(&rule);
    table.push('\n');
    for row in rows {
        write!(table, "| {} |", row.name).unwrap();
        for (_, d) in &row.timings {
            write!(table, " {} |", fmt_ms(*d)).unwrap();
        }
        for &t in &threads_axis[1..] {
            write!(table, " {:.2} |", row.speedup(t)).unwrap();
        }
        table.push('\n');
    }
    println!("\n## Thread scaling ({articles} articles, scale {scale})\n\n{table}");

    let mut json = String::from("{\n");
    writeln!(json, "  \"experiment\": \"thread-scaling\",").unwrap();
    writeln!(json, "  \"articles\": {articles},").unwrap();
    writeln!(json, "  \"scale\": {scale},").unwrap();
    writeln!(
        json,
        "  \"threads\": [{}],",
        threads_axis
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    json.push_str("  \"methods\": {\n");
    for (i, row) in rows.iter().enumerate() {
        writeln!(json, "    \"{}\": {{", row.name).unwrap();
        let ms: Vec<String> = row
            .timings
            .iter()
            .map(|(_, d)| format!("{:.4}", d.as_secs_f64() * 1e3))
            .collect();
        writeln!(json, "      \"wall_ms\": [{}],", ms.join(", ")).unwrap();
        let speedups: Vec<String> = threads_axis[1..]
            .iter()
            .map(|&t| format!("{:.3}", row.speedup(t)))
            .collect();
        writeln!(json, "      \"speedup_vs_1\": [{}]", speedups.join(", ")).unwrap();
        json.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_scaling.json";
    std::fs::write(path, &json).expect("write BENCH_scaling.json");
    eprintln!("wrote {path}");
}

fn env_parse<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
