//! Shared fixtures and timing helpers for the experiment harness.
//!
//! Two consumers use this crate:
//!
//! * the **`reproduce`** binary — regenerates every table of the paper's
//!   Sec. 6 with the paper's own methodology ("Each experiment was run
//!   five times. The lowest and highest readings were ignored and the
//!   remaining three were averaged");
//! * the **Criterion benches** (`benches/table*.rs`, `benches/pick.rs`) —
//!   statistical micro-benchmarks over representative rows of each table,
//!   on a smaller corpus so `cargo bench` completes in minutes.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use tix_corpus::{workloads, CorpusSpec, Generator};
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::scored::ScoredNode;
use tix_exec::termjoin::TermJoinScorer;
use tix_index::InvertedIndex;
use tix_store::{NodeKind, NodeRef, Store};

/// A loaded-and-indexed experiment corpus with every planted term of the
/// paper's workload grids.
pub struct Fixture {
    /// The database.
    pub store: Store,
    /// The positional inverted index.
    pub index: InvertedIndex,
    /// The plant scale factor: planted frequency = paper frequency × scale.
    pub scale: f64,
}

impl Fixture {
    /// Build a fixture: a corpus of `spec`'s shape with
    /// `workloads::paper_plants(scale)` planted.
    pub fn build(spec: CorpusSpec, scale: f64) -> Self {
        let plants = workloads::paper_plants(scale);
        let generator = Generator::new(spec, plants).expect("valid paper plant spec");
        let mut store = Store::new();
        generator.load_into(&mut store).expect("corpus loads");
        let index = InvertedIndex::build(&store);
        Fixture {
            store,
            index,
            scale,
        }
    }

    /// The benchmark-scale fixture (the default corpus, full paper
    /// frequencies). Built once per process.
    pub fn full() -> &'static Fixture {
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| Fixture::build(CorpusSpec::default(), 1.0))
    }

    /// A small fixture for Criterion runs: 1/10 frequencies on the small
    /// corpus shape. Built once per process.
    pub fn small() -> &'static Fixture {
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| Fixture::build(CorpusSpec::small(), 0.1))
    }

    /// Run a score-generating method over `terms` and return the result
    /// count (keeps the optimizer honest in timing loops).
    pub fn run_method<S: TermJoinScorer>(
        &self,
        method: Method,
        terms: &[&str],
        scorer: &S,
    ) -> usize {
        match method {
            Method::TermJoin | Method::EnhancedTermJoin => {
                tix_exec::termjoin::TermJoin::new(&self.store, &self.index, terms, scorer)
                    .run()
                    .len()
            }
            Method::Comp1 => {
                tix_exec::composite::comp1(&self.store, &self.index, terms, scorer).len()
            }
            Method::Comp2 => {
                tix_exec::composite::comp2(&self.store, &self.index, terms, scorer).len()
            }
            Method::GeneralizedMeet => {
                tix_exec::meet::generalized_meet(&self.store, &self.index, terms, scorer).len()
            }
        }
    }

    /// A document-ordered scored stream of `n` elements for the Pick
    /// experiment: the first `n` elements of the corpus with deterministic
    /// pseudo-random scores in [0, 2).
    pub fn pick_input(&self, n: usize) -> Vec<ScoredNode> {
        let mut out = Vec::with_capacity(n);
        'outer: for doc in self.store.doc_ids() {
            let len = self.store.doc(doc).len() as u32;
            for i in 0..len {
                let node = NodeRef::new(doc, tix_store::NodeIdx(i));
                if self.store.kind(node) != NodeKind::Element {
                    continue;
                }
                // SplitMix-style hash of the node address → score in [0,2).
                let mut h = (doc.0 as u64) << 32 | i as u64;
                h = h.wrapping_mul(0x9E3779B97F4A7C15);
                h ^= h >> 29;
                let score = (h % 2000) as f64 / 1000.0;
                out.push(ScoredNode::new(node, score));
                if out.len() == n {
                    break 'outer;
                }
            }
        }
        out
    }

    /// Time one Pick run over an input of `n` nodes.
    pub fn run_pick(&self, input: &[ScoredNode]) -> usize {
        pick_stream(&self.store, input, &PickParams::paper()).len()
    }

    /// [`Fixture::run_method`] for the parallel TermJoin variant: the same
    /// scored output, document-partitioned over `threads` workers. Only
    /// meaningful for the TermJoin methods (the baselines have no parallel
    /// implementation); panics on other methods.
    pub fn run_method_parallel<S: TermJoinScorer>(
        &self,
        method: Method,
        terms: &[&str],
        scorer: &S,
        threads: usize,
    ) -> usize {
        match method {
            Method::TermJoin | Method::EnhancedTermJoin => tix_exec::parallel::term_join_parallel(
                &self.store,
                &self.index,
                terms,
                scorer,
                threads,
            )
            .len(),
            other => panic!("{} has no parallel variant", other.label()),
        }
    }

    /// One PhraseFinder run over `threads` workers; returns the match count.
    pub fn run_phrase_parallel(&self, terms: &[&str], threads: usize) -> usize {
        tix_exec::parallel::phrase_finder_parallel(&self.store, &self.index, terms, threads).len()
    }

    /// One Pick run over `threads` workers; returns the picked count.
    pub fn run_pick_parallel(&self, input: &[ScoredNode], threads: usize) -> usize {
        tix_exec::parallel::pick_stream_parallel(&self.store, input, &PickParams::paper(), threads)
            .len()
    }
}

/// The score-generating methods compared in Tables 1–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's Comp1 (standard operators, ancestor expansion).
    Comp1,
    /// The paper's Comp2 (structural joins pushed down).
    Comp2,
    /// Generalized Meet.
    GeneralizedMeet,
    /// The TermJoin access method.
    TermJoin,
    /// Enhanced TermJoin (child-count index; complex scoring only).
    EnhancedTermJoin,
}

impl Method {
    /// Column label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::Comp1 => "Comp1",
            Method::Comp2 => "Comp2",
            Method::GeneralizedMeet => "Gen.Meet",
            Method::TermJoin => "TermJoin",
            Method::EnhancedTermJoin => "Enhanced",
        }
    }
}

/// The paper's timing methodology: run five times, drop the fastest and
/// slowest, average the remaining three.
pub fn paper_timing(mut run: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..5)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed()
        })
        .collect();
    samples.sort();
    let kept = &samples[1..4];
    kept.iter().sum::<Duration>() / 3
}

/// Format a duration as milliseconds with sensible precision.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fixture_has_planted_terms() {
        let fixture = Fixture::small();
        // 1/10 of the paper's 1,000-frequency pair.
        assert_eq!(fixture.index.collection_frequency("qt1000a"), 100);
        assert_eq!(fixture.index.collection_frequency("qt1000b"), 100);
    }

    #[test]
    fn methods_agree_on_fixture() {
        let fixture = Fixture::small();
        let scorer = tix_exec::termjoin::SimpleScorer::new(vec![0.8, 0.6]);
        let terms = ["qt1000a", "qt1000b"];
        let n = fixture.run_method(Method::TermJoin, &terms, &scorer);
        assert!(n > 0);
        assert_eq!(fixture.run_method(Method::Comp1, &terms, &scorer), n);
        assert_eq!(fixture.run_method(Method::Comp2, &terms, &scorer), n);
        assert_eq!(
            fixture.run_method(Method::GeneralizedMeet, &terms, &scorer),
            n
        );
    }

    #[test]
    fn pick_input_sizes() {
        let fixture = Fixture::small();
        let input = fixture.pick_input(500);
        assert_eq!(input.len(), 500);
        assert!(input.windows(2).all(|w| w[0].node < w[1].node));
        let picked = fixture.run_pick(&input);
        assert!(picked > 0 && picked < 500);
    }

    #[test]
    fn paper_timing_averages() {
        let d = paper_timing(|| std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
    }
}
