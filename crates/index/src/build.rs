//! Index construction and lookup.

use std::collections::HashMap;

use tix_store::{DocId, NodeIdx, NodeKind, NodeRef, Store};

use crate::postings::{Posting, PostingList, TermId, TermStats};
use crate::tokenize::tokenize;

/// A positional inverted index over every text node in a [`Store`].
///
/// Built once after loading; the store is immutable afterwards (the paper's
/// experiments are all read-only over a loaded INEX corpus).
#[derive(Debug, Default)]
pub struct InvertedIndex {
    dictionary: HashMap<String, TermId>,
    term_names: Vec<String>,
    lists: Vec<PostingList>,
    /// Total tokens indexed (collection length, for scoring normalization).
    total_tokens: u64,
}

impl InvertedIndex {
    /// Index every text node of every document in `store`.
    ///
    /// Word offsets restart at 0 for each document and increase across
    /// text-node boundaries in document order.
    pub fn build(store: &Store) -> Self {
        let mut index = InvertedIndex::default();
        for doc_id in store.doc_ids() {
            index.index_document(store, doc_id);
        }
        index.check_postings_sorted();
        index
    }

    /// [`build`](Self::build), but with per-document posting extraction
    /// fanned out over `threads` workers.
    ///
    /// The result is **identical** to the sequential build — same term-id
    /// assignment, same posting order, byte-identical snapshot — for any
    /// thread count. Extraction records each document's terms in
    /// first-occurrence order; the merge then walks documents in document
    /// order and interns terms in that recorded order, which reproduces
    /// exactly the interleaving the sequential pass would have seen.
    /// `threads <= 1` degrades to a sequential extract-and-merge on the
    /// calling thread.
    pub fn build_with_threads(store: &Store, threads: usize) -> Self {
        let doc_ids: Vec<DocId> = store.doc_ids().collect();
        let extracted = tix_parallel::parallel_map(&doc_ids, threads, |&doc_id| {
            extract_document(store, doc_id)
        });
        let mut index = InvertedIndex::default();
        for doc in extracted {
            index.total_tokens += doc.tokens;
            for (term, postings) in doc.terms {
                let id = index.intern(&term);
                let list = &mut index.lists[id.0 as usize];
                for posting in postings {
                    list.push(posting);
                }
            }
        }
        index.check_postings_sorted();
        index
    }

    /// Incrementally index one newly loaded document — the insert half of
    /// live index maintenance. No other list entry is touched, so the cost
    /// is proportional to the new document's tokens, not the collection.
    ///
    /// `doc_id` must be the **highest** document id in `store` (documents
    /// are appended by `Store::load_str`), so the new postings extend every
    /// affected list at its tail and global `(doc, node, offset)` order is
    /// preserved. New terms are interned in first-occurrence order, which
    /// is exactly where a from-scratch [`InvertedIndex::build`] over the
    /// grown store would put them — the maintained index stays
    /// byte-identical to a rebuild (see `canonicalize` for the delete-side
    /// argument).
    pub fn add_document(&mut self, store: &Store, doc_id: DocId) {
        tix_invariants::check! {
            assert!(
                doc_id.0 as usize + 1 == store.doc_count(),
                "add_document requires the appended (highest) document id"
            );
        }
        self.index_document(store, doc_id);
        self.check_postings_sorted();
    }

    /// Incrementally un-index a removed document — the delete half of live
    /// index maintenance, mirroring the dense-id compaction performed by
    /// `Store::remove_document`: `doc_id`'s postings are dropped and every
    /// posting of a later document is renumbered down by one. No
    /// re-tokenization happens; the cost is one pass over the posting
    /// lists.
    pub fn remove_document(&mut self, doc_id: DocId) {
        let mut removed_tokens = 0u64;
        for list in &mut self.lists {
            removed_tokens += list.remove_doc(doc_id) as u64;
        }
        self.total_tokens = self.total_tokens.saturating_sub(removed_tokens);
        self.canonicalize();
        self.check_postings_sorted();
    }

    /// Restore the canonical (from-scratch-rebuild) dictionary after a
    /// delete: drop terms whose posting lists emptied, and re-sort the
    /// dictionary into first-occurrence order.
    ///
    /// A sequential [`InvertedIndex::build`] interns each term when its
    /// first occurrence is scanned, and the scan visits occurrences in
    /// `(doc, node, offset)` order — so rebuild term-id order is exactly
    /// ascending order of each term's first posting, a key we can compute
    /// from the maintained lists alone. Sorting by it (first postings are
    /// unique: one token position holds one term) makes the maintained
    /// index serialize byte-identically to a rebuild over the mutated
    /// store, which is what the differential tests and the
    /// `check-invariants` equivalence assertion in `tix::Database` verify.
    fn canonicalize(&mut self) {
        let names = std::mem::take(&mut self.term_names);
        let lists = std::mem::take(&mut self.lists);
        let mut entries: Vec<(String, PostingList)> = names
            .into_iter()
            .zip(lists)
            .filter(|(_, list)| !list.is_empty())
            .collect();
        entries.sort_by_key(|(_, list)| {
            list.postings()
                .first()
                .map(|p| (p.doc.0, p.node.as_u32(), p.offset))
                .unwrap_or((u32::MAX, u32::MAX, u32::MAX))
        });
        self.dictionary.clear();
        self.term_names = Vec::with_capacity(entries.len());
        self.lists = Vec::with_capacity(entries.len());
        for (name, list) in entries {
            let id = TermId(self.term_names.len() as u32);
            self.dictionary.insert(name.clone(), id);
            self.term_names.push(name);
            self.lists.push(list);
        }
    }

    /// Debug/check-invariants postcondition: every posting list must be
    /// strictly increasing on `(doc, node, offset)` (Fig. 8's posting
    /// order), which is what `count_in_subtree`'s binary searches and the
    /// merge-based access methods rely on.
    fn check_postings_sorted(&self) {
        tix_invariants::check! {
            for list in &self.lists {
                let ps = list.postings();
                tix_invariants::assert_postings_sorted(ps.len(), |i| {
                    let p = &ps[i];
                    (p.doc.0, p.node.as_u32(), p.offset)
                });
            }
        }
    }

    fn index_document(&mut self, store: &Store, doc_id: DocId) {
        let doc = store.doc(doc_id);
        let mut offset = 0u32;
        for i in 0..doc.len() as u32 {
            let idx = NodeIdx(i);
            if doc.node(idx).kind() != NodeKind::Text {
                continue;
            }
            for token in tokenize(doc.text(idx)) {
                let term_id = self.intern(&token.term);
                self.lists[term_id.0 as usize].push(Posting {
                    doc: doc_id,
                    node: idx,
                    offset,
                });
                offset += 1;
                self.total_tokens += 1;
            }
        }
    }

    /// Assemble an index from per-term lists given in term-id
    /// (first-occurrence) order, as a pack/snapshot loader produces them.
    /// The caller guarantees each list is in canonical posting order and
    /// that the term order matches what a from-scratch rebuild would
    /// intern — both are re-checked under `check-invariants`.
    pub fn from_lists(
        lists: impl IntoIterator<Item = (String, PostingList)>,
        total_tokens: u64,
    ) -> Self {
        let mut index = InvertedIndex::default();
        for (term, list) in lists {
            index.insert_list(term, list);
        }
        index.set_total_tokens(total_tokens);
        index.check_postings_sorted();
        index
    }

    /// Register a fully-built posting list under `term` (snapshot loading).
    pub(crate) fn insert_list(&mut self, term: String, list: PostingList) {
        let id = TermId(self.term_names.len() as u32);
        self.dictionary.insert(term.clone(), id);
        self.term_names.push(term);
        self.lists.push(list);
    }

    /// Restore the collection-length counter (snapshot loading).
    pub(crate) fn set_total_tokens(&mut self, total: u64) {
        self.total_tokens = total;
    }

    fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.dictionary.get(term) {
            return id;
        }
        let id = TermId(self.term_names.len() as u32);
        self.term_names.push(term.to_string());
        self.dictionary.insert(term.to_string(), id);
        self.lists.push(PostingList::default());
        id
    }

    /// The dictionary id for `term` (case-sensitive on the normalized,
    /// i.e. lowercased, form).
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.dictionary.get(term).copied()
    }

    /// Resolve a term id back to its string.
    pub fn term_str(&self, id: TermId) -> &str {
        &self.term_names[id.0 as usize]
    }

    /// Posting list for `term`; empty slice if the term never occurs.
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.list(term).map(PostingList::postings).unwrap_or(&[])
    }

    /// The full posting-list structure for `term`.
    pub fn list(&self, term: &str) -> Option<&PostingList> {
        self.term_id(term).map(|id| &self.lists[id.0 as usize])
    }

    /// Posting list by id.
    pub fn list_by_id(&self, id: TermId) -> &PostingList {
        &self.lists[id.0 as usize]
    }

    /// Total occurrences of `term` in the collection — the "term frequency"
    /// axis of the paper's Tables 1–4.
    pub fn collection_frequency(&self, term: &str) -> usize {
        self.list(term)
            .map(PostingList::collection_frequency)
            .unwrap_or(0)
    }

    /// Number of distinct documents containing `term`.
    pub fn doc_frequency(&self, term: &str) -> u32 {
        self.list(term).map(PostingList::doc_frequency).unwrap_or(0)
    }

    /// Inverse document frequency with add-one smoothing:
    /// `ln((1 + N) / (1 + df))`.
    pub fn idf(&self, term: &str, total_docs: usize) -> f64 {
        let df = self.doc_frequency(term) as f64;
        ((1.0 + total_docs as f64) / (1.0 + df)).ln()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.term_names.len()
    }

    /// Total tokens indexed across the collection.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Every posting list, in term-id (first-occurrence) order.
    pub(crate) fn lists(&self) -> impl Iterator<Item = &PostingList> {
        self.lists.iter()
    }

    /// Statistics for every term (workload tooling).
    pub fn term_stats(&self) -> impl Iterator<Item = TermStats> + '_ {
        self.term_names
            .iter()
            .zip(&self.lists)
            .map(|(term, list)| TermStats {
                term: term.clone(),
                collection_frequency: list.collection_frequency(),
                doc_frequency: list.doc_frequency(),
                node_frequency: list.node_frequency(),
            })
    }

    /// Find terms whose collection frequency falls within
    /// `[target - tolerance, target + tolerance]`, sorted by distance from
    /// the target. Used by the benchmark harness to select query terms the
    /// way the paper did ("we kept selecting different pairs of terms ...
    /// with increasing term frequency").
    pub fn terms_with_frequency_near(&self, target: usize, tolerance: usize) -> Vec<TermStats> {
        let mut out: Vec<TermStats> = self
            .term_stats()
            .filter(|s| s.collection_frequency.abs_diff(target) <= tolerance)
            .collect();
        out.sort_by_key(|s| (s.collection_frequency.abs_diff(target), s.term.clone()));
        out
    }

    /// Count occurrences of `term` within the subtree rooted at `node` by
    /// binary-searching the posting list on the region encoding. This is the
    /// `count(term, $a/alltext())` primitive of the paper's `ScoreFoo`
    /// (Fig. 9), evaluated from the index rather than by re-tokenizing.
    pub fn count_in_subtree(&self, store: &Store, term: &str, node: NodeRef) -> usize {
        let postings = self.postings(term);
        let end = store.end_key(node);
        let lo = postings.partition_point(|p| (p.doc, p.node) < (node.doc, node.node));
        let hi = postings.partition_point(|p| (p.doc, p.node) <= (node.doc, end));
        hi - lo
    }
}

/// One document's postings as extracted by a parallel-build worker:
/// `terms` holds the document's distinct terms in first-occurrence order,
/// each with its postings in `(node, offset)` order.
struct DocPostings {
    terms: Vec<(String, Vec<Posting>)>,
    tokens: u64,
}

/// Tokenize one document into per-term posting runs. This is the per-worker
/// half of [`InvertedIndex::build_with_threads`]; it touches only `doc_id`'s
/// nodes, so any number of extractions can run concurrently over a shared
/// `&Store`.
fn extract_document(store: &Store, doc_id: DocId) -> DocPostings {
    let doc = store.doc(doc_id);
    let mut terms: Vec<(String, Vec<Posting>)> = Vec::new();
    let mut slots: HashMap<String, usize> = HashMap::new();
    let mut offset = 0u32;
    let mut tokens = 0u64;
    for i in 0..doc.len() as u32 {
        let idx = NodeIdx(i);
        if doc.node(idx).kind() != NodeKind::Text {
            continue;
        }
        for token in tokenize(doc.text(idx)) {
            let slot = match slots.get(&token.term) {
                Some(&slot) => slot,
                None => {
                    slots.insert(token.term.clone(), terms.len());
                    terms.push((token.term, Vec::new()));
                    terms.len() - 1
                }
            };
            terms[slot].1.push(Posting {
                doc: doc_id,
                node: idx,
                offset,
            });
            offset += 1;
            tokens += 1;
        }
    }
    DocPostings { terms, tokens }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::Store;

    fn indexed(xml: &str) -> (Store, InvertedIndex) {
        let mut store = Store::new();
        store.load_str("t.xml", xml).unwrap();
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    #[test]
    fn frequencies() {
        let (_, index) = indexed("<a><p>x y x</p><p>x</p></a>");
        assert_eq!(index.collection_frequency("x"), 3);
        assert_eq!(index.collection_frequency("y"), 1);
        assert_eq!(index.collection_frequency("z"), 0);
        assert_eq!(index.term_count(), 2);
        assert_eq!(index.total_tokens(), 4);
    }

    #[test]
    fn offsets_document_wide() {
        let (_, index) = indexed("<a><p>one two</p><p>three</p></a>");
        assert_eq!(index.postings("one")[0].offset, 0);
        assert_eq!(index.postings("two")[0].offset, 1);
        assert_eq!(index.postings("three")[0].offset, 2);
    }

    #[test]
    fn offsets_restart_per_document() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a>alpha</a>").unwrap();
        store.load_str("b.xml", "<a>beta</a>").unwrap();
        let index = InvertedIndex::build(&store);
        assert_eq!(index.postings("alpha")[0].offset, 0);
        assert_eq!(index.postings("beta")[0].offset, 0);
    }

    #[test]
    fn postings_in_document_order() {
        let (_, index) = indexed("<a><p>w</p><q><r>w</r></q><p>w</p></a>");
        let nodes: Vec<u32> = index
            .postings("w")
            .iter()
            .map(|p| p.node.as_u32())
            .collect();
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn case_normalization() {
        let (_, index) = indexed("<a>Search SEARCH search</a>");
        assert_eq!(index.collection_frequency("search"), 3);
        assert_eq!(index.collection_frequency("Search"), 0); // lookup is normalized form
    }

    #[test]
    fn doc_frequency_and_idf() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a>common rare</a>").unwrap();
        store.load_str("b.xml", "<a>common</a>").unwrap();
        let index = InvertedIndex::build(&store);
        assert_eq!(index.doc_frequency("common"), 2);
        assert_eq!(index.doc_frequency("rare"), 1);
        assert!(index.idf("rare", 2) > index.idf("common", 2));
    }

    #[test]
    fn count_in_subtree_via_region() {
        // a=0 [p=1 t=2] [q=3 [r=4 t=5] t=6]
        let (store, index) = indexed("<a><p>w</p><q><r>w w</r>w</q></a>");
        let a = NodeRef::new(DocId(0), NodeIdx(0));
        let q = NodeRef::new(DocId(0), NodeIdx(3));
        let p = NodeRef::new(DocId(0), NodeIdx(1));
        assert_eq!(index.count_in_subtree(&store, "w", a), 4);
        assert_eq!(index.count_in_subtree(&store, "w", q), 3);
        assert_eq!(index.count_in_subtree(&store, "w", p), 1);
        assert_eq!(index.count_in_subtree(&store, "missing", a), 0);
    }

    fn snapshot_bytes(index: &InvertedIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf).unwrap();
        buf
    }

    #[test]
    fn add_document_matches_rebuild_byte_for_byte() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a><p>alpha beta</p></a>").unwrap();
        store.load_str("b.xml", "<a>gamma alpha</a>").unwrap();
        let mut maintained = InvertedIndex::build(&store);
        let c = store
            .load_str("c.xml", "<a><p>beta delta</p><p>alpha</p></a>")
            .unwrap();
        maintained.add_document(&store, c);
        let rebuilt = InvertedIndex::build(&store);
        assert_eq!(snapshot_bytes(&maintained), snapshot_bytes(&rebuilt));
        assert_eq!(maintained.total_tokens(), rebuilt.total_tokens());
    }

    #[test]
    fn remove_document_matches_rebuild_byte_for_byte() {
        // "zeta" first occurs in the removed document but survives in a
        // later one: the rebuild interns it later, so this exercises the
        // canonical re-ordering, the empty-term drop ("only"), and the
        // dense renumbering all at once.
        let mut store = Store::new();
        store.load_str("a.xml", "<a>zeta alpha only</a>").unwrap();
        store.load_str("b.xml", "<a>beta</a>").unwrap();
        store.load_str("c.xml", "<a>alpha zeta</a>").unwrap();
        let mut maintained = InvertedIndex::build(&store);
        let removed = store.remove_document("a.xml").unwrap();
        maintained.remove_document(removed);
        let rebuilt = InvertedIndex::build(&store);
        assert_eq!(snapshot_bytes(&maintained), snapshot_bytes(&rebuilt));
        assert_eq!(maintained.collection_frequency("only"), 0);
        assert_eq!(maintained.term_id("only"), None);
        assert_eq!(maintained.doc_frequency("zeta"), 1);
        assert_eq!(maintained.total_tokens(), rebuilt.total_tokens());
    }

    #[test]
    fn remove_all_documents_empties_the_index() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a>x y</a>").unwrap();
        store.load_str("b.xml", "<a>x</a>").unwrap();
        let mut maintained = InvertedIndex::build(&store);
        for name in ["a.xml", "b.xml"] {
            let id = store.remove_document(name).unwrap();
            maintained.remove_document(id);
        }
        assert_eq!(maintained.term_count(), 0);
        assert_eq!(maintained.total_tokens(), 0);
        assert_eq!(
            snapshot_bytes(&maintained),
            snapshot_bytes(&InvertedIndex::build(&store))
        );
    }

    #[test]
    fn interleaved_maintenance_matches_rebuild() {
        let mut store = Store::new();
        let mut maintained = InvertedIndex::build(&store);
        let steps: Vec<(&str, Option<&str>)> = vec![
            ("d0.xml", Some("<a><p>red green</p></a>")),
            ("d1.xml", Some("<a>blue red</a>")),
            ("d0.xml", None),
            ("d2.xml", Some("<a><p>green green</p><p>yellow</p></a>")),
            ("d3.xml", Some("<a>red</a>")),
            ("d1.xml", None),
            ("d4.xml", Some("<a>blue</a>")),
            ("d3.xml", None),
        ];
        for (name, xml) in steps {
            match xml {
                Some(xml) => {
                    let id = store.load_str(name, xml).unwrap();
                    maintained.add_document(&store, id);
                }
                None => {
                    let id = store.remove_document(name).unwrap();
                    maintained.remove_document(id);
                }
            }
            assert_eq!(
                snapshot_bytes(&maintained),
                snapshot_bytes(&InvertedIndex::build(&store)),
                "after mutating {name}"
            );
        }
    }

    #[test]
    fn terms_with_frequency_near() {
        let (_, index) = indexed("<a><p>x x x x</p><p>y y</p><p>z</p></a>");
        let near2 = index.terms_with_frequency_near(2, 1);
        let names: Vec<_> = near2.iter().map(|s| s.term.as_str()).collect();
        assert_eq!(names, ["y", "z"]); // y exact (dist 0), z dist 1
    }
}
