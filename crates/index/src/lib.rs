//! # tix-index
//!
//! A positional inverted index over the [`tix_store`] node store.
//!
//! The paper's score-generating access methods (Sec. 5.1) assume "an index
//! look-up for an individual indexed term would at the very least return
//! identifiers of XML elements in which this term occurs ... one can easily
//! return more, such as the number of occurrences ... IR systems often keep
//! information regarding location in document for each occurrence of an
//! indexed term". This crate is that index:
//!
//! * every term occurrence becomes a [`Posting`] carrying the **text node**
//!   it occurs in and its **document-wide word offset** (what PhraseFinder
//!   uses for adjacency checks and the complex scoring function uses for
//!   term-distance);
//! * posting lists are kept in global document order `(doc, node, offset)`,
//!   the order the stack-based merge in TermJoin requires;
//! * per-term statistics (collection frequency, document frequency, node
//!   frequency) support tf·idf-style scoring and let the workload generator
//!   verify planted frequencies.
//!
//! ```
//! use tix_store::Store;
//! use tix_index::InvertedIndex;
//!
//! let mut store = Store::new();
//! store.load_str("d.xml", "<a><p>search engine basics</p><p>engine</p></a>").unwrap();
//! let index = InvertedIndex::build(&store);
//! assert_eq!(index.collection_frequency("engine"), 2);
//! assert_eq!(index.postings("search").len(), 1);
//! ```

mod build;
mod postings;
mod reader;
mod snapshot;
mod tokenize;

pub use build::InvertedIndex;
pub use postings::{Posting, PostingList, TermId, TermStats};
pub use reader::{BlockSummary, IndexReader, TermSummary};
pub use snapshot::{
    IndexSnapshotError, INDEX_SNAPSHOT_MAGIC, INDEX_SNAPSHOT_MIN_VERSION, INDEX_SNAPSHOT_VERSION,
};
pub use tokenize::{terms, tokenize, Token};
