//! Binary persistence for the inverted index.
//!
//! Rebuilding the index re-tokenizes the entire collection; for a corpus
//! in the paper's 500 MB class that is far more expensive than reading the
//! posting lists back. The format mirrors the store snapshot's style:
//!
//! ```text
//! magic "TIXIDX" + version u8
//! total_tokens u64
//! term count u32, then per term:
//!     name          : u32 len, bytes
//!     doc_frequency : u32
//!     node_frequency: u32
//!     postings      : u32 count, then (doc u32, node u32, offset u32)*
//! ```

use std::io::{self, Read, Write};

use tix_store::{DocId, NodeIdx};

use crate::build::InvertedIndex;
use crate::postings::{Posting, PostingList};

const MAGIC: &[u8; 6] = b"TIXIDX";
const VERSION: u8 = 1;

/// Errors raised while reading an index snapshot.
#[derive(Debug)]
pub enum IndexSnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an index snapshot.
    BadMagic,
    /// Unsupported version byte.
    UnsupportedVersion(u8),
    /// Structural corruption.
    Corrupt(&'static str),
}

impl std::fmt::Display for IndexSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexSnapshotError::Io(e) => write!(f, "index snapshot I/O error: {e}"),
            IndexSnapshotError::BadMagic => write!(f, "not a TIX index snapshot"),
            IndexSnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported index snapshot version {v}")
            }
            IndexSnapshotError::Corrupt(what) => write!(f, "corrupt index snapshot: {what}"),
        }
    }
}

impl std::error::Error for IndexSnapshotError {}

impl From<io::Error> for IndexSnapshotError {
    fn from(e: io::Error) -> Self {
        IndexSnapshotError::Io(e)
    }
}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

impl InvertedIndex {
    /// Serialize the index into `w`.
    pub fn save_snapshot(&self, mut w: impl Write) -> io::Result<()> {
        let w = &mut w;
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&self.total_tokens().to_le_bytes())?;
        w_u32(w, self.term_count() as u32)?;
        for id in 0..self.term_count() as u32 {
            let term_id = crate::postings::TermId(id);
            let name = self.term_str(term_id);
            w_u32(w, name.len() as u32)?;
            w.write_all(name.as_bytes())?;
            let list = self.list_by_id(term_id);
            w_u32(w, list.doc_frequency())?;
            w_u32(w, list.node_frequency())?;
            w_u32(w, list.postings().len() as u32)?;
            for p in list.postings() {
                w_u32(w, p.doc.0)?;
                w_u32(w, p.node.as_u32())?;
                w_u32(w, p.offset)?;
            }
        }
        Ok(())
    }

    /// Load an index written by [`InvertedIndex::save_snapshot`].
    pub fn load_snapshot(mut r: impl Read) -> Result<InvertedIndex, IndexSnapshotError> {
        let r = &mut r;
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(IndexSnapshotError::BadMagic);
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        let version = u8::from_le_bytes(version);
        if version != VERSION {
            return Err(IndexSnapshotError::UnsupportedVersion(version));
        }
        let mut total = [0u8; 8];
        r.read_exact(&mut total)?;
        let total_tokens = u64::from_le_bytes(total);
        let term_count = r_u32(r)? as usize;
        let mut index = InvertedIndex::default();
        for _ in 0..term_count {
            let name_len = r_u32(r)? as usize;
            // Cap speculative pre-allocation: a corrupt length prefix must
            // not force a huge up-front allocation.
            let mut name = Vec::with_capacity(name_len.min(1 << 20));
            let read = r.by_ref().take(name_len as u64).read_to_end(&mut name)?;
            if read != name_len {
                return Err(IndexSnapshotError::Corrupt("truncated term"));
            }
            let name = String::from_utf8(name)
                .map_err(|_| IndexSnapshotError::Corrupt("non-UTF-8 term"))?;
            let doc_frequency = r_u32(r)?;
            let node_frequency = r_u32(r)?;
            let posting_count = r_u32(r)? as usize;
            let mut postings = Vec::with_capacity(posting_count.min(1 << 20));
            let mut last: Option<Posting> = None;
            for _ in 0..posting_count {
                let posting = Posting {
                    doc: DocId(r_u32(r)?),
                    node: NodeIdx(r_u32(r)?),
                    offset: r_u32(r)?,
                };
                if let Some(prev) = last {
                    if prev >= posting {
                        return Err(IndexSnapshotError::Corrupt("postings out of order"));
                    }
                }
                last = Some(posting);
                postings.push(posting);
            }
            let list = PostingList::from_parts(postings, doc_frequency, node_frequency);
            index.insert_list(name, list);
        }
        index.set_total_tokens(total_tokens);
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::Store;

    fn sample_index() -> InvertedIndex {
        let mut store = Store::new();
        store
            .load_str("a.xml", "<a><p>alpha beta alpha</p><p>gamma</p></a>")
            .unwrap();
        store.load_str("b.xml", "<a><p>beta</p></a>").unwrap();
        InvertedIndex::build(&store)
    }

    fn roundtrip(index: &InvertedIndex) -> InvertedIndex {
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf).unwrap();
        InvertedIndex::load_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_postings_and_stats() {
        let index = sample_index();
        let loaded = roundtrip(&index);
        assert_eq!(index.term_count(), loaded.term_count());
        assert_eq!(index.total_tokens(), loaded.total_tokens());
        for term in ["alpha", "beta", "gamma"] {
            assert_eq!(index.postings(term), loaded.postings(term), "{term}");
            assert_eq!(
                index.doc_frequency(term),
                loaded.doc_frequency(term),
                "{term}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            InvertedIndex::load_snapshot(&b"GARBAGE!"[..]),
            Err(IndexSnapshotError::BadMagic)
        ));
    }

    #[test]
    fn truncation_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(InvertedIndex::load_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = InvertedIndex::default();
        let loaded = roundtrip(&index);
        assert_eq!(loaded.term_count(), 0);
        assert_eq!(loaded.total_tokens(), 0);
    }
}
