//! Binary persistence for the inverted index.
//!
//! Rebuilding the index re-tokenizes the entire collection; for a corpus
//! in the paper's 500 MB class that is far more expensive than reading the
//! posting lists back. The format mirrors the store snapshot's style.
//!
//! Format **v2** (current) wraps the payload in the checksummed section
//! framing of [`tix_store::persist`] and seals the whole file with a
//! trailing CRC-32, so a flipped bit is rejected as
//! [`IndexSnapshotError::Corrupt`] before any structural parsing:
//!
//! ```text
//! magic "TIXIDX" + version u8 (= 2)
//! header section    : u32 len, payload, u32 crc32(payload)
//!     payload = total_tokens u64, term count u32
//! term block section: one per 1024 terms, same framing
//!     payload = per term:
//!         name          : u32 len, bytes
//!         doc_frequency : u32
//!         node_frequency: u32
//!         postings      : u32 count, then (doc u32, node u32, offset u32)*
//! seal              : u32 crc32(all preceding bytes)
//! ```
//!
//! Format **v1** (still loadable) streams the same term encoding directly
//! after `total_tokens u64, term count u32` with no checksums.

use std::io::{self, Read, Write};

use tix_store::persist::{read_section, write_section, SealReader, SealWriter, SectionError};
use tix_store::{DocId, NodeIdx};

use crate::build::InvertedIndex;
use crate::postings::{Posting, PostingList, TermId};

/// Leading magic of every index snapshot, any version.
pub const INDEX_SNAPSHOT_MAGIC: &[u8; 6] = b"TIXIDX";
/// Snapshot version written by [`InvertedIndex::save_snapshot`].
pub const INDEX_SNAPSHOT_VERSION: u8 = 2;
/// Oldest version [`InvertedIndex::load_snapshot`] still accepts.
pub const INDEX_SNAPSHOT_MIN_VERSION: u8 = 1;

const MAGIC: &[u8; 6] = INDEX_SNAPSHOT_MAGIC;

/// Terms per checksummed section in v2: small enough that one corrupt
/// section is cheap to detect, large enough that framing overhead (8
/// bytes per section) is noise.
const TERMS_PER_SECTION: u32 = 1024;

/// Errors raised while reading or writing an index snapshot.
#[derive(Debug)]
pub enum IndexSnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an index snapshot.
    BadMagic,
    /// Unsupported version byte.
    UnsupportedVersion(u8),
    /// Structural or checksum corruption.
    Corrupt(&'static str),
    /// A collection is too large for the u32 length prefixes of the
    /// on-disk format; the snapshot is refused rather than truncated.
    TooLarge(&'static str),
}

impl std::fmt::Display for IndexSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexSnapshotError::Io(e) => write!(f, "index snapshot I/O error: {e}"),
            IndexSnapshotError::BadMagic => write!(f, "not a TIX index snapshot"),
            IndexSnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported index snapshot version {v}")
            }
            IndexSnapshotError::Corrupt(what) => write!(f, "corrupt index snapshot: {what}"),
            IndexSnapshotError::TooLarge(what) => {
                write!(f, "index snapshot not written: {what} exceeds format limit")
            }
        }
    }
}

impl std::error::Error for IndexSnapshotError {}

impl From<io::Error> for IndexSnapshotError {
    fn from(e: io::Error) -> Self {
        IndexSnapshotError::Io(e)
    }
}

fn section_err(e: SectionError) -> IndexSnapshotError {
    match e {
        SectionError::Io(e) => IndexSnapshotError::Io(e),
        SectionError::TooLarge => IndexSnapshotError::TooLarge("section"),
        SectionError::Truncated => IndexSnapshotError::Corrupt("truncated section"),
        SectionError::ChecksumMismatch => IndexSnapshotError::Corrupt("section checksum mismatch"),
    }
}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write a collection length as u32, refusing (rather than silently
/// truncating) anything that does not fit.
fn w_count(w: &mut impl Write, n: usize, what: &'static str) -> Result<(), IndexSnapshotError> {
    let v = u32::try_from(n).map_err(|_| IndexSnapshotError::TooLarge(what))?;
    w_u32(w, v)?;
    Ok(())
}

fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

// ---- shared per-term encoding (identical in v1 and v2) ---------------------

fn write_term(
    w: &mut impl Write,
    index: &InvertedIndex,
    term_id: TermId,
) -> Result<(), IndexSnapshotError> {
    let name = index.term_str(term_id);
    w_count(w, name.len(), "term name")?;
    w.write_all(name.as_bytes())?;
    let list = index.list_by_id(term_id);
    w_u32(w, list.doc_frequency())?;
    w_u32(w, list.node_frequency())?;
    w_count(w, list.postings().len(), "posting list")?;
    for p in list.postings() {
        w_u32(w, p.doc.0)?;
        w_u32(w, p.node.as_u32())?;
        w_u32(w, p.offset)?;
    }
    Ok(())
}

/// Decode one term and insert it into `index`.
fn read_term(r: &mut impl Read, index: &mut InvertedIndex) -> Result<(), IndexSnapshotError> {
    let name_len = r_u32(r)? as usize;
    // Cap speculative pre-allocation: a corrupt length prefix must
    // not force a huge up-front allocation.
    let mut name = Vec::with_capacity(name_len.min(1 << 20));
    let read = r.by_ref().take(name_len as u64).read_to_end(&mut name)?;
    if read != name_len {
        return Err(IndexSnapshotError::Corrupt("truncated term"));
    }
    let name =
        String::from_utf8(name).map_err(|_| IndexSnapshotError::Corrupt("non-UTF-8 term"))?;
    let doc_frequency = r_u32(r)?;
    let node_frequency = r_u32(r)?;
    let posting_count = r_u32(r)? as usize;
    let mut postings = Vec::with_capacity(posting_count.min(1 << 20));
    let mut last: Option<Posting> = None;
    for _ in 0..posting_count {
        let posting = Posting {
            doc: DocId(r_u32(r)?),
            node: NodeIdx(r_u32(r)?),
            offset: r_u32(r)?,
        };
        if let Some(prev) = last {
            if prev >= posting {
                return Err(IndexSnapshotError::Corrupt("postings out of order"));
            }
        }
        last = Some(posting);
        postings.push(posting);
    }
    let list = PostingList::from_parts(postings, doc_frequency, node_frequency);
    index.insert_list(name, list);
    Ok(())
}

impl InvertedIndex {
    /// Serialize the index into `w` in the current (v2, checksummed)
    /// format.
    pub fn save_snapshot(&self, w: impl Write) -> Result<(), IndexSnapshotError> {
        let mut w = SealWriter::new(w);
        w.write_all(MAGIC)?;
        w.write_all(&[INDEX_SNAPSHOT_VERSION])?;
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.total_tokens().to_le_bytes());
        w_count(&mut payload, self.term_count(), "term table")?;
        write_section(&mut w, &mut payload).map_err(section_err)?;
        let term_count = u32::try_from(self.term_count())
            .map_err(|_| IndexSnapshotError::TooLarge("term table"))?;
        for id in 0..term_count {
            write_term(&mut payload, self, TermId(id))?;
            if (id + 1) % TERMS_PER_SECTION == 0 {
                write_section(&mut w, &mut payload).map_err(section_err)?;
            }
        }
        if !payload.is_empty() || term_count % TERMS_PER_SECTION != 0 {
            write_section(&mut w, &mut payload).map_err(section_err)?;
        }
        w.write_seal()?;
        Ok(())
    }

    /// Serialize in the legacy v1 (unchecksummed) format. Kept for
    /// backward-compatibility and structural-corruption tests; new code
    /// should use [`InvertedIndex::save_snapshot`].
    #[doc(hidden)]
    pub fn save_snapshot_v1(&self, mut w: impl Write) -> Result<(), IndexSnapshotError> {
        let w = &mut w;
        w.write_all(MAGIC)?;
        w.write_all(&[1u8])?;
        w.write_all(&self.total_tokens().to_le_bytes())?;
        w_count(w, self.term_count(), "term table")?;
        let term_count = u32::try_from(self.term_count())
            .map_err(|_| IndexSnapshotError::TooLarge("term table"))?;
        for id in 0..term_count {
            write_term(w, self, TermId(id))?;
        }
        Ok(())
    }

    /// Load an index written by [`InvertedIndex::save_snapshot`] (v2) or
    /// the legacy v1 writer.
    pub fn load_snapshot(mut r: impl Read) -> Result<InvertedIndex, IndexSnapshotError> {
        let r = &mut r;
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(IndexSnapshotError::BadMagic);
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        let version = u8::from_le_bytes(version);
        match version {
            1 => load_v1(r),
            INDEX_SNAPSHOT_VERSION => load_v2(r),
            other => Err(IndexSnapshotError::UnsupportedVersion(other)),
        }
    }
}

/// Legacy streaming loader: everything after the header is structural
/// bytes with no checksums.
fn load_v1(r: &mut impl Read) -> Result<InvertedIndex, IndexSnapshotError> {
    let mut total = [0u8; 8];
    r.read_exact(&mut total)?;
    let total_tokens = u64::from_le_bytes(total);
    let term_count = r_u32(r)? as usize;
    let mut index = InvertedIndex::default();
    for _ in 0..term_count {
        read_term(r, &mut index)?;
    }
    index.set_total_tokens(total_tokens);
    Ok(index)
}

/// Checksummed loader: every section's CRC-32 is verified before its
/// bytes are parsed, and the trailing whole-file seal is verified last.
fn load_v2(r: &mut impl Read) -> Result<InvertedIndex, IndexSnapshotError> {
    let mut sealed = SealReader::new(r);
    sealed.seed(MAGIC);
    sealed.seed(&[INDEX_SNAPSHOT_VERSION]);
    let header = read_section(&mut sealed).map_err(section_err)?;
    let hr = &mut header.as_slice();
    let mut total = [0u8; 8];
    hr.read_exact(&mut total)
        .map_err(|_| IndexSnapshotError::Corrupt("short header section"))?;
    let total_tokens = u64::from_le_bytes(total);
    let term_count = r_u32(hr).map_err(|_| IndexSnapshotError::Corrupt("short header section"))?;
    if !hr.is_empty() {
        return Err(IndexSnapshotError::Corrupt(
            "trailing bytes in header section",
        ));
    }
    let mut index = InvertedIndex::default();
    let mut remaining = term_count;
    while remaining > 0 {
        let block = remaining.min(TERMS_PER_SECTION);
        let section = read_section(&mut sealed).map_err(section_err)?;
        let br = &mut section.as_slice();
        for _ in 0..block {
            read_term(br, &mut index)?;
        }
        if !br.is_empty() {
            return Err(IndexSnapshotError::Corrupt(
                "trailing bytes in term section",
            ));
        }
        remaining -= block;
    }
    sealed.verify_seal().map_err(section_err)?;
    index.set_total_tokens(total_tokens);
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::Store;

    fn sample_index() -> InvertedIndex {
        let mut store = Store::new();
        store
            .load_str("a.xml", "<a><p>alpha beta alpha</p><p>gamma</p></a>")
            .unwrap();
        store.load_str("b.xml", "<a><p>beta</p></a>").unwrap();
        InvertedIndex::build(&store)
    }

    fn roundtrip(index: &InvertedIndex) -> InvertedIndex {
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf).unwrap();
        InvertedIndex::load_snapshot(buf.as_slice()).unwrap()
    }

    fn assert_same(a: &InvertedIndex, b: &InvertedIndex) {
        assert_eq!(a.term_count(), b.term_count());
        assert_eq!(a.total_tokens(), b.total_tokens());
        for term in ["alpha", "beta", "gamma"] {
            assert_eq!(a.postings(term), b.postings(term), "{term}");
            assert_eq!(a.doc_frequency(term), b.doc_frequency(term), "{term}");
        }
    }

    #[test]
    fn roundtrip_preserves_postings_and_stats() {
        let index = sample_index();
        let loaded = roundtrip(&index);
        assert_same(&index, &loaded);
    }

    #[test]
    fn v1_snapshot_still_loads() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save_snapshot_v1(&mut buf).unwrap();
        assert_eq!(buf[6], 1, "v1 writer stamps version 1");
        let loaded = InvertedIndex::load_snapshot(buf.as_slice()).unwrap();
        assert_same(&index, &loaded);
    }

    #[test]
    fn v2_snapshot_is_sealed() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf).unwrap();
        assert_eq!(buf[6], INDEX_SNAPSHOT_VERSION);
        tix_invariants::try_snapshot_sealed(MAGIC, &buf).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            InvertedIndex::load_snapshot(&b"GARBAGE!"[..]),
            Err(IndexSnapshotError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf).unwrap();
        buf[6] = 77; // version byte
        assert!(matches!(
            InvertedIndex::load_snapshot(buf.as_slice()),
            Err(IndexSnapshotError::UnsupportedVersion(77))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(InvertedIndex::load_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn oversized_count_refused_not_truncated() {
        let mut buf = Vec::new();
        let err = w_count(&mut buf, u32::MAX as usize + 1, "posting list").unwrap_err();
        assert!(matches!(err, IndexSnapshotError::TooLarge("posting list")));
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = InvertedIndex::default();
        let loaded = roundtrip(&index);
        assert_eq!(loaded.term_count(), 0);
        assert_eq!(loaded.total_tokens(), 0);
    }

    #[test]
    fn multi_section_boundaries_roundtrip() {
        // Synthesize indexes whose term counts straddle the section size so
        // the block math (full sections, partial tail, exact multiple) is
        // exercised without building a million-term corpus.
        for count in [
            TERMS_PER_SECTION - 1,
            TERMS_PER_SECTION,
            TERMS_PER_SECTION + 1,
        ] {
            let mut index = InvertedIndex::default();
            for i in 0..count {
                let posting = Posting {
                    doc: DocId(0),
                    node: NodeIdx(1),
                    offset: i,
                };
                index.insert_list(
                    format!("t{i:05}"),
                    PostingList::from_parts(vec![posting], 1, 1),
                );
            }
            index.set_total_tokens(u64::from(count));
            let mut buf = Vec::new();
            index.save_snapshot(&mut buf).unwrap();
            let loaded = InvertedIndex::load_snapshot(buf.as_slice()).unwrap();
            assert_eq!(loaded.term_count(), count as usize, "count {count}");
            assert_eq!(loaded.postings("t00000").len(), 1);
        }
    }
}
