//! The dual-representation index abstraction.
//!
//! PR 10 introduces a second physical index representation (the `TIXPAK`
//! compressed, load-by-reference v3 format in `tix-pack`) next to the
//! in-memory [`InvertedIndex`]. Every score-generating access method in
//! `tix-exec` consumes the index through this trait, so the executor is
//! byte-for-byte agnostic to which representation is behind it — the
//! differential proptests in `crates/pack/tests/differential.rs` hold the
//! two implementations to exactly that bar.
//!
//! The trait is deliberately small: posting access plus the per-term
//! statistics the planner and scorers read. Everything else (snapshot
//! writing, incremental maintenance) stays on the concrete types, because
//! only the in-memory representation supports mutation.

use tix_store::{NodeRef, Store};

use crate::build::InvertedIndex;
use crate::postings::{Posting, PostingList};

/// Skip metadata for one fixed-size block of a compressed posting list
/// (v3 `TIXPAK` format; see `tix-pack`).
///
/// `max_doc_count` is the block-max WAND statistic: the maximum, over
/// documents whose postings *intersect* this block, of that document's
/// **total** posting count for the term across the whole list. The
/// whole-list total (not the within-block count) is what makes the
/// suffix-maximum over unscanned blocks a sound componentwise bound on
/// any unseen node's term-counter vector even when a document's postings
/// straddle a block boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSummary {
    /// First document id with a posting in this block.
    pub first_doc: u32,
    /// Last document id with a posting in this block (the max-DocId skip
    /// entry: a cursor past `last_doc` can skip the whole block).
    pub last_doc: u32,
    /// Number of postings stored in this block.
    pub postings: u32,
    /// Block-max statistic; see the type-level docs.
    pub max_doc_count: u32,
}

impl BlockSummary {
    /// The block's maximum per-document score contribution as IEEE-754
    /// bits, the exact representation persisted in the v3 metadata. Counts
    /// up to 2^24 convert exactly, so the round-trip is lossless.
    pub fn max_score_bits(&self) -> u64 {
        f64::from(self.max_doc_count).to_bits()
    }
}

/// Per-term statistics as one value (the planner's unit of lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermSummary {
    /// Total occurrences of the term across the collection.
    pub collection_frequency: usize,
    /// Number of distinct documents containing the term.
    pub doc_frequency: u32,
    /// Number of distinct text nodes containing the term.
    pub node_frequency: u32,
}

/// Read-only access to a positional inverted index, independent of the
/// physical representation (in-memory v2 vectors or the compressed
/// load-by-reference v3 `TIXPAK` format).
///
/// `Sync` is a supertrait because the parallel access methods share one
/// `&dyn IndexReader` across scoped worker threads.
pub trait IndexReader: Sync {
    /// The term's postings in `(doc, node, offset)` order; empty when the
    /// term is absent. Representations may decode lazily behind this call,
    /// but the returned slice is stable for the reader's lifetime.
    fn postings(&self, term: &str) -> &[Posting];

    /// Frequency statistics for `term`, or `None` when absent.
    fn term_summary(&self, term: &str) -> Option<TermSummary>;

    /// Number of distinct terms.
    fn term_count(&self) -> usize;

    /// Total tokens indexed across the collection.
    fn total_tokens(&self) -> u64;

    /// Document frequency of every term, in no particular order (the
    /// planner's selectivity histogram input).
    fn doc_frequencies(&self) -> Vec<u32>;

    /// Per-block skip metadata for `term`, when this representation
    /// carries it (v3 only). `None` disables block-max skipping — never
    /// correctness, only the early exit's tightness.
    fn block_summaries(&self, _term: &str) -> Option<&[BlockSummary]> {
        None
    }

    /// The term's maximum whole-document posting count, when the
    /// representation carries block metadata (v3 only).
    fn max_doc_count(&self, term: &str) -> Option<u32> {
        self.block_summaries(term)
            .map(|blocks| blocks.iter().map(|b| b.max_doc_count).max().unwrap_or(0))
    }

    /// Number of distinct documents containing `term` (0 when absent).
    fn doc_frequency(&self, term: &str) -> u32 {
        self.term_summary(term)
            .map(|s| s.doc_frequency)
            .unwrap_or(0)
    }

    /// Total occurrences of `term` across the collection (0 when absent).
    fn collection_frequency(&self, term: &str) -> usize {
        self.term_summary(term)
            .map(|s| s.collection_frequency)
            .unwrap_or(0)
    }

    /// Inverse document frequency with add-one smoothing:
    /// `ln((1 + N) / (1 + df))`. Identical formula across representations
    /// (byte-identity of scores depends on it).
    fn idf(&self, term: &str, total_docs: usize) -> f64 {
        let df = f64::from(self.doc_frequency(term));
        ((1.0 + total_docs as f64) / (1.0 + df)).ln()
    }

    /// Occurrences of `term` within the subtree rooted at `node`, via two
    /// binary searches over the term's postings (Sec. 4.1's tf within a
    /// returned element).
    fn count_in_subtree(&self, store: &Store, term: &str, node: NodeRef) -> usize {
        let postings = self.postings(term);
        let end = store.end_key(node);
        let lo = postings.partition_point(|p| (p.doc, p.node) < (node.doc, node.node));
        let hi = postings.partition_point(|p| (p.doc, p.node) <= (node.doc, end));
        hi - lo
    }
}

impl IndexReader for InvertedIndex {
    fn postings(&self, term: &str) -> &[Posting] {
        InvertedIndex::postings(self, term)
    }

    fn term_summary(&self, term: &str) -> Option<TermSummary> {
        self.list(term).map(|list| TermSummary {
            collection_frequency: list.collection_frequency(),
            doc_frequency: list.doc_frequency(),
            node_frequency: list.node_frequency(),
        })
    }

    fn term_count(&self) -> usize {
        InvertedIndex::term_count(self)
    }

    fn total_tokens(&self) -> u64 {
        InvertedIndex::total_tokens(self)
    }

    fn doc_frequencies(&self) -> Vec<u32> {
        self.lists().map(PostingList::doc_frequency).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        store
            .load_str("a.xml", "<a><p>alpha beta alpha</p><p>beta</p></a>")
            .unwrap();
        store.load_str("b.xml", "<a><p>beta</p></a>").unwrap();
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    #[test]
    fn trait_and_inherent_views_agree() {
        let (store, index) = sample();
        let reader: &dyn IndexReader = &index;
        assert_eq!(reader.postings("alpha"), index.postings("alpha"));
        assert_eq!(reader.doc_frequency("beta"), index.doc_frequency("beta"));
        assert_eq!(
            reader.collection_frequency("beta"),
            index.collection_frequency("beta")
        );
        assert_eq!(reader.term_count(), index.term_count());
        assert_eq!(reader.total_tokens(), index.total_tokens());
        assert_eq!(
            reader.idf("beta", 2).to_bits(),
            index.idf("beta", 2).to_bits()
        );
        let root = NodeRef::new(tix_store::DocId(0), tix_store::NodeIdx(0));
        assert_eq!(
            reader.count_in_subtree(&store, "alpha", root),
            index.count_in_subtree(&store, "alpha", root)
        );
        assert!(reader.block_summaries("alpha").is_none());
        assert!(reader.max_doc_count("alpha").is_none());
    }

    #[test]
    fn summary_of_absent_term_is_none() {
        let (_store, index) = sample();
        let reader: &dyn IndexReader = &index;
        assert!(reader.term_summary("absent").is_none());
        assert_eq!(reader.doc_frequency("absent"), 0);
        assert_eq!(reader.collection_frequency("absent"), 0);
    }

    #[test]
    fn max_score_bits_round_trips_counts() {
        let block = BlockSummary {
            first_doc: 0,
            last_doc: 3,
            postings: 128,
            max_doc_count: 7,
        };
        assert_eq!(f64::from_bits(block.max_score_bits()), 7.0);
    }
}
