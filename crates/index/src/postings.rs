//! Posting lists and per-term statistics.

use tix_store::{DocId, NodeIdx, NodeRef};

/// Identifies a term in the index's dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// One occurrence of a term.
///
/// Postings are ordered by `(doc, node, offset)` — global document order —
/// which is what the single-merge-pass algorithms require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Document of the occurrence.
    pub doc: DocId,
    /// The **text node** containing the occurrence.
    pub node: NodeIdx,
    /// Document-wide word offset of the occurrence (0-based; increments
    /// across text-node boundaries, so adjacency within a node is
    /// `offset` difference 1).
    pub offset: u32,
}

impl Posting {
    /// The occurrence's text node as a store-wide reference.
    pub fn node_ref(&self) -> NodeRef {
        NodeRef::new(self.doc, self.node)
    }
}

/// The occurrences of one term, in global document order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    pub(crate) postings: Vec<Posting>,
    /// Number of distinct documents containing the term.
    pub(crate) doc_frequency: u32,
    /// Number of distinct text nodes containing the term.
    pub(crate) node_frequency: u32,
}

impl PostingList {
    /// All postings, ordered by `(doc, node, offset)`.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Total occurrences in the collection (collection frequency; this is
    /// the "term frequency" axis of the paper's Tables 1–4).
    pub fn collection_frequency(&self) -> usize {
        self.postings.len()
    }

    /// Number of distinct documents containing the term.
    pub fn doc_frequency(&self) -> u32 {
        self.doc_frequency
    }

    /// Number of distinct text nodes containing the term.
    pub fn node_frequency(&self) -> u32 {
        self.node_frequency
    }

    /// True when the term never occurs.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Reassemble a list from deserialized parts (snapshot loading). The
    /// caller guarantees document order.
    /// Reassemble a list from postings already in canonical
    /// `(doc, node, offset)` order with precomputed frequencies. For
    /// snapshot/pack loaders only: callers are responsible for the order
    /// and frequency invariants (the loaders validate both before calling).
    pub fn from_sorted_postings(
        postings: Vec<Posting>,
        doc_frequency: u32,
        node_frequency: u32,
    ) -> Self {
        PostingList::from_parts(postings, doc_frequency, node_frequency)
    }

    pub(crate) fn from_parts(
        postings: Vec<Posting>,
        doc_frequency: u32,
        node_frequency: u32,
    ) -> Self {
        PostingList {
            postings,
            doc_frequency,
            node_frequency,
        }
    }

    /// Incremental-maintenance primitive: drop every posting of `doc` and
    /// renumber postings of later documents down by one, mirroring the
    /// dense-id compaction `Store::remove_document` performs. Frequencies
    /// are recomputed from the surviving postings. Returns the number of
    /// postings removed (= the term's occurrences in `doc`).
    pub(crate) fn remove_doc(&mut self, doc: DocId) -> usize {
        let before = self.postings.len();
        self.postings.retain(|p| p.doc != doc);
        let removed = before - self.postings.len();
        for p in &mut self.postings {
            if p.doc > doc {
                p.doc = DocId(p.doc.0 - 1);
            }
        }
        self.doc_frequency = 0;
        self.node_frequency = 0;
        let mut last: Option<Posting> = None;
        for p in &self.postings {
            match last {
                Some(prev) if prev.doc == p.doc => {
                    if prev.node != p.node {
                        self.node_frequency += 1;
                    }
                }
                _ => {
                    self.doc_frequency += 1;
                    self.node_frequency += 1;
                }
            }
            last = Some(*p);
        }
        removed
    }

    pub(crate) fn push(&mut self, posting: Posting) {
        debug_assert!(
            self.postings.last().is_none_or(|last| *last < posting),
            "postings must arrive in document order"
        );
        match self.postings.last() {
            Some(last) if last.doc == posting.doc => {
                if last.node != posting.node {
                    self.node_frequency += 1;
                }
            }
            _ => {
                self.doc_frequency += 1;
                self.node_frequency += 1;
            }
        }
        self.postings.push(posting);
    }
}

/// A snapshot of one term's statistics, for workload tooling and tf·idf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermStats {
    /// The term.
    pub term: String,
    /// Total occurrences in the collection.
    pub collection_frequency: usize,
    /// Distinct documents containing the term.
    pub doc_frequency: u32,
    /// Distinct text nodes containing the term.
    pub node_frequency: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(doc: u32, node: u32, offset: u32) -> Posting {
        Posting {
            doc: DocId(doc),
            node: NodeIdx(node),
            offset,
        }
    }

    #[test]
    fn frequencies_tracked() {
        let mut list = PostingList::default();
        list.push(p(0, 1, 0));
        list.push(p(0, 1, 5)); // same node
        list.push(p(0, 3, 9)); // new node, same doc
        list.push(p(1, 0, 0)); // new doc
        assert_eq!(list.collection_frequency(), 4);
        assert_eq!(list.doc_frequency(), 2);
        assert_eq!(list.node_frequency(), 3);
    }

    #[test]
    fn posting_order_is_document_order() {
        assert!(p(0, 5, 9) < p(1, 0, 0));
        assert!(p(0, 5, 1) < p(0, 5, 2));
        assert!(p(0, 4, 9) < p(0, 5, 0));
    }

    #[test]
    #[should_panic(expected = "document order")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_asserts() {
        let mut list = PostingList::default();
        list.push(p(0, 5, 0));
        list.push(p(0, 1, 0));
    }
}
