//! Word tokenization.
//!
//! The tokenizer is deliberately simple and deterministic — lowercased
//! alphanumeric runs — because the experiments depend on *exact* control of
//! term frequencies, not on linguistic niceties. Stemming and stopwording
//! are orthogonal to everything the paper measures.

/// A token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The normalized (lowercased) term.
    pub term: String,
    /// Byte offset of the token's first character in the input.
    pub byte_offset: usize,
}

/// Split `text` into lowercase alphanumeric tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else is
/// a separator. `don't` tokenizes as `don`, `t` — crude but consistent with
/// classic IR tokenizers and, crucially, reversible by the corpus generator.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        if c.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            tokens.push(Token {
                // lint:allow(no-slice-index): s and i are char boundaries from char_indices
                term: text[s..i].to_lowercase(),
                byte_offset: s,
            });
        }
    }
    if let Some(s) = start {
        tokens.push(Token {
            // lint:allow(no-slice-index): s is a char boundary from char_indices
            term: text[s..].to_lowercase(),
            byte_offset: s,
        });
    }
    tokens
}

/// Tokenize and return only the terms (convenience for tests and scorers).
pub fn terms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.term).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split() {
        assert_eq!(terms("search engine"), ["search", "engine"]);
    }

    #[test]
    fn punctuation_separates() {
        assert_eq!(terms("IR-based, search!"), ["ir", "based", "search"]);
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(terms("v2 engine 42"), ["v2", "engine", "42"]);
    }

    #[test]
    fn lowercased() {
        assert_eq!(terms("Search ENGINE"), ["search", "engine"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(terms("").is_empty());
        assert!(terms("  \t\n .,;").is_empty());
    }

    #[test]
    fn byte_offsets() {
        let tokens = tokenize("ab  cd");
        assert_eq!(tokens[0].byte_offset, 0);
        assert_eq!(tokens[1].byte_offset, 4);
    }

    #[test]
    fn unicode_words() {
        assert_eq!(terms("héllo wörld"), ["héllo", "wörld"]);
    }
}
