//! Parallel index construction must be indistinguishable from sequential:
//! same term-id assignment, same posting order, same statistics, and —
//! the strongest form — byte-identical snapshots for every thread count.

use tix_index::InvertedIndex;
use tix_store::Store;

fn snapshot_bytes(index: &InvertedIndex) -> Vec<u8> {
    let mut bytes = Vec::new();
    index.save_snapshot(&mut bytes).expect("snapshot to memory");
    bytes
}

fn assert_identical_across_threads(store: &Store) {
    let sequential = InvertedIndex::build(store);
    let expected = snapshot_bytes(&sequential);
    for threads in [1, 2, 8] {
        let parallel = InvertedIndex::build_with_threads(store, threads);
        assert_eq!(
            snapshot_bytes(&parallel),
            expected,
            "snapshot differs from sequential at {threads} threads"
        );
        assert_eq!(parallel.term_count(), sequential.term_count());
        assert_eq!(parallel.total_tokens(), sequential.total_tokens());
    }
}

#[test]
fn empty_store() {
    assert_identical_across_threads(&Store::new());
}

#[test]
fn single_document() {
    let mut store = Store::new();
    store
        .load_str(
            "a.xml",
            "<a><p>search engine search</p><q>index engine</q></a>",
        )
        .unwrap();
    assert_identical_across_threads(&store);
}

#[test]
fn many_documents_with_shared_and_unique_terms() {
    let mut store = Store::new();
    for i in 0..17 {
        // `common` in every doc, `only{i}` unique, plus per-doc repetition
        // patterns so doc/node frequencies differ between terms.
        let xml = format!(
            "<doc><t>common only{i} common</t><s>word{} shared</s></doc>",
            i % 3
        );
        store.load_str(&format!("d{i}.xml"), &xml).unwrap();
    }
    assert_identical_across_threads(&store);
}

#[test]
fn generated_corpus() {
    use tix_corpus::{CorpusSpec, Generator, PlantSpec};

    let spec = CorpusSpec {
        articles: 12,
        ..CorpusSpec::tiny()
    };
    let plants = PlantSpec::default()
        .with_term("planted", 9)
        .with_phrase("alpha", "beta", 4, 3);
    let mut store = Store::new();
    Generator::new(spec, plants)
        .unwrap()
        .load_into(&mut store)
        .unwrap();
    assert_identical_across_threads(&store);
}

#[test]
fn term_ids_match_first_occurrence_order() {
    let mut store = Store::new();
    store.load_str("a.xml", "<a>zeta alpha zeta</a>").unwrap();
    store.load_str("b.xml", "<a>beta alpha</a>").unwrap();
    let index = InvertedIndex::build_with_threads(&store, 4);
    // Interning order is first occurrence across docs in doc order,
    // exactly as the sequential pass produces.
    assert_eq!(index.term_id("zeta").unwrap().0, 0);
    assert_eq!(index.term_id("alpha").unwrap().0, 1);
    assert_eq!(index.term_id("beta").unwrap().0, 2);
}
