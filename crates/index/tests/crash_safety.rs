//! Fault-injection sweeps over the v2 inverted-index snapshot, mirroring
//! the store's: torn writes never damage the committed sidecar, every
//! single-bit flip is rejected with a typed error, and interrupt storms /
//! short I/O are survived transparently.

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;

use tix_index::{IndexSnapshotError, InvertedIndex};
use tix_store::faultio::{CorruptingReader, FailingReader, FailingWriter};
use tix_store::persist::atomic_write;
use tix_store::Store;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tix-crash-index-{}-{name}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn index_a() -> InvertedIndex {
    let mut store = Store::new();
    store
        .load_str("a.xml", "<a><p>alpha beta alpha</p><p>gamma beta</p></a>")
        .unwrap();
    store.load_str("b.xml", "<a><p>beta alpha</p></a>").unwrap();
    InvertedIndex::build(&store)
}

fn index_b() -> InvertedIndex {
    let mut store = Store::new();
    store
        .load_str("c.xml", "<r><p>delta epsilon</p></r>")
        .unwrap();
    InvertedIndex::build(&store)
}

fn snapshot_bytes(index: &InvertedIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    index.save_snapshot(&mut buf).unwrap();
    buf
}

fn temp_litter(dir: &PathBuf) -> Vec<String> {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect()
}

#[test]
fn torn_write_sweep_preserves_committed_sidecar_at_every_offset() {
    let dir = tmp_dir("torn");
    let path = dir.join("corpus.idx");
    let committed = snapshot_bytes(&index_a());
    atomic_write::<io::Error, _>(&path, |w| w.write_all(&committed)).unwrap();
    let replacement = snapshot_bytes(&index_b());

    for limit in 0..replacement.len() {
        let torn = atomic_write::<io::Error, _>(&path, |w| {
            let mut failing = FailingWriter::fail_after(w, limit as u64);
            failing.write_all(&replacement)
        });
        assert!(
            torn.is_err(),
            "write crashed after {limit} bytes yet committed"
        );
        assert_eq!(
            fs::read(&path).unwrap(),
            committed,
            "crash after {limit} bytes damaged the committed sidecar"
        );
        let litter = temp_litter(&dir);
        assert!(
            litter.is_empty(),
            "crash after {limit} bytes left {litter:?}"
        );
    }
    let loaded = InvertedIndex::load_snapshot(fs::read(&path).unwrap().as_slice()).unwrap();
    assert_eq!(loaded.term_count(), index_a().term_count());

    atomic_write::<io::Error, _>(&path, |w| w.write_all(&replacement)).unwrap();
    assert_eq!(fs::read(&path).unwrap(), replacement);
}

/// Index magic is 6 bytes, version byte sits at offset 6; everything past
/// it is covered by section checksums and the whole-file seal.
fn assert_flip_rejected(err: &IndexSnapshotError, offset: usize, bit: u8) {
    match (offset, err) {
        (0..=5, IndexSnapshotError::BadMagic) => {}
        (6, IndexSnapshotError::UnsupportedVersion(_)) => {}
        (_, IndexSnapshotError::Corrupt(_)) if offset > 6 => {}
        _ => panic!("flip at byte {offset} bit {bit} mis-classified: {err:?}"),
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let base = snapshot_bytes(&index_a());
    for offset in 0..base.len() {
        for bit in 0..8u8 {
            let mut flipped = base.clone();
            flipped[offset] ^= 1 << bit;
            let err = InvertedIndex::load_snapshot(flipped.as_slice())
                .err()
                .unwrap_or_else(|| panic!("flip at byte {offset} bit {bit} loaded cleanly"));
            assert_flip_rejected(&err, offset, bit);
        }
    }
}

#[test]
fn corrupting_reader_flips_are_equally_rejected() {
    let base = snapshot_bytes(&index_a());
    let offsets = [0, 6, 7, base.len() / 2, base.len() - 1];
    for &offset in &offsets {
        for bit in [0u8, 3, 7] {
            let reader = CorruptingReader::flip_bit(base.as_slice(), offset as u64, bit);
            let err = InvertedIndex::load_snapshot(reader)
                .err()
                .unwrap_or_else(|| panic!("streamed flip at byte {offset} bit {bit} loaded"));
            assert_flip_rejected(&err, offset, bit);
        }
    }
}

#[test]
fn every_truncation_point_is_rejected() {
    let base = snapshot_bytes(&index_a());
    for cut in 0..base.len() {
        assert!(
            InvertedIndex::load_snapshot(&base[..cut]).is_err(),
            "v2 prefix of {cut} bytes loaded successfully"
        );
    }
    let mut extended = base.clone();
    extended.push(0);
    assert!(InvertedIndex::load_snapshot(extended.as_slice()).is_err());
}

#[test]
fn interrupt_storms_and_short_io_are_survived() {
    let index = index_a();
    let mut stormy = Vec::new();
    index
        .save_snapshot(
            FailingWriter::unlimited(&mut stormy)
                .short()
                .interrupt_every(2),
        )
        .unwrap();
    assert_eq!(stormy, snapshot_bytes(&index));

    let loaded = InvertedIndex::load_snapshot(
        FailingReader::unlimited(stormy.as_slice())
            .short()
            .interrupt_every(3),
    )
    .unwrap();
    assert_eq!(loaded.term_count(), index.term_count());
    assert_eq!(loaded.total_tokens(), index.total_tokens());
}

#[test]
fn hard_read_failures_error_at_every_offset() {
    let base = snapshot_bytes(&index_a());
    for limit in 0..base.len() {
        let reader = FailingReader::fail_after(base.as_slice(), limit as u64);
        assert!(
            InvertedIndex::load_snapshot(reader).is_err(),
            "read dying after {limit} bytes produced an index"
        );
    }
}
