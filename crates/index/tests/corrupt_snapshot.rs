//! Regression tests feeding truncated and garbage bytes to the inverted-
//! index snapshot loader: corruption must surface as
//! `Err(IndexSnapshotError)`, never as a panic or an index with broken
//! posting order.

use tix_index::{IndexSnapshotError, InvertedIndex};
use tix_store::Store;

fn sample_index() -> InvertedIndex {
    let mut store = Store::new();
    store
        .load_str("a.xml", "<a><p>alpha beta alpha</p><p>gamma beta</p></a>")
        .unwrap();
    store.load_str("b.xml", "<a><p>beta alpha</p></a>").unwrap();
    InvertedIndex::build(&store)
}

// These tests target the *structural* validation layer (posting order,
// UTF-8, bounds), so they walk the flat v1 byte layout where every field
// sits at a computable offset. v2 shares the same per-term decoder, and
// its checksum layer has its own exhaustive sweeps in crash_safety.rs.
fn snapshot_bytes(index: &InvertedIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    index.save_snapshot_v1(&mut buf).unwrap();
    buf
}

/// Walk the snapshot layout and return, for the first term with at least
/// two postings, the byte offsets of (first name byte, first posting).
fn first_multi_posting_term(buf: &[u8]) -> (usize, usize) {
    let u32_at = |pos: usize| u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
    let mut pos = 6 + 1 + 8; // magic + version + total_tokens
    let term_count = u32_at(pos);
    pos += 4;
    for _ in 0..term_count {
        let name_len = u32_at(pos) as usize;
        let name_at = pos + 4;
        pos = name_at + name_len;
        pos += 4 + 4; // doc_frequency + node_frequency
        let posting_count = u32_at(pos) as usize;
        pos += 4;
        if posting_count >= 2 {
            return (name_at, pos);
        }
        pos += posting_count * 12;
    }
    panic!("sample index has no term with two postings");
}

#[test]
fn every_truncation_point_is_rejected() {
    let buf = snapshot_bytes(&sample_index());
    for cut in 0..buf.len() {
        assert!(
            InvertedIndex::load_snapshot(&buf[..cut]).is_err(),
            "prefix of {cut} bytes loaded successfully"
        );
    }
}

#[test]
fn out_of_order_postings_rejected() {
    // Swap the first two posting records of a multi-posting term; the
    // loader must notice the broken `(doc, node, offset)` order.
    let mut buf = snapshot_bytes(&sample_index());
    let (_, postings_at) = first_multi_posting_term(&buf);
    let (a, b) = (postings_at, postings_at + 12);
    let first: [u8; 12] = buf[a..a + 12].try_into().unwrap();
    let second: [u8; 12] = buf[b..b + 12].try_into().unwrap();
    buf[a..a + 12].copy_from_slice(&second);
    buf[b..b + 12].copy_from_slice(&first);
    let err = InvertedIndex::load_snapshot(buf.as_slice()).unwrap_err();
    assert!(
        matches!(err, IndexSnapshotError::Corrupt("postings out of order")),
        "{err}"
    );
}

#[test]
fn duplicate_postings_rejected() {
    let mut buf = snapshot_bytes(&sample_index());
    let (_, postings_at) = first_multi_posting_term(&buf);
    let first: [u8; 12] = buf[postings_at..postings_at + 12].try_into().unwrap();
    buf[postings_at + 12..postings_at + 24].copy_from_slice(&first);
    let err = InvertedIndex::load_snapshot(buf.as_slice()).unwrap_err();
    assert!(matches!(err, IndexSnapshotError::Corrupt(_)), "{err}");
}

#[test]
fn non_utf8_term_rejected() {
    let mut buf = snapshot_bytes(&sample_index());
    let (name_at, _) = first_multi_posting_term(&buf);
    buf[name_at] = 0xFF; // never valid UTF-8
    let err = InvertedIndex::load_snapshot(buf.as_slice()).unwrap_err();
    assert!(
        matches!(err, IndexSnapshotError::Corrupt("non-UTF-8 term")),
        "{err}"
    );
}

#[test]
fn byte_flips_never_panic() {
    let base = snapshot_bytes(&sample_index());
    for i in 0..base.len() {
        let mut buf = base.clone();
        buf[i] ^= 0xFF;
        let _ = InvertedIndex::load_snapshot(buf.as_slice());
    }
}

#[test]
fn random_garbage_after_header_is_rejected() {
    let mut buf = snapshot_bytes(&sample_index());
    for (i, byte) in buf.iter_mut().enumerate().skip(7) {
        *byte = (i.wrapping_mul(199).wrapping_add(23) % 249) as u8;
    }
    assert!(InvertedIndex::load_snapshot(buf.as_slice()).is_err());
}
