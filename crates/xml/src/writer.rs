//! XML serializer.

use crate::escape::{escape_attr, escape_text};
use crate::reader::Attribute;

/// An append-only XML writer producing a `String`.
///
/// The writer does not validate balance; [`crate::Document::to_xml`] drives
/// it from a tree that is balanced by construction, and the corpus generator
/// drives it directly for speed.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Create a writer with a preallocated buffer, for bulk generation.
    pub fn with_capacity(bytes: usize) -> Self {
        Writer {
            out: String::with_capacity(bytes),
        }
    }

    /// Write `<tag attr="...">`.
    pub fn start_element(&mut self, tag: &str, attributes: &[Attribute]) {
        self.open_tag(tag, attributes);
        self.out.push('>');
    }

    /// Write `<tag attr="..."/>`.
    pub fn empty_element(&mut self, tag: &str, attributes: &[Attribute]) {
        self.open_tag(tag, attributes);
        self.out.push_str("/>");
    }

    fn open_tag(&mut self, tag: &str, attributes: &[Attribute]) {
        self.out.push('<');
        self.out.push_str(tag);
        for attr in attributes {
            self.out.push(' ');
            self.out.push_str(&attr.name);
            self.out.push_str("=\"");
            self.out.push_str(&escape_attr(&attr.value));
            self.out.push('"');
        }
    }

    /// Write `</tag>`.
    pub fn end_element(&mut self, tag: &str) {
        self.out.push_str("</");
        self.out.push_str(tag);
        self.out.push('>');
    }

    /// Write escaped character data.
    pub fn text(&mut self, text: &str) {
        self.out.push_str(&escape_text(text));
    }

    /// Write a comment. The body must not contain `--`.
    pub fn comment(&mut self, text: &str) {
        self.out.push_str("<!--");
        self.out.push_str(text);
        self.out.push_str("-->");
    }

    /// Write a processing instruction.
    pub fn pi(&mut self, target: &str, data: &str) {
        self.out.push_str("<?");
        self.out.push_str(target);
        if !data.is_empty() {
            self.out.push(' ');
            self.out.push_str(data);
        }
        self.out.push_str("?>");
    }

    /// Current length of the serialized output in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Consume the writer and return the serialized document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_document() {
        let mut writer = Writer::new();
        writer.start_element(
            "a",
            &[Attribute {
                name: "x".into(),
                value: "1<2".into(),
            }],
        );
        writer.text("hi & bye");
        writer.empty_element("b", &[]);
        writer.end_element("a");
        assert_eq!(writer.finish(), r#"<a x="1&lt;2">hi &amp; bye<b/></a>"#);
    }

    #[test]
    fn pi_and_comment() {
        let mut writer = Writer::new();
        writer.pi("style", "href=x");
        writer.comment(" c ");
        assert_eq!(writer.finish(), "<?style href=x?><!-- c -->");
    }
}
