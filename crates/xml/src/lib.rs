//! # tix-xml
//!
//! A from-scratch XML parser, DOM, and serializer.
//!
//! This crate is the lowest substrate of the TIX reproduction: everything
//! above it (the node store, the inverted index, the algebra) consumes XML
//! through the types defined here. It deliberately implements the subset of
//! XML 1.0 that document-centric databases care about:
//!
//! * elements with attributes (both quote styles),
//! * character data with the five predefined entities plus numeric
//!   character references,
//! * CDATA sections, comments, and processing instructions,
//! * an optional XML declaration and a skipped-over `<!DOCTYPE ...>`.
//!
//! Namespaces are treated lexically (a tag name may contain `:`), which is
//! how the INEX corpus and the paper's examples use them.
//!
//! The parser comes in two layers:
//!
//! * [`Reader`] — a pull (StAX-style) parser producing [`Event`]s. This is
//!   what the document loader in `tix-store` drives, so a 500 MB corpus
//!   never needs a full DOM in memory.
//! * [`Document`] — a compact owned DOM built on top of the reader, used by
//!   tests, examples, and small documents such as the paper's Figure 1.
//!
//! ```
//! use tix_xml::Document;
//!
//! let doc = Document::parse("<a x='1'>hi <b/> there</a>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.tag(root), "a");
//! assert_eq!(doc.attribute(root, "x"), Some("1"));
//! assert_eq!(doc.text_content(root), "hi  there");
//! ```

mod dom;
mod error;
mod escape;
mod reader;
mod writer;

pub use dom::{Document, NodeId, NodeKind};
pub use error::{Error, Result};
pub use escape::{escape_attr, escape_text, unescape};
pub use reader::{collect_events, Attribute, Event, Reader};
pub use writer::Writer;
