//! Pull (StAX-style) XML parser.
//!
//! [`Reader`] walks the input once and yields [`Event`]s. It performs full
//! well-formedness checking for the supported subset: balanced tags,
//! attribute syntax, entity resolution, and single-root documents.

use crate::error::{Error, ErrorKind, Result};
use crate::escape::unescape;

/// A single attribute on a start tag, with entities already resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written (may contain a namespace prefix).
    pub name: String,
    /// Attribute value with entity references resolved.
    pub value: String,
}

/// A parse event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<tag attr="v">` or the open part of `<tag/>` (the latter is
    /// immediately followed by a matching [`Event::End`]).
    Start {
        tag: String,
        attributes: Vec<Attribute>,
    },
    /// `</tag>`, or the synthesized close of an empty-element tag.
    End { tag: String },
    /// Character data with entities resolved. CDATA sections also surface
    /// as `Text`. Runs of character data may be split around comments/PIs
    /// but are never empty.
    Text(String),
    /// `<!-- ... -->` (content without the delimiters).
    Comment(String),
    /// `<?target data?>` (excluding the XML declaration, which is consumed
    /// silently).
    ProcessingInstruction { target: String, data: String },
    /// End of the document. Returned exactly once; the reader is exhausted
    /// afterwards.
    Eof,
}

/// A pull parser over an in-memory string.
///
/// The corpus generator produces documents in memory and the store loader
/// streams them through this reader, so an owned-slice parser (rather than
/// an `io::Read` wrapper) is the right interface for this system.
pub struct Reader<'a> {
    input: &'a str,
    /// Current byte position.
    pos: usize,
    /// Open-element stack used for balance checking.
    stack: Vec<String>,
    /// True once the single document element has closed.
    root_closed: bool,
    /// True once any element has been opened.
    seen_root: bool,
    /// A pending `End` event synthesized for an empty-element tag.
    pending_end: Option<String>,
    eof_emitted: bool,
}

impl<'a> Reader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        Reader {
            input,
            pos: 0,
            stack: Vec::new(),
            root_closed: false,
            seen_root: false,
            pending_end: None,
            eof_emitted: false,
        }
    }

    /// Byte offset of the next unconsumed input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Pull the next event.
    ///
    /// After [`Event::Eof`] has been returned once, subsequent calls keep
    /// returning `Eof`.
    pub fn next_event(&mut self) -> Result<Event> {
        if let Some(tag) = self.pending_end.take() {
            self.close_tag_on_stack(&tag)?;
            return Ok(Event::End { tag });
        }
        loop {
            if self.pos >= self.input.len() {
                return self.finish();
            }
            let rest = &self.input[self.pos..];
            if let Some(stripped) = rest.strip_prefix('<') {
                if stripped.starts_with("!--") {
                    let comment = self.read_comment()?;
                    return Ok(Event::Comment(comment));
                } else if stripped.starts_with("![CDATA[") {
                    let text = self.read_cdata()?;
                    if text.is_empty() {
                        continue;
                    }
                    self.check_text_allowed()?;
                    return Ok(Event::Text(text));
                } else if stripped.starts_with("!DOCTYPE") {
                    self.skip_doctype()?;
                    continue;
                } else if stripped.starts_with('?') {
                    match self.read_pi()? {
                        Some((target, data)) => {
                            return Ok(Event::ProcessingInstruction { target, data })
                        }
                        None => continue, // XML declaration, consumed silently
                    }
                } else if stripped.starts_with('/') {
                    return self.read_close_tag();
                } else {
                    return self.read_open_tag();
                }
            } else {
                match self.read_text()? {
                    Some(text) => return Ok(Event::Text(text)),
                    None => continue, // inter-element whitespace outside root
                }
            }
        }
    }

    fn finish(&mut self) -> Result<Event> {
        if let Some(open) = self.stack.last() {
            return Err(self.err(ErrorKind::UnexpectedEof(leak_tag(open))));
        }
        if !self.seen_root {
            return Err(self.err(ErrorKind::NoRootElement));
        }
        self.eof_emitted = true;
        Ok(Event::Eof)
    }

    /// True once `Eof` has been produced.
    pub fn at_eof(&self) -> bool {
        self.eof_emitted
    }

    fn err(&self, kind: ErrorKind) -> Error {
        Error::new(kind, self.pos)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        let rest = &self.input[self.pos..];
        let trimmed = rest.trim_start_matches([' ', '\t', '\r', '\n']);
        self.pos += rest.len() - trimmed.len();
    }

    fn expect(&mut self, token: &'static str) -> Result<()> {
        if self.input[self.pos..].starts_with(token) {
            self.bump(token.len());
            Ok(())
        } else {
            match self.peek() {
                Some(found) => Err(self.err(ErrorKind::UnexpectedChar {
                    expected: token,
                    found,
                })),
                None => Err(self.err(ErrorKind::UnexpectedEof(token))),
            }
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|&(i, c)| !is_name_char(c, i == 0))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err(ErrorKind::InvalidName));
        }
        let name = rest[..end].to_string();
        self.bump(end);
        Ok(name)
    }

    fn read_open_tag(&mut self) -> Result<Event> {
        if self.root_closed {
            return Err(self.err(ErrorKind::TrailingContent));
        }
        self.expect("<")?;
        let tag = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump(1);
                    break;
                }
                Some('/') => {
                    self.bump(1);
                    self.expect(">")?;
                    self.pending_end = Some(tag.clone());
                    break;
                }
                Some(_) => {
                    let attr = self.read_attribute()?;
                    if attributes.iter().any(|a: &Attribute| a.name == attr.name) {
                        return Err(self.err(ErrorKind::DuplicateAttribute(attr.name)));
                    }
                    attributes.push(attr);
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof("start tag"))),
            }
        }
        self.seen_root = true;
        // Push unconditionally; an empty-element tag is popped again when the
        // synthesized End event is delivered on the next call.
        self.stack.push(tag.clone());
        Ok(Event::Start { tag, attributes })
    }

    fn read_attribute(&mut self) -> Result<Attribute> {
        let name = self.read_name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => q,
            Some(found) => {
                return Err(self.err(ErrorKind::UnexpectedChar {
                    expected: "quote",
                    found,
                }))
            }
            None => return Err(self.err(ErrorKind::UnexpectedEof("attribute value"))),
        };
        self.bump(1);
        let rest = &self.input[self.pos..];
        let end = rest
            .find(quote)
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("attribute value")))?;
        let raw = &rest[..end];
        let value = unescape(raw, self.pos)?.into_owned();
        self.bump(end + 1);
        Ok(Attribute { name, value })
    }

    fn close_tag_on_stack(&mut self, tag: &str) -> Result<()> {
        match self.stack.pop() {
            Some(open) if open == tag => {
                if self.stack.is_empty() {
                    self.root_closed = true;
                }
                Ok(())
            }
            Some(open) => Err(self.err(ErrorKind::MismatchedClose {
                open,
                close: tag.to_string(),
            })),
            None => Err(self.err(ErrorKind::UnbalancedClose(tag.to_string()))),
        }
    }

    fn read_close_tag(&mut self) -> Result<Event> {
        self.expect("</")?;
        let tag = self.read_name()?;
        self.skip_ws();
        self.expect(">")?;
        if self.stack.is_empty() {
            return Err(self.err(ErrorKind::UnbalancedClose(tag)));
        }
        self.close_tag_on_stack(&tag)?;
        Ok(Event::End { tag })
    }

    /// Read character data up to the next `<`.
    ///
    /// Returns `None` (and consumes the input) for pure whitespace outside
    /// the document element, which the XML grammar allows but which carries
    /// no information.
    fn read_text(&mut self) -> Result<Option<String>> {
        let rest = &self.input[self.pos..];
        let end = rest.find('<').unwrap_or(rest.len());
        let raw = &rest[..end];
        let outside = self.stack.is_empty();
        if outside {
            if raw.trim().is_empty() {
                self.bump(end);
                return Ok(None);
            }
            return Err(if self.root_closed || self.seen_root {
                self.err(ErrorKind::TrailingContent)
            } else {
                self.err(ErrorKind::NoRootElement)
            });
        }
        let text = unescape(raw, self.pos)?.into_owned();
        self.bump(end);
        Ok(Some(text))
    }

    fn check_text_allowed(&self) -> Result<()> {
        if self.stack.is_empty() {
            Err(self.err(ErrorKind::TrailingContent))
        } else {
            Ok(())
        }
    }

    fn read_comment(&mut self) -> Result<String> {
        self.expect("<!--")?;
        let rest = &self.input[self.pos..];
        let end = rest
            .find("-->")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("comment")))?;
        let comment = rest[..end].to_string();
        self.bump(end + 3);
        Ok(comment)
    }

    fn read_cdata(&mut self) -> Result<String> {
        self.expect("<![CDATA[")?;
        let rest = &self.input[self.pos..];
        let end = rest
            .find("]]>")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("CDATA section")))?;
        let text = rest[..end].to_string();
        self.bump(end + 3);
        Ok(text)
    }

    fn skip_doctype(&mut self) -> Result<()> {
        // `<!DOCTYPE name [ ...internal subset... ]>` — track bracket depth so
        // an internal subset containing `>` is skipped correctly.
        self.expect("<!DOCTYPE")?;
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            self.bump(c.len_utf8());
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                '>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err(ErrorKind::UnexpectedEof("DOCTYPE")))
    }

    /// Returns `None` for the XML declaration, `Some((target, data))` for a
    /// real processing instruction.
    fn read_pi(&mut self) -> Result<Option<(String, String)>> {
        self.expect("<?")?;
        let target = self.read_name()?;
        let rest = &self.input[self.pos..];
        let end = rest
            .find("?>")
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("processing instruction")))?;
        let data = rest[..end].trim().to_string();
        self.bump(end + 2);
        if target.eq_ignore_ascii_case("xml") {
            Ok(None)
        } else {
            Ok(Some((target, data)))
        }
    }
}

fn is_name_char(c: char, first: bool) -> bool {
    let base = c.is_alphabetic() || c == '_' || c == ':';
    if first {
        base
    } else {
        base || c.is_numeric() || c == '-' || c == '.'
    }
}

fn leak_tag(tag: &str) -> &'static str {
    // Error messages want a &'static str for the "while parsing X" slot;
    // rather than leak memory per error we report the construct generically.
    let _ = tag;
    "element content (unclosed element)"
}

/// Convenience: parse the whole input and collect all events.
pub fn collect_events(input: &str) -> Result<Vec<Event>> {
    let mut reader = Reader::new(input);
    let mut events = Vec::new();
    loop {
        let event = reader.next_event()?;
        let done = event == Event::Eof;
        events.push(event);
        if done {
            return Ok(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(input: &str) -> Vec<Event> {
        collect_events(input).unwrap()
    }

    #[test]
    fn simple_element() {
        assert_eq!(
            ev("<a>x</a>"),
            vec![
                Event::Start {
                    tag: "a".into(),
                    attributes: vec![]
                },
                Event::Text("x".into()),
                Event::End { tag: "a".into() },
                Event::Eof,
            ]
        );
    }

    #[test]
    fn empty_element_synthesizes_end() {
        assert_eq!(
            ev("<a/>"),
            vec![
                Event::Start {
                    tag: "a".into(),
                    attributes: vec![]
                },
                Event::End { tag: "a".into() },
                Event::Eof,
            ]
        );
    }

    #[test]
    fn attributes_both_quotes() {
        let events = ev(r#"<a x="1" y='two'/>"#);
        match &events[0] {
            Event::Start { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(
                    attributes[0],
                    Attribute {
                        name: "x".into(),
                        value: "1".into()
                    }
                );
                assert_eq!(
                    attributes[1],
                    Attribute {
                        name: "y".into(),
                        value: "two".into()
                    }
                );
            }
            other => panic!("expected start event, got {other:?}"),
        }
    }

    #[test]
    fn attribute_entities_resolved() {
        let events = ev(r#"<a t="a&amp;b&#33;"/>"#);
        match &events[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].value, "a&b!"),
            other => panic!("expected start event, got {other:?}"),
        }
    }

    #[test]
    fn text_entities_resolved() {
        assert_eq!(ev("<a>1 &lt; 2</a>")[1], Event::Text("1 < 2".into()));
    }

    #[test]
    fn cdata_is_text() {
        assert_eq!(
            ev("<a><![CDATA[<raw> & unescaped]]></a>")[1],
            Event::Text("<raw> & unescaped".into())
        );
    }

    #[test]
    fn comments_and_pis() {
        let events = ev("<?xml version=\"1.0\"?><!-- hi --><a><?foo bar?></a>");
        assert_eq!(events[0], Event::Comment(" hi ".into()));
        assert_eq!(
            events[2],
            Event::ProcessingInstruction {
                target: "foo".into(),
                data: "bar".into()
            }
        );
    }

    #[test]
    fn doctype_skipped() {
        let events = ev("<!DOCTYPE article [ <!ELEMENT a (#PCDATA)> ]><a/>");
        assert_eq!(
            events[0],
            Event::Start {
                tag: "a".into(),
                attributes: vec![]
            }
        );
    }

    #[test]
    fn nested_structure() {
        let events = ev("<a><b><c/></b><b/></a>");
        let starts: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Start { tag, .. } => Some(tag.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(starts, ["a", "b", "c", "b"]);
    }

    #[test]
    fn mismatched_close_rejected() {
        let err = collect_events("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::MismatchedClose { .. }));
    }

    #[test]
    fn unclosed_rejected() {
        let err = collect_events("<a><b>").unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn trailing_content_rejected() {
        let err = collect_events("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::TrailingContent));
    }

    #[test]
    fn trailing_text_rejected() {
        let err = collect_events("<a/>oops").unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::TrailingContent));
    }

    #[test]
    fn empty_input_rejected() {
        let err = collect_events("   ").unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::NoRootElement));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = collect_events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn whitespace_around_root_ok() {
        assert_eq!(ev("  \n<a/>\n  ").len(), 3);
    }

    #[test]
    fn unicode_content() {
        let events = ev("<a>héllo wörld — ünïcode</a>");
        assert_eq!(events[1], Event::Text("héllo wörld — ünïcode".into()));
    }

    #[test]
    fn namespaced_names_lexical() {
        let events = ev("<ns:a ns:x='1'><ns:b/></ns:a>");
        assert!(matches!(&events[0], Event::Start { tag, .. } if tag == "ns:a"));
    }

    #[test]
    fn depth_tracking() {
        let mut reader = Reader::new("<a><b/></a>");
        assert_eq!(reader.depth(), 0);
        reader.next_event().unwrap(); // <a>
        assert_eq!(reader.depth(), 1);
        reader.next_event().unwrap(); // <b>
        assert_eq!(reader.depth(), 2);
    }

    #[test]
    fn eof_is_sticky() {
        let mut reader = Reader::new("<a/>");
        while reader.next_event().unwrap() != Event::Eof {}
        assert!(reader.at_eof());
        assert_eq!(reader.next_event().unwrap(), Event::Eof);
    }
}
