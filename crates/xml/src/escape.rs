//! Entity escaping and unescaping.
//!
//! Only the five predefined XML entities and numeric character references
//! are supported; that is all document-centric corpora such as INEX use
//! (DTD-defined entities are out of scope for the reproduction).

use std::borrow::Cow;

use crate::error::{Error, ErrorKind, Result};

/// Escape `text` for use as element character data (`<`, `>`, `&`).
///
/// Returns a borrowed slice when no escaping is needed, so serializing
/// mostly-clean corpora does not allocate.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, |c| matches!(c, '<' | '>' | '&'))
}

/// Escape `text` for use inside a double-quoted attribute value.
pub fn escape_attr(text: &str) -> Cow<'_, str> {
    escape_with(text, |c| matches!(c, '<' | '>' | '&' | '"' | '\''))
}

fn escape_with(text: &str, needs: impl Fn(char) -> bool) -> Cow<'_, str> {
    if !text.chars().any(&needs) {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        if needs(c) {
            match c {
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '&' => out.push_str("&amp;"),
                '"' => out.push_str("&quot;"),
                '\'' => out.push_str("&apos;"),
                _ => unreachable!("escape predicate only selects markup chars"),
            }
        } else {
            out.push(c);
        }
    }
    Cow::Owned(out)
}

/// Resolve entity and character references in `text`.
///
/// `offset` is the byte position of `text` in the overall input and is used
/// only for error reporting. Returns a borrowed slice when the input
/// contains no `&`.
pub fn unescape(text: &str, offset: usize) -> Result<Cow<'_, str>> {
    if !text.contains('&') {
        return Ok(Cow::Borrowed(text));
    }
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    let mut pos = offset;
    while let Some((before, after)) = rest.split_once('&') {
        out.push_str(before);
        pos += before.len();
        let Some((name, tail)) = after.split_once(';') else {
            return Err(Error::new(ErrorKind::UnknownEntity(clip(after)), pos));
        };
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => match name.strip_prefix('#') {
                Some(body) => out.push(parse_char_ref(body, pos)?),
                None => return Err(Error::new(ErrorKind::UnknownEntity(name.to_string()), pos)),
            },
        }
        rest = tail;
        pos += 1 + name.len() + 1;
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

fn parse_char_ref(body: &str, pos: usize) -> Result<char> {
    let bad = || Error::new(ErrorKind::BadCharRef(body.to_string()), pos);
    let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).map_err(|_| bad())?
    } else {
        body.parse::<u32>().map_err(|_| bad())?
    };
    char::from_u32(code).ok_or_else(bad)
}

fn clip(s: &str) -> String {
    s.chars().take(16).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_passthrough_borrows() {
        assert!(matches!(escape_text("plain text"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_markup() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr(r#"say "hi'"#), "say &quot;hi&apos;");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(unescape("&lt;&gt;&amp;&apos;&quot;", 0).unwrap(), "<>&'\"");
    }

    #[test]
    fn unescape_char_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc");
    }

    #[test]
    fn unescape_unknown_entity_errors() {
        let err = unescape("x&nbsp;y", 10).unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::UnknownEntity("nbsp".into()));
        assert_eq!(err.offset(), 11);
    }

    #[test]
    fn unescape_overflow_char_ref_errors() {
        assert!(unescape("&#x110000;", 0).is_err());
        assert!(unescape("&#;", 0).is_err());
    }

    #[test]
    fn roundtrip_escape_unescape() {
        let original = "a <tag attr=\"v'\"> & more";
        let escaped = escape_attr(original);
        assert_eq!(unescape(&escaped, 0).unwrap(), original);
    }
}
