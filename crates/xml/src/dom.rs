//! A compact owned DOM.
//!
//! Nodes live in a single arena (`Vec<NodeData>`) and are addressed by
//! [`NodeId`]. Sibling order is materialized with first-child/next-sibling
//! links, which keeps each node at a fixed small size regardless of fanout —
//! the same layout trick the store crate uses at database scale.

use std::fmt;

use crate::error::Result;
use crate::reader::{Attribute, Event, Reader};
use crate::writer::Writer;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena slot of this node (stable for the document's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a DOM node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a tag name and attributes.
    Element {
        tag: String,
        attributes: Vec<Attribute>,
    },
    /// A run of character data.
    Text(String),
    /// A comment (`<!-- ... -->`).
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction { target: String, data: String },
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    first_child: Option<NodeId>,
    last_child: Option<NodeId>,
    next_sibling: Option<NodeId>,
}

/// An owned XML document.
///
/// The document owns an arena of nodes; a virtual root (not part of the XML
/// content) anchors the document element along with any top-level comments
/// and processing instructions.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
}

/// The virtual root is always arena slot 0.
const VIRTUAL_ROOT: NodeId = NodeId(0);

impl Document {
    /// Create an empty document (virtual root only).
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData {
                kind: NodeKind::Element {
                    tag: String::new(),
                    attributes: Vec::new(),
                },
                parent: None,
                first_child: None,
                last_child: None,
                next_sibling: None,
            }],
        }
    }

    /// Parse `input` into a DOM.
    pub fn parse(input: &str) -> Result<Self> {
        let mut doc = Document::new();
        let mut reader = Reader::new(input);
        let mut open = vec![VIRTUAL_ROOT];
        loop {
            // The reader rejects unbalanced markup, so the stack never
            // underflows below the virtual root; fall back to it anyway
            // rather than trusting that across crate boundaries.
            let parent = open.last().copied().unwrap_or(VIRTUAL_ROOT);
            match reader.next_event()? {
                Event::Start { tag, attributes } => {
                    let id = doc.append(parent, NodeKind::Element { tag, attributes });
                    open.push(id);
                }
                Event::End { .. } => {
                    if open.len() > 1 {
                        open.pop();
                    }
                }
                Event::Text(text) => {
                    doc.append(parent, NodeKind::Text(text));
                }
                Event::Comment(text) => {
                    doc.append(parent, NodeKind::Comment(text));
                }
                Event::ProcessingInstruction { target, data } => {
                    doc.append(parent, NodeKind::ProcessingInstruction { target, data });
                }
                Event::Eof => return Ok(doc),
            }
        }
    }

    /// Number of nodes, excluding the virtual root.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True when the document holds no content nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The document element (the single top-level element), if present.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(VIRTUAL_ROOT)
            .find(|&id| matches!(self.kind(id), NodeKind::Element { .. }))
    }

    /// Arena access. `NodeId`s are minted densely by [`append`](Self::append)
    /// and arena slots are never removed, so an id is always in range for
    /// the document that created it.
    fn data(&self, id: NodeId) -> &NodeData {
        // lint:allow(no-slice-index): ids are minted densely and never removed
        &self.nodes[id.index()]
    }

    /// Mutable arena access; see [`data`](Self::data) for why this is in
    /// bounds.
    fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        // lint:allow(no-slice-index): ids are minted densely and never removed
        &mut self.nodes[id.index()]
    }

    /// Append a new node as the last child of `parent` and return its id.
    pub fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            kind,
            parent: Some(parent),
            first_child: None,
            last_child: None,
            next_sibling: None,
        });
        let parent_data = self.data_mut(parent);
        match parent_data.last_child {
            Some(last) => {
                parent_data.last_child = Some(id);
                self.data_mut(last).next_sibling = Some(id);
            }
            None => {
                parent_data.first_child = Some(id);
                parent_data.last_child = Some(id);
            }
        }
        id
    }

    /// Convenience: append an element with no attributes.
    pub fn append_element(&mut self, parent: NodeId, tag: &str) -> NodeId {
        self.append(
            parent,
            NodeKind::Element {
                tag: tag.to_string(),
                attributes: Vec::new(),
            },
        )
    }

    /// Convenience: append a text node.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.append(parent, NodeKind::Text(text.to_string()))
    }

    /// The virtual root anchoring all top-level nodes.
    pub fn virtual_root(&self) -> NodeId {
        VIRTUAL_ROOT
    }

    /// The kind of `id`.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.data(id).kind
    }

    /// Tag name of `id` if it is an element, or `""`.
    pub fn tag(&self, id: NodeId) -> &str {
        match self.kind(id) {
            NodeKind::Element { tag, .. } => tag,
            _ => "",
        }
    }

    /// Attribute `name` of element `id`.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Element { attributes, .. } => attributes
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Parent of `id` (`None` for the virtual root; the document element's
    /// parent is the virtual root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// Iterate over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.data(id).first_child,
        }
    }

    /// Iterate over `id` and all of its descendants in document order.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            next: Some(id),
            top: id,
        }
    }

    /// Concatenated text of all text nodes in the subtree rooted at `id` —
    /// the paper's `alltext()` (Fig. 9).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for node in self.descendants(id) {
            if let NodeKind::Text(text) = self.kind(node) {
                out.push_str(text);
            }
        }
        out
    }

    /// Serialize the document (content below the virtual root).
    pub fn to_xml(&self) -> String {
        let mut writer = Writer::new();
        self.write_children(VIRTUAL_ROOT, &mut writer);
        writer.finish()
    }

    fn write_children(&self, id: NodeId, writer: &mut Writer) {
        for child in self.children(id) {
            self.write_node(child, writer);
        }
    }

    fn write_node(&self, id: NodeId, writer: &mut Writer) {
        match self.kind(id) {
            NodeKind::Element { tag, attributes } => {
                if self.data(id).first_child.is_none() {
                    writer.empty_element(tag, attributes);
                } else {
                    writer.start_element(tag, attributes);
                    self.write_children(id, writer);
                    writer.end_element(tag);
                }
            }
            NodeKind::Text(text) => writer.text(text),
            NodeKind::Comment(text) => writer.comment(text),
            NodeKind::ProcessingInstruction { target, data } => writer.pi(target, data),
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

/// Iterator over direct children. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.data(id).next_sibling;
        Some(id)
    }
}

/// Pre-order iterator over a subtree. See [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
    top: NodeId,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        // Pre-order successor: first child, else next sibling of the nearest
        // ancestor (not escaping the subtree root).
        let data = self.doc.data(id);
        self.next = data.first_child.or_else(|| {
            let mut cursor = id;
            loop {
                if cursor == self.top {
                    return None;
                }
                if let Some(sib) = self.doc.data(cursor).next_sibling {
                    return Some(sib);
                }
                cursor = self.doc.data(cursor).parent?;
            }
        });
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse("<a><b>1</b><c><d>2</d></c></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.tag(root), "a");
        let kids: Vec<_> = doc.children(root).map(|n| doc.tag(n).to_string()).collect();
        assert_eq!(kids, ["b", "c"]);
    }

    #[test]
    fn descendants_preorder() {
        let doc = Document::parse("<a><b><c/></b><d/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let order: Vec<_> = doc
            .descendants(root)
            .map(|n| doc.tag(n).to_string())
            .collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
    }

    #[test]
    fn descendants_does_not_escape_subtree() {
        let doc = Document::parse("<a><b><c/></b><d/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.children(root).next().unwrap();
        let order: Vec<_> = doc.descendants(b).map(|n| doc.tag(n).to_string()).collect();
        assert_eq!(order, ["b", "c"]);
    }

    #[test]
    fn text_content_concatenates() {
        let doc = Document::parse("<a>x<b>y</b>z</a>").unwrap();
        assert_eq!(doc.text_content(doc.root_element().unwrap()), "xyz");
    }

    #[test]
    fn attributes_accessible() {
        let doc = Document::parse(r#"<a id="1"><b id="2"/></a>"#).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "id"), Some("1"));
        assert_eq!(doc.attribute(root, "missing"), None);
    }

    #[test]
    fn parents_linked() {
        let doc = Document::parse("<a><b/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.children(root).next().unwrap();
        assert_eq!(doc.parent(b), Some(root));
        assert_eq!(doc.parent(root), Some(doc.virtual_root()));
        assert_eq!(doc.parent(doc.virtual_root()), None);
    }

    #[test]
    fn roundtrip_serialization() {
        let source = r#"<a x="1"><b>hi &amp; bye</b><c/></a>"#;
        let doc = Document::parse(source).unwrap();
        let serialized = doc.to_xml();
        let doc2 = Document::parse(&serialized).unwrap();
        assert_eq!(serialized, doc2.to_xml());
    }

    #[test]
    fn build_programmatically() {
        let mut doc = Document::new();
        let vr = doc.virtual_root();
        let a = doc.append_element(vr, "a");
        let b = doc.append_element(a, "b");
        doc.append_text(b, "hello");
        assert_eq!(doc.to_xml(), "<a><b>hello</b></a>");
    }

    #[test]
    fn comments_preserved() {
        let doc = Document::parse("<a><!-- note --><b/></a>").unwrap();
        assert_eq!(doc.to_xml(), "<a><!-- note --><b/></a>");
    }
}
