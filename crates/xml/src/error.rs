//! Parse errors with byte-offset context.

use std::fmt;

/// A convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// An XML parse or serialization error.
///
/// Every parse error carries the byte offset at which it was detected so
/// corpus-loading failures in multi-hundred-megabyte inputs can be located.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    /// Byte offset into the input at which the error was detected.
    offset: usize,
}

/// The category of an [`Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A character that cannot begin or continue the current construct.
    UnexpectedChar { expected: &'static str, found: char },
    /// `</b>` closed an element opened as `<a>`.
    MismatchedClose { open: String, close: String },
    /// A close tag with no matching open tag.
    UnbalancedClose(String),
    /// Content found after the document element closed.
    TrailingContent,
    /// The document contains no root element.
    NoRootElement,
    /// An entity reference that is not one of the predefined five and not a
    /// character reference.
    UnknownEntity(String),
    /// A malformed numeric character reference, e.g. `&#x110000;`.
    BadCharRef(String),
    /// An attribute appeared twice on the same element.
    DuplicateAttribute(String),
    /// A name (tag or attribute) was empty or started with an invalid char.
    InvalidName,
}

impl Error {
    pub(crate) fn new(kind: ErrorKind, offset: usize) -> Self {
        Error { kind, offset }
    }

    /// The category of the error.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// Byte offset into the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Resolve the error's byte offset to a 1-based `(line, column)` in
    /// `input` (the same string that was parsed). Columns count bytes, like
    /// most compiler diagnostics for ASCII-heavy markup.
    pub fn line_col(&self, input: &str) -> (usize, usize) {
        let upto = &input[..self.offset.min(input.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
        (line, col)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::UnexpectedEof(what) => {
                write!(f, "unexpected end of input while parsing {what}")
            }
            ErrorKind::UnexpectedChar { expected, found } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            ErrorKind::MismatchedClose { open, close } => {
                write!(f, "element <{open}> closed by </{close}>")
            }
            ErrorKind::UnbalancedClose(tag) => write!(f, "close tag </{tag}> has no open tag"),
            ErrorKind::TrailingContent => write!(f, "content after document element"),
            ErrorKind::NoRootElement => write!(f, "document has no root element"),
            ErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            ErrorKind::BadCharRef(text) => write!(f, "bad character reference &#{text};"),
            ErrorKind::DuplicateAttribute(name) => write!(f, "duplicate attribute {name:?}"),
            ErrorKind::InvalidName => write!(f, "invalid XML name"),
        }?;
        write!(f, " at byte {}", self.offset)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_resolution() {
        let input = "<a>\n<b>\n</a>";
        let err = Error::new(ErrorKind::UnbalancedClose("a".into()), 9);
        assert_eq!(err.line_col(input), (3, 2));
        let err0 = Error::new(ErrorKind::NoRootElement, 0);
        assert_eq!(err0.line_col(input), (1, 1));
    }

    #[test]
    fn line_col_clamps_past_end() {
        let err = Error::new(ErrorKind::NoRootElement, 999);
        assert_eq!(err.line_col("ab"), (1, 3));
    }

    #[test]
    fn display_mentions_offset() {
        let err = Error::new(ErrorKind::TrailingContent, 17);
        assert!(err.to_string().contains("at byte 17"));
    }
}
