//! Deterministic regression tests for the XML reader on truncated and
//! garbage input. The proptest in `roundtrip.rs` fuzzes broadly; these pin
//! the specific failure shapes a corrupted corpus file produces.

use tix_xml::Document;

#[test]
fn truncated_documents_are_errors() {
    for bad in [
        "<a>",                 // unclosed root
        "<a><b>x</b>",         // truncated after child
        "<a><b>x</b></a",      // cut inside the closing tag
        "<a attr=\"v",         // cut inside an attribute value
        "<a><![CDATA[payload", // cut inside CDATA
        "<a><!-- comment",     // cut inside a comment
        "<",                   // lone angle bracket
    ] {
        assert!(Document::parse(bad).is_err(), "input {bad:?}");
    }
}

#[test]
fn garbage_documents_are_errors() {
    for bad in [
        "<a><b></a>",     // mismatched close tag
        "</a>",           // close without open
        "<a></a><b></b>", // two roots
        "<a>&bogus;</a>", // unknown entity
        "<1tag/>",        // invalid tag name
        "<a attr=>x</a>", // attribute with no value
        "\u{0}\u{1}junk", // binary garbage
        "",               // empty input
    ] {
        assert!(Document::parse(bad).is_err(), "input {bad:?}");
    }
}

#[test]
fn truncating_a_valid_document_never_panics() {
    let valid = "<book id=\"1\"><title>xml &amp; db</title><!-- c --><p>text</p></book>";
    for cut in 0..valid.len() {
        if let Some(prefix) = valid.get(..cut) {
            let _ = Document::parse(prefix);
        }
    }
    assert!(Document::parse(valid).is_ok());
}
