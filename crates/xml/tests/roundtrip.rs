//! Property tests: random DOM trees survive serialize → parse → serialize.

use proptest::prelude::*;
use tix_xml::{Attribute, Document, NodeId, NodeKind};

/// A recursively generated tree description fed into the DOM builder.
#[derive(Debug, Clone)]
enum Tree {
    Element {
        tag: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
    Text(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,8}"
}

/// Text without leading/trailing issues is not required: any printable text
/// that is non-empty after trimming must round-trip. Fully-whitespace text is
/// excluded because adjacent text runs are a parser-level representation
/// choice, not content.
fn text_strategy() -> impl Strategy<Value = String> {
    "[ -~]{1,20}".prop_filter("non-whitespace", |s| !s.trim().is_empty())
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Tree::Text),
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), "[ -~]{0,10}"), 0..3)
        )
            .prop_map(|(tag, attrs)| Tree::Element {
                tag,
                attrs,
                children: vec![]
            }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), "[ -~]{0,10}"), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, attrs, children)| Tree::Element {
                tag,
                attrs,
                children,
            })
    })
}

fn build(doc: &mut Document, parent: NodeId, tree: &Tree) {
    match tree {
        Tree::Element {
            tag,
            attrs,
            children,
        } => {
            let attrs: Vec<Attribute> = attrs
                .iter()
                .scan(std::collections::HashSet::new(), |seen, (k, v)| {
                    Some(if seen.insert(k.clone()) {
                        Some(Attribute {
                            name: k.clone(),
                            value: v.clone(),
                        })
                    } else {
                        None
                    })
                })
                .flatten()
                .collect();
            let id = doc.append(
                parent,
                NodeKind::Element {
                    tag: tag.clone(),
                    attributes: attrs,
                },
            );
            for child in children {
                build(doc, id, child);
            }
        }
        Tree::Text(text) => {
            doc.append_text(parent, text);
        }
    }
}

proptest! {
    #[test]
    fn serialize_parse_serialize_is_identity(tree in tree_strategy()) {
        // Force a root element (text at top level is not a document).
        let tree = match tree {
            t @ Tree::Element { .. } => t,
            t @ Tree::Text(_) => Tree::Element {
                tag: "root".into(),
                attrs: vec![],
                children: vec![t],
            },
        };
        let mut doc = Document::new();
        let vr = doc.virtual_root();
        build(&mut doc, vr, &tree);
        let first = doc.to_xml();
        let reparsed = Document::parse(&first).unwrap();
        let second = reparsed.to_xml();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn parse_never_panics(input in "[ -~<>&\"']{0,200}") {
        let _ = Document::parse(&input);
    }

    #[test]
    fn text_content_matches_input_text(words in prop::collection::vec("[a-z]{1,8}", 1..10)) {
        let joined = words.join(" ");
        let xml = format!("<a><b>{joined}</b></a>");
        let doc = Document::parse(&xml).unwrap();
        prop_assert_eq!(doc.text_content(doc.root_element().unwrap()), joined);
    }
}
