//! # TIX — Querying Structured Text in an XML Database
//!
//! A from-scratch Rust implementation of the TIX system (Al-Khalifa, Yu &
//! Jagadish, SIGMOD 2003): a bulk algebra over **scored XML trees** that
//! integrates information-retrieval relevance ranking into a database-style
//! pipelined query evaluator, together with the access methods that make it
//! fast — **TermJoin**, **PhraseFinder**, and the stack-based **Pick**.
//!
//! This crate is the facade: it re-exports the layered workspace and adds
//! the high-level [`Database`] convenience wrapper most applications want.
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | XML   | [`xml`] | pull parser, DOM, serializer |
//! | store | [`store`] | region-encoded node store, tag/child-count indexes |
//! | index | [`index`] | positional inverted index |
//! | algebra | [`core`] | scored trees, pattern trees, σ π ⨝ τ ρ |
//! | access methods | [`exec`] | TermJoin, PhraseFinder, Pick, baselines |
//! | language | [`query`] | the paper's extended-XQuery dialect (Fig. 10) |
//! | corpus | [`corpus`] | synthetic INEX-like corpus + paper workloads |
//!
//! ## Quickstart
//!
//! ```
//! use tix::Database;
//!
//! let mut db = Database::new();
//! db.load("docs.xml", "<article><p>rust xml database</p><p>other</p></article>").unwrap();
//! db.build_index();
//!
//! // Score every element by term containment (TermJoin access method):
//! let scored = db.term_join(&["rust", "database"]);
//! assert!(!scored.is_empty());
//! // The article and the first paragraph tie on score; document order
//! // puts the coarser unit first.
//! let best = &scored[0];
//! assert_eq!(db.store().tag_name(best.node), Some("article"));
//! ```

pub use tix_core as core;
pub use tix_corpus as corpus;
pub use tix_exec as exec;
pub use tix_index as index;
pub use tix_query as query;
pub use tix_store as store;
pub use tix_xml as xml;

mod db;
pub mod persist;

pub use db::{normalize_query, Database};
pub use persist::PersistError;
