//! The high-level convenience wrapper around the layered system.

use std::sync::{Arc, Mutex};

use tix_core::scoring::ScoreContext;
use tix_exec::parallel::{phrase_finder_parallel, term_join_parallel};
use tix_exec::pick::PickParams;
use tix_exec::scored::{sort_by_node, ScoredNode};
use tix_exec::termjoin::{SimpleScorer, TermJoinScorer};
use tix_index::{IndexReader, InvertedIndex};
use tix_pack::PackIndex;
use tix_query::{LogicalPlan, PhysicalPlan, PlanChoice, PlanStats, Scoring, TermSearch};
use tix_store::{DocId, LoadError, RemoveError, Store};

/// The two physical index representations a database can serve from.
/// Queries read either one through [`IndexReader`] with byte-identical
/// results; only the in-memory form supports incremental maintenance, so
/// a pack-backed index is materialized on the first mutation.
#[derive(Debug)]
enum IndexRepr {
    /// Uncompressed in-memory lists (built, or loaded from a v2 snapshot).
    Mem(InvertedIndex),
    /// Compressed v3 `TIXPAK` file, loaded by reference with lazy decode.
    Pack(PackIndex),
}

impl IndexRepr {
    fn reader(&self) -> &dyn IndexReader {
        match self {
            IndexRepr::Mem(index) => index,
            IndexRepr::Pack(pack) => pack,
        }
    }
}

/// An XML database with IR-style querying: a [`Store`], an on-demand
/// [`InvertedIndex`], and shortcuts to the most common access-method
/// pipelines.
///
/// For full control (custom scorers, the algebra operators, the XQuery
/// dialect) use the layer crates directly; `Database` just wires the
/// common paths together.
///
/// ## Parallelism
///
/// Index construction and every query entry point run document-partitioned
/// over a configurable number of worker threads — the `TIX_THREADS`
/// environment variable by default, overridable per database with
/// [`Database::set_threads`]. Results are **identical** to single-threaded
/// execution at any thread count (enforced by the equivalence tests in
/// `tix-exec` and `tix-index`); threads only change wall-clock time.
#[derive(Debug)]
pub struct Database {
    store: Store,
    index: Option<IndexRepr>,
    threads: usize,
    generation: u64,
    /// Planner-statistics cache, keyed by [`Database::generation`] so a
    /// snapshot computed against an older store or index is never reused
    /// after a mutation.
    plan_stats: Mutex<Option<(u64, Arc<PlanStats>)>>,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            store: Store::new(),
            index: None,
            threads: tix_parallel::default_threads(),
            generation: 0,
            plan_stats: Mutex::new(None),
        }
    }
}

/// Canonical query-term normalization shared by every result-caching and
/// batching layer: trim surrounding whitespace and drop empty terms. The
/// term *case* is preserved — index lookups are exact-string, so case
/// folding here would change results.
///
/// [`Database::search`] applies this to its input, so two queries with the
/// same normalized form are guaranteed identical results; `tix-server`'s
/// result cache and [`Database::search_batch`]'s deduplication both key on
/// this form for exactly that reason.
pub fn normalize_query<S: AsRef<str>>(terms: &[S]) -> Vec<String> {
    terms
        .iter()
        .map(|t| t.as_ref().trim().to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

impl Database {
    /// An empty database using [`tix_parallel::default_threads`] workers.
    pub fn new() -> Self {
        Database::default()
    }

    /// Set the worker-thread count for index builds and queries. `1` means
    /// fully sequential execution on the calling thread.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The worker-thread count used for index builds and queries.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parse and load a document. Invalidates the index and bumps the
    /// [generation](Database::generation).
    pub fn load(&mut self, name: &str, xml: &str) -> Result<DocId, LoadError> {
        self.index = None;
        self.generation += 1;
        self.store.load_str(name, xml)
    }

    /// Parse and load a document **without** invalidating the index: when
    /// an index is present it is maintained incrementally (the new
    /// document's postings are appended in document order), so the
    /// database stays queryable across the mutation. This is the live-
    /// ingestion entry point; batch loading should keep using
    /// [`Database::load`] + one [`Database::build_index`]. Bumps the
    /// [generation](Database::generation).
    ///
    /// Under `debug_assertions` or `--features check-invariants` the
    /// maintained index is asserted byte-identical to a from-scratch
    /// rebuild after the mutation.
    pub fn insert_document(&mut self, name: &str, xml: &str) -> Result<DocId, LoadError> {
        let id = self.store.load_str(name, xml)?;
        self.materialize_index();
        if let Some(IndexRepr::Mem(index)) = &mut self.index {
            index.add_document(&self.store, id);
        }
        self.generation += 1;
        self.assert_index_matches_rebuild();
        Ok(id)
    }

    /// Remove a document by name, maintaining the index incrementally
    /// (postings dropped, later document ids renumbered down — mirroring
    /// the store's dense-id compaction). Bumps the
    /// [generation](Database::generation).
    ///
    /// Under `debug_assertions` or `--features check-invariants` the
    /// maintained index is asserted byte-identical to a from-scratch
    /// rebuild after the mutation.
    pub fn remove_document(&mut self, name: &str) -> Result<DocId, RemoveError> {
        let id = self.store.remove_document(name)?;
        self.materialize_index();
        if let Some(IndexRepr::Mem(index)) = &mut self.index {
            index.remove_document(id);
        }
        self.generation += 1;
        self.assert_index_matches_rebuild();
        Ok(id)
    }

    /// The incremental-maintenance acceptance check: the maintained index
    /// must serialize **byte-identically** to `InvertedIndex::build` over
    /// the current store. Compiled only under `debug_assertions` or
    /// `--features check-invariants`; a no-op without an index.
    fn assert_index_matches_rebuild(&self) {
        tix_invariants::check! {
            if let Some(IndexRepr::Mem(index)) = &self.index {
                let mut maintained = Vec::new();
                index
                    .save_snapshot(&mut maintained)
                    .expect("serialize maintained index");
                let mut rebuilt = Vec::new();
                InvertedIndex::build(&self.store)
                    .save_snapshot(&mut rebuilt)
                    .expect("serialize rebuilt index");
                assert!(
                    maintained == rebuilt,
                    "incrementally maintained index diverged from a from-scratch rebuild"
                );
            }
        }
    }

    /// Build (or rebuild) the inverted index over everything loaded,
    /// fanning per-document extraction out over the configured threads.
    /// Bumps the [generation](Database::generation).
    pub fn build_index(&mut self) {
        self.index = Some(IndexRepr::Mem(InvertedIndex::build_with_threads(
            &self.store,
            self.threads,
        )));
        self.generation += 1;
    }

    /// Convert a pack-backed index into the in-memory representation so it
    /// can be maintained incrementally. Materialization preserves term
    /// order and statistics exactly, so the maintained index still matches
    /// a from-scratch rebuild byte-for-byte. A decode failure is
    /// unreachable behind the open-time seal; if it happens anyway the
    /// index is dropped (callers rebuild, matching post-`load` behavior).
    fn materialize_index(&mut self) {
        if let Some(IndexRepr::Pack(pack)) = &self.index {
            self.index = match pack.to_inverted() {
                Ok(mem) => Some(IndexRepr::Mem(mem)),
                Err(_) => None,
            };
        }
    }

    /// Install a pre-built index (e.g. loaded from an index snapshot). The
    /// caller is responsible for it matching the loaded store. Bumps the
    /// [generation](Database::generation).
    pub fn set_index(&mut self, index: InvertedIndex) {
        self.index = Some(IndexRepr::Mem(index));
        self.generation += 1;
    }

    /// Install a compressed v3 pack index loaded by reference (e.g. from a
    /// `TIXPAK` sidecar). Queries serve straight off the packed bytes with
    /// lazy per-term decode; the first mutation materializes the in-memory
    /// form. Bumps the [generation](Database::generation).
    pub fn set_pack_index(&mut self, pack: PackIndex) {
        self.index = Some(IndexRepr::Pack(pack));
        self.generation += 1;
    }

    /// The store/index **generation**: a counter bumped by every mutation
    /// ([`Database::load`], [`Database::build_index`],
    /// [`Database::set_index`], [`Database::store_mut`]). Result caches key
    /// on it so entries computed against an older store or index can never
    /// be served after a reload.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access (e.g. for the corpus generator's `load_into`).
    /// Invalidates the index and bumps the
    /// [generation](Database::generation).
    pub fn store_mut(&mut self) -> &mut Store {
        self.index = None;
        self.generation += 1;
        &mut self.store
    }

    /// The inverted index.
    ///
    /// # Panics
    /// Panics if [`Database::build_index`] has not been called since the
    /// last load.
    pub fn index(&self) -> &dyn IndexReader {
        self.index
            .as_ref()
            .expect("call Database::build_index() after loading documents")
            .reader()
    }

    /// The in-memory index, when that is the active representation
    /// (v2 snapshot writers need the concrete type).
    pub fn mem_index(&self) -> Option<&InvertedIndex> {
        match &self.index {
            Some(IndexRepr::Mem(index)) => Some(index),
            _ => None,
        }
    }

    /// The pack-backed index, when that is the active representation.
    pub fn pack_index(&self) -> Option<&PackIndex> {
        match &self.index {
            Some(IndexRepr::Pack(pack)) => Some(pack),
            _ => None,
        }
    }

    /// Has an index been built (or installed) since the last mutation?
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// A scoring context carrying the store and index.
    pub fn score_context(&self) -> ScoreContext<'_> {
        match &self.index {
            Some(repr) => ScoreContext::with_index(&self.store, repr.reader()),
            None => ScoreContext::new(&self.store),
        }
    }

    /// Score every element containing any of `terms` (subtree containment)
    /// with uniform weights, via the TermJoin access method. Results are
    /// sorted by descending score (ties in document order).
    pub fn term_join(&self, terms: &[&str]) -> Vec<ScoredNode> {
        self.term_join_with(terms, &SimpleScorer::uniform())
    }

    /// [`Database::term_join`] with a custom scorer.
    pub fn term_join_with<S: TermJoinScorer>(&self, terms: &[&str], scorer: &S) -> Vec<ScoredNode> {
        let mut out = term_join_parallel(&self.store, self.index(), terms, scorer, self.threads);
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        out
    }

    /// Text nodes containing the exact phrase, with occurrence counts
    /// (PhraseFinder access method).
    pub fn find_phrase(&self, phrase_terms: &[&str]) -> Vec<ScoredNode> {
        sort_by_node(phrase_finder_parallel(
            &self.store,
            self.index(),
            phrase_terms,
            self.threads,
        ))
    }

    /// The classic end-to-end IR pipeline: scoring → stack-based Pick
    /// (parent/child redundancy elimination) → top-k. Returns at most `k`
    /// picked elements, best first. Terms are normalized with
    /// [`normalize_query`] first, so e.g. `" rust "` and `"rust"` are the
    /// same query.
    ///
    /// The physical evaluation is chosen by the **cost-based planner**
    /// ([`Database::plan`]): TermJoin, one of the Sec. 6 baselines, or the
    /// Threshold-pushdown scan. Every candidate returns byte-identical
    /// results, so the choice affects time only; [`Database::explain`]
    /// shows it, [`Database::search_with_plan`] overrides it.
    pub fn search(&self, terms: &[&str], pick: PickParams, k: usize) -> Vec<ScoredNode> {
        // Never cancelled, so always Some.
        self.search_cancellable(terms, pick, k, &|| false)
            .unwrap_or_default()
    }

    /// [`Database::search`] with cooperative cancellation: `cancelled` is
    /// consulted between the pipeline's operator stages (before TermJoin,
    /// between TermJoin and Pick, and between Pick and top-k) and the
    /// search returns `None` as soon as it reports `true`. This is the
    /// serving layer's deadline hook — an expired request stops paying for
    /// the remaining stages instead of computing a result nobody reads.
    pub fn search_cancellable(
        &self,
        terms: &[&str],
        pick: PickParams,
        k: usize,
        cancelled: &dyn Fn() -> bool,
    ) -> Option<Vec<ScoredNode>> {
        let normalized = normalize_query(terms);
        self.search_stages(&normalized, pick, k, cancelled)
    }

    /// The staged pipeline behind [`Database::search_cancellable`];
    /// `terms` must already be in [`normalize_query`] form.
    fn search_stages(
        &self,
        terms: &[String],
        pick: PickParams,
        k: usize,
        cancelled: &dyn Fn() -> bool,
    ) -> Option<Vec<ScoredNode>> {
        self.search_stages_threads(terms, pick, k, cancelled, self.threads)
    }

    fn search_stages_threads(
        &self,
        terms: &[String],
        pick: PickParams,
        k: usize,
        cancelled: &dyn Fn() -> bool,
        threads: usize,
    ) -> Option<Vec<ScoredNode>> {
        self.search_planned(terms, pick, k, None, cancelled, threads)
    }

    /// The logical plan behind every `search*` entry point.
    fn term_search(
        terms: &[String],
        pick: PickParams,
        k: usize,
        min_score: Option<f64>,
    ) -> LogicalPlan {
        LogicalPlan::TermSearch(TermSearch {
            terms: terms.to_vec(),
            scoring: Scoring::SimpleUniform,
            pick: Some(pick),
            k,
            min_score,
        })
    }

    /// The per-generation planner-statistics snapshot (gathered at most
    /// once per mutation, then shared).
    fn plan_stats(&self) -> Arc<PlanStats> {
        let mut guard = self.plan_stats.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((generation, stats)) = guard.as_ref() {
            if *generation == self.generation {
                return Arc::clone(stats);
            }
        }
        let stats = Arc::new(PlanStats::gather(&self.store, self.index()));
        *guard = Some((self.generation, Arc::clone(&stats)));
        stats
    }

    /// Plan and execute: the cost-based route every search takes.
    fn search_planned(
        &self,
        terms: &[String],
        pick: PickParams,
        k: usize,
        min_score: Option<f64>,
        cancelled: &dyn Fn() -> bool,
        threads: usize,
    ) -> Option<Vec<ScoredNode>> {
        let logical = Self::term_search(terms, pick, k, min_score);
        let stats = self.plan_stats();
        let inputs = stats.inputs(self.index(), terms);
        let choice = tix_query::choose(&logical, &inputs);
        let run = tix_query::execute(
            &self.store,
            self.index(),
            &logical,
            &choice.chosen.plan,
            threads,
            cancelled,
        )?;
        Some(run.results)
    }

    /// [`Database::search`] with a value threshold pushed into the
    /// pipeline: only nodes with `score > min_score` are returned (the
    /// dialect's `Threshold $v/@score > min stop after k`). With a low
    /// `k` or a high threshold the planner can choose the pushdown scan,
    /// which stops reading postings once the §4.2 score bound proves the
    /// tail irrelevant.
    pub fn search_filtered(
        &self,
        terms: &[&str],
        pick: PickParams,
        k: usize,
        min_score: Option<f64>,
        cancelled: &dyn Fn() -> bool,
    ) -> Option<Vec<ScoredNode>> {
        let normalized = normalize_query(terms);
        self.search_planned(&normalized, pick, k, min_score, cancelled, self.threads)
    }

    /// [`Database::search`] variant for the cluster's scatter-gather
    /// merge: the top `k` results **with ties** — every result whose
    /// score ties the k-th is included, so truncation never splits a tie
    /// — plus an *exclusive* upper bound on the scores it withheld
    /// (`None` when nothing was withheld).
    ///
    /// The bound is exactly the k-th score: all k-th-score ties are
    /// returned, so every hidden score is strictly below it. A
    /// coordinator merging per-shard responses proves its global top-k
    /// exact against these bounds with
    /// [`tix_invariants::try_scatter_merge_bound`]. `k == 0` is treated
    /// as `k == 1` (no finite exclusive bound covers "everything
    /// withheld").
    pub fn search_with_ties(
        &self,
        terms: &[&str],
        pick: PickParams,
        k: usize,
    ) -> (Vec<ScoredNode>, Option<f64>) {
        let k = k.max(1);
        let all = self.search(terms, pick, usize::MAX);
        if all.len() <= k {
            return (all, None);
        }
        let kth = all[k - 1].score;
        // Sorted descending, so `score >= kth` is a prefix.
        let cut = all.partition_point(|s| s.score >= kth);
        if cut >= all.len() {
            return (all, None);
        }
        let mut kept = all;
        kept.truncate(cut);
        (kept, Some(kth))
    }

    /// The planner's decision for a search, without executing it: every
    /// candidate plan with its cost estimate, and the chosen one.
    pub fn plan(
        &self,
        terms: &[&str],
        pick: PickParams,
        k: usize,
        min_score: Option<f64>,
    ) -> PlanChoice {
        let normalized = normalize_query(terms);
        let logical = Self::term_search(&normalized, pick, k, min_score);
        let stats = self.plan_stats();
        let inputs = stats.inputs(self.index(), &normalized);
        tix_query::choose(&logical, &inputs)
    }

    /// Run a search with an explicitly chosen physical plan, bypassing
    /// the cost model — the differential-testing and experimentation
    /// hook. Results are byte-identical to [`Database::search_filtered`]
    /// for **every** candidate plan (enforced by the plan-equivalence
    /// suite).
    pub fn search_with_plan(
        &self,
        terms: &[&str],
        pick: PickParams,
        k: usize,
        min_score: Option<f64>,
        plan: &PhysicalPlan,
        cancelled: &dyn Fn() -> bool,
    ) -> Option<Vec<ScoredNode>> {
        let normalized = normalize_query(terms);
        let logical = Self::term_search(&normalized, pick, k, min_score);
        let run = tix_query::execute(
            &self.store,
            self.index(),
            &logical,
            plan,
            self.threads,
            cancelled,
        )?;
        Some(run.results)
    }

    /// Render the EXPLAIN report for a search: the statistics the planner
    /// read, every candidate plan with its cost, and the chosen plan.
    pub fn explain(
        &self,
        terms: &[&str],
        pick: PickParams,
        k: usize,
        min_score: Option<f64>,
    ) -> String {
        let normalized = normalize_query(terms);
        let logical = Self::term_search(&normalized, pick, k, min_score);
        let stats = self.plan_stats();
        let inputs = stats.inputs(self.index(), &normalized);
        let choice = tix_query::choose(&logical, &inputs);
        tix_query::explain::render(&logical, &inputs, &choice, stats.df_histogram.as_ref())
    }

    /// Run [`Database::search`] for several queries, fanning the *queries*
    /// out over the configured threads (each individual search runs
    /// sequentially, so workers are never oversubscribed). Results are in
    /// query order and identical to calling `search` per query.
    ///
    /// Queries that are identical after [`normalize_query`] are
    /// deduplicated before dispatch — the search runs once and the result
    /// is fanned back out to every occurrence — so a batch of popular
    /// repeated queries costs one evaluation each.
    pub fn search_batch(
        &self,
        queries: &[Vec<&str>],
        pick: PickParams,
        k: usize,
    ) -> Vec<Vec<ScoredNode>> {
        let normalized: Vec<Vec<String>> = queries.iter().map(|q| normalize_query(q)).collect();
        // First occurrence index of each distinct normalized query, and
        // each query's slot in the deduplicated dispatch list.
        let mut first_of: std::collections::HashMap<&[String], usize> =
            std::collections::HashMap::new();
        let mut unique: Vec<&Vec<String>> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(queries.len());
        for q in &normalized {
            let slot = *first_of.entry(q.as_slice()).or_insert_with(|| {
                unique.push(q);
                unique.len() - 1
            });
            slot_of.push(slot);
        }
        let unique_results: Vec<Vec<ScoredNode>> =
            tix_parallel::parallel_map(&unique, self.threads, |terms| {
                self.search_stages_threads(terms, pick, k, &|| false, 1)
                    .unwrap_or_default()
            });
        slot_of
            .into_iter()
            .map(|slot| unique_results.get(slot).cloned().unwrap_or_default())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.load(
            "a.xml",
            "<article><sec><p>rust xml database systems</p></sec>\
             <sec><p>cooking with rust the metal</p></sec></article>",
        )
        .unwrap();
        db.build_index();
        db
    }

    fn multi_doc_db() -> Database {
        let mut db = Database::new();
        for i in 0..7 {
            let xml = format!(
                "<article><sec><p>rust xml database number{i}</p></sec>\
                 <sec><p>xml rust and more rust</p></sec></article>"
            );
            db.load(&format!("d{i}.xml"), &xml).unwrap();
        }
        db.build_index();
        db
    }

    #[test]
    fn term_join_sorted_by_score() {
        let db = db();
        let out = db.term_join(&["rust", "xml"]);
        assert!(!out.is_empty());
        assert!(out.windows(2).all(|w| w[0].score >= w[1].score));
        // Top hit: the article (3 hits) ... ties resolved by doc order.
        assert_eq!(db.store().tag_name(out[0].node), Some("article"));
    }

    #[test]
    fn phrase_search() {
        let db = db();
        let out = db.find_phrase(&["xml", "database"]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, 1.0);
    }

    #[test]
    fn search_pipeline_picks_and_limits() {
        let db = db();
        let out = db.search(
            &["rust"],
            PickParams {
                relevance_threshold: 1.0,
                fraction: 0.5,
            },
            5,
        );
        assert!(!out.is_empty());
        assert!(out.len() <= 5);
    }

    #[test]
    #[should_panic(expected = "build_index")]
    fn index_access_without_build_panics() {
        let mut db = Database::new();
        db.load("a.xml", "<a>x</a>").unwrap();
        let _ = db.index();
    }

    #[test]
    fn load_invalidates_index() {
        let mut db = db();
        db.load("b.xml", "<b>fresh</b>").unwrap();
        db.build_index();
        assert_eq!(db.index().collection_frequency("fresh"), 1);
    }

    #[test]
    fn thread_count_does_not_change_any_entry_point() {
        let mut db = multi_doc_db();
        db.set_threads(1);
        db.build_index();
        let term_join = db.term_join(&["rust", "xml"]);
        let phrase = db.find_phrase(&["rust", "xml"]);
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        let search = db.search(&["rust"], pick, 10);
        for threads in [2, 8] {
            db.set_threads(threads);
            db.build_index();
            assert_eq!(
                db.term_join(&["rust", "xml"]),
                term_join,
                "{threads} threads"
            );
            assert_eq!(
                db.find_phrase(&["rust", "xml"]),
                phrase,
                "{threads} threads"
            );
            assert_eq!(db.search(&["rust"], pick, 10), search, "{threads} threads");
        }
    }

    #[test]
    fn search_batch_matches_individual_searches() {
        let mut db = multi_doc_db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        let queries: Vec<Vec<&str>> = vec![
            vec!["rust"],
            vec!["xml", "database"],
            vec!["nosuchterm"],
            vec!["rust", "xml"],
        ];
        for threads in [1, 2, 8] {
            db.set_threads(threads);
            let batch = db.search_batch(&queries, pick, 5);
            assert_eq!(batch.len(), queries.len());
            for (terms, result) in queries.iter().zip(&batch) {
                assert_eq!(
                    result,
                    &db.search(terms, pick, 5),
                    "{terms:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn set_threads_clamps_zero_to_one() {
        let mut db = Database::new();
        db.set_threads(0);
        assert_eq!(db.threads(), 1);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut db = Database::new();
        assert_eq!(db.generation(), 0);
        db.load("a.xml", "<a>x</a>").unwrap();
        let after_load = db.generation();
        assert!(after_load > 0);
        db.build_index();
        let after_build = db.generation();
        assert!(after_build > after_load);
        let _ = db.store_mut();
        assert!(db.generation() > after_build);
        db.build_index();
        let g = db.generation();
        let index = InvertedIndex::build(db.store());
        db.set_index(index);
        assert!(db.generation() > g);
    }

    #[test]
    fn insert_document_keeps_index_live() {
        let mut db = db();
        let gen_before = db.generation();
        let id = db
            .insert_document("b.xml", "<b><p>fresh rust</p></b>")
            .unwrap();
        // No rebuild needed: the index was maintained in place (the
        // check-invariants hook inside insert_document already asserted
        // byte-identity with a rebuild).
        assert!(db.has_index());
        assert!(db.generation() > gen_before);
        assert_eq!(db.index().collection_frequency("fresh"), 1);
        let hits = db.term_join(&["fresh"]);
        assert!(hits.iter().all(|h| h.node.doc == id));
        assert!(!hits.is_empty());
    }

    #[test]
    fn remove_document_keeps_index_live() {
        let mut db = multi_doc_db();
        let before = db.term_join(&["number3"]);
        assert!(!before.is_empty());
        db.remove_document("d3.xml").unwrap();
        assert!(db.has_index());
        assert!(db.term_join(&["number3"]).is_empty());
        // The surviving documents are still fully queryable.
        assert!(!db.term_join(&["rust"]).is_empty());
        assert!(matches!(
            db.remove_document("d3.xml"),
            Err(RemoveError::NotFound(_))
        ));
    }

    #[test]
    fn insert_duplicate_name_is_typed_and_mutation_free() {
        let mut db = db();
        let gen_before = db.generation();
        assert!(matches!(
            db.insert_document("a.xml", "<a>dup</a>"),
            Err(LoadError::DuplicateName(_))
        ));
        assert_eq!(db.generation(), gen_before);
        assert_eq!(db.index().collection_frequency("dup"), 0);
    }

    #[test]
    fn mutations_without_index_defer_to_build() {
        let mut db = Database::new();
        db.insert_document("a.xml", "<a>x</a>").unwrap();
        db.insert_document("b.xml", "<a>y</a>").unwrap();
        db.remove_document("a.xml").unwrap();
        assert!(!db.has_index());
        db.build_index();
        assert_eq!(db.index().collection_frequency("x"), 0);
        assert_eq!(db.index().collection_frequency("y"), 1);
    }

    #[test]
    fn normalize_query_trims_and_drops_empty() {
        assert_eq!(
            crate::normalize_query(&[" rust ", "xml", "", "  "]),
            vec!["rust".to_string(), "xml".to_string()]
        );
        // Case is preserved: index lookups are exact-string.
        assert_eq!(crate::normalize_query(&["Rust"]), vec!["Rust".to_string()]);
    }

    #[test]
    fn search_normalizes_terms() {
        let db = db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        assert_eq!(
            db.search(&[" rust ", ""], pick, 5),
            db.search(&["rust"], pick, 5)
        );
    }

    #[test]
    fn search_cancellable_stops_between_stages() {
        let db = db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        assert!(db
            .search_cancellable(&["rust"], pick, 5, &|| true)
            .is_none());
        let full = db.search_cancellable(&["rust"], pick, 5, &|| false);
        assert_eq!(full, Some(db.search(&["rust"], pick, 5)));
        // Cancel only after the first checkpoint has passed: flip on the
        // second poll.
        let polls = std::cell::Cell::new(0u32);
        let late = db.search_cancellable(&["rust"], pick, 5, &|| {
            polls.set(polls.get() + 1);
            polls.get() >= 2
        });
        assert!(late.is_none());
        assert!(polls.get() >= 2);
    }

    #[test]
    fn search_filtered_applies_min_score() {
        let db = multi_doc_db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        let all = db.search(&["rust"], pick, 100);
        let cutoff = all[all.len() / 2].score;
        let filtered = db
            .search_filtered(&["rust"], pick, 100, Some(cutoff), &|| false)
            .unwrap();
        let expected: Vec<ScoredNode> = all.iter().filter(|n| n.score > cutoff).cloned().collect();
        assert_eq!(filtered, expected);
        assert!(!filtered.is_empty());
        assert!(filtered.len() < all.len());
        // No filter = plain search.
        assert_eq!(
            db.search_filtered(&["rust"], pick, 100, None, &|| false)
                .unwrap(),
            all
        );
    }

    #[test]
    fn search_with_ties_never_splits_a_tie_and_bounds_the_rest() {
        let db = multi_doc_db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        let all = db.search(&["rust"], pick, usize::MAX);
        assert!(all.len() >= 3, "need a multi-result corpus");
        for k in 1..=all.len() + 1 {
            let (kept, bound) = db.search_with_ties(&["rust"], pick, k);
            // The kept prefix is exactly the full ranking's head.
            assert_eq!(kept[..], all[..kept.len()]);
            assert!(kept.len() >= k.min(all.len()));
            match bound {
                None => assert_eq!(kept.len(), all.len()),
                Some(b) => {
                    // Exclusive: every withheld score is strictly below,
                    // every kept score at least b.
                    assert!(kept.iter().all(|s| s.score >= b));
                    assert!(all[kept.len()..].iter().all(|s| s.score < b));
                    tix_invariants::assert_scatter_merge_bound(kept[k - 1].score, [Some(b)]);
                }
            }
        }
        // k == 0 behaves as k == 1.
        assert_eq!(
            db.search_with_ties(&["rust"], pick, 0),
            db.search_with_ties(&["rust"], pick, 1)
        );
    }

    #[test]
    fn every_candidate_plan_matches_the_planner_choice() {
        let db = multi_doc_db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        for (k, min) in [(3, None), (100, Some(1.5)), (1, Some(0.0))] {
            let chosen = db
                .search_filtered(&["rust", "xml"], pick, k, min, &|| false)
                .unwrap();
            let choice = db.plan(&["rust", "xml"], pick, k, min);
            assert!(choice
                .candidates
                .iter()
                .any(|c| c.plan == choice.chosen.plan));
            for c in &choice.candidates {
                let forced = db
                    .search_with_plan(&["rust", "xml"], pick, k, min, &c.plan, &|| false)
                    .unwrap();
                assert_eq!(forced, chosen, "plan {} diverged", c.plan.label());
            }
        }
    }

    #[test]
    fn explain_reports_statistics_and_choice() {
        let db = multi_doc_db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        let text = db.explain(&["rust"], pick, 5, None);
        assert!(text.contains("term-search"));
        assert!(text.contains("documents=7"));
        assert!(text.contains("term \"rust\""));
        assert!(text.contains("dictionary df:"));
        assert!(text.contains("chosen: "));
        // Deterministic rendering.
        assert_eq!(text, db.explain(&["rust"], pick, 5, None));
    }

    #[test]
    fn plan_stats_cache_tracks_generation() {
        let mut db = db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        let before = db.explain(&["rust"], pick, 5, None);
        db.insert_document("extra.xml", "<a><p>rust rust rust</p></a>")
            .unwrap();
        let after = db.explain(&["rust"], pick, 5, None);
        assert_ne!(before, after, "stats must refresh after a mutation");
        assert!(after.contains("documents=2"));
    }

    #[test]
    fn search_batch_dedupes_identical_queries() {
        let db = multi_doc_db();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        // Duplicates both literal and up-to-normalization.
        let queries: Vec<Vec<&str>> = vec![
            vec!["rust"],
            vec![" rust "],
            vec!["rust", "xml"],
            vec!["rust"],
            vec!["xml", "rust"],
        ];
        let batch = db.search_batch(&queries, pick, 5);
        assert_eq!(batch.len(), queries.len());
        for (terms, result) in queries.iter().zip(&batch) {
            assert_eq!(result, &db.search(terms, pick, 5), "{terms:?}");
        }
        // Fanned-out duplicates are identical, not merely equivalent.
        assert_eq!(batch[0], batch[1]);
        assert_eq!(batch[0], batch[3]);
    }
}
