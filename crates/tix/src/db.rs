//! The high-level convenience wrapper around the layered system.

use tix_core::scoring::ScoreContext;
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::scored::{sort_by_node, ScoredNode};
use tix_exec::termjoin::{SimpleScorer, TermJoin, TermJoinScorer};
use tix_exec::{phrase, topk};
use tix_index::InvertedIndex;
use tix_store::{DocId, LoadError, Store};

/// An XML database with IR-style querying: a [`Store`], an on-demand
/// [`InvertedIndex`], and shortcuts to the most common access-method
/// pipelines.
///
/// For full control (custom scorers, the algebra operators, the XQuery
/// dialect) use the layer crates directly; `Database` just wires the
/// common paths together.
#[derive(Debug, Default)]
pub struct Database {
    store: Store,
    index: Option<InvertedIndex>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Parse and load a document. Invalidates the index.
    pub fn load(&mut self, name: &str, xml: &str) -> Result<DocId, LoadError> {
        self.index = None;
        self.store.load_str(name, xml)
    }

    /// Build (or rebuild) the inverted index over everything loaded.
    pub fn build_index(&mut self) {
        self.index = Some(InvertedIndex::build(&self.store));
    }

    /// Install a pre-built index (e.g. loaded from an index snapshot). The
    /// caller is responsible for it matching the loaded store.
    pub fn set_index(&mut self, index: InvertedIndex) {
        self.index = Some(index);
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access (e.g. for the corpus generator's `load_into`).
    /// Invalidates the index.
    pub fn store_mut(&mut self) -> &mut Store {
        self.index = None;
        &mut self.store
    }

    /// The inverted index.
    ///
    /// # Panics
    /// Panics if [`Database::build_index`] has not been called since the
    /// last load.
    pub fn index(&self) -> &InvertedIndex {
        self.index
            .as_ref()
            .expect("call Database::build_index() after loading documents")
    }

    /// A scoring context carrying the store and index.
    pub fn score_context(&self) -> ScoreContext<'_> {
        match &self.index {
            Some(index) => ScoreContext::with_index(&self.store, index),
            None => ScoreContext::new(&self.store),
        }
    }

    /// Score every element containing any of `terms` (subtree containment)
    /// with uniform weights, via the TermJoin access method. Results are
    /// sorted by descending score (ties in document order).
    pub fn term_join(&self, terms: &[&str]) -> Vec<ScoredNode> {
        self.term_join_with(terms, &SimpleScorer::uniform())
    }

    /// [`Database::term_join`] with a custom scorer.
    pub fn term_join_with<S: TermJoinScorer>(&self, terms: &[&str], scorer: &S) -> Vec<ScoredNode> {
        let mut out = TermJoin::new(&self.store, self.index(), terms, scorer).run();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        out
    }

    /// Text nodes containing the exact phrase, with occurrence counts
    /// (PhraseFinder access method).
    pub fn find_phrase(&self, phrase_terms: &[&str]) -> Vec<ScoredNode> {
        sort_by_node(phrase::phrase_finder(&self.store, self.index(), phrase_terms))
    }

    /// The classic end-to-end IR pipeline: TermJoin scoring → stack-based
    /// Pick (parent/child redundancy elimination) → top-k. Returns at most
    /// `k` picked elements, best first.
    pub fn search(&self, terms: &[&str], pick: PickParams, k: usize) -> Vec<ScoredNode> {
        let scorer = SimpleScorer::uniform();
        let scored = sort_by_node(TermJoin::new(&self.store, self.index(), terms, &scorer).run());
        let picked = pick_stream(&self.store, &scored, &pick);
        topk::top_k(picked, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.load(
            "a.xml",
            "<article><sec><p>rust xml database systems</p></sec>\
             <sec><p>cooking with rust the metal</p></sec></article>",
        )
        .unwrap();
        db.build_index();
        db
    }

    #[test]
    fn term_join_sorted_by_score() {
        let db = db();
        let out = db.term_join(&["rust", "xml"]);
        assert!(!out.is_empty());
        assert!(out.windows(2).all(|w| w[0].score >= w[1].score));
        // Top hit: the article (3 hits) ... ties resolved by doc order.
        assert_eq!(db.store().tag_name(out[0].node), Some("article"));
    }

    #[test]
    fn phrase_search() {
        let db = db();
        let out = db.find_phrase(&["xml", "database"]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, 1.0);
    }

    #[test]
    fn search_pipeline_picks_and_limits() {
        let db = db();
        let out = db.search(&["rust"], PickParams { relevance_threshold: 1.0, fraction: 0.5 }, 5);
        assert!(!out.is_empty());
        assert!(out.len() <= 5);
    }

    #[test]
    #[should_panic(expected = "build_index")]
    fn index_access_without_build_panics() {
        let mut db = Database::new();
        db.load("a.xml", "<a>x</a>").unwrap();
        let _ = db.index();
    }

    #[test]
    fn load_invalidates_index() {
        let mut db = db();
        db.load("b.xml", "<b>fresh</b>").unwrap();
        db.build_index();
        assert_eq!(db.index().collection_frequency("fresh"), 1);
    }
}
