//! Durable save/load of a whole [`Database`]: store snapshot plus index
//! sidecar, every write routed through the atomic-replace protocol of
//! [`tix_store::persist::atomic_write`].
//!
//! The division of labor: the snapshot formats (in `tix-store` and
//! `tix-index`) own *what the bytes mean* — framing, checksums, the
//! trailing seal; this module owns *how the bytes reach disk* — a save is
//! all-or-nothing (a crash at any byte offset leaves the previously
//! committed file untouched), and a load of a current-version file
//! verifies the whole-file seal ([`tix_invariants::try_snapshot_sealed`])
//! before handing the bytes to the structural parser.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use tix_index::{IndexSnapshotError, InvertedIndex, INDEX_SNAPSHOT_MAGIC, INDEX_SNAPSHOT_VERSION};
use tix_pack::{PackIndex, PACK_MAGIC};
use tix_store::persist::atomic_write;
use tix_store::{SnapshotError, Store, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

use crate::Database;

/// Errors raised while saving or loading database files.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure (opening, reading, renaming, fsync).
    Io(io::Error),
    /// The store snapshot is malformed or corrupt.
    Store(SnapshotError),
    /// The index sidecar is malformed or corrupt.
    Index(IndexSnapshotError),
    /// [`save_index`] was asked to save a database with no index built.
    NoIndex,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "database I/O error: {e}"),
            PersistError::Store(e) => write!(f, "{e}"),
            PersistError::Index(e) => write!(f, "{e}"),
            PersistError::NoIndex => write!(f, "no index built; nothing to save"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Store(e) => Some(e),
            PersistError::Index(e) => Some(e),
            PersistError::NoIndex => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Store(e)
    }
}

impl From<IndexSnapshotError> for PersistError {
    fn from(e: IndexSnapshotError) -> Self {
        PersistError::Index(e)
    }
}

/// Is `bytes` a current-version (sealed) snapshot of the format opened by
/// `magic`? Older versions carry no seal, so only current-version files
/// get the whole-file checksum gate.
fn is_current_version(bytes: &[u8], magic: &[u8], version: u8) -> bool {
    bytes.len() > magic.len()
        && bytes.get(..magic.len()).is_some_and(|head| head == magic)
        && bytes.get(magic.len()).copied() == Some(version)
}

/// Save a store snapshot to `path` atomically and durably.
pub fn save_store(store: &Store, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let mut bytes = Vec::new();
    store.save_snapshot(&mut bytes)?;
    // The writer just produced a current-version snapshot; it must carry a
    // valid whole-file seal, or the loader's corruption gate would reject
    // our own output.
    tix_invariants::check! { tix_invariants::assert_snapshot_sealed(SNAPSHOT_MAGIC, &bytes) }
    atomic_write(path, |w| w.write_all(&bytes).map_err(PersistError::Io))
}

/// Load a store snapshot from `path`, verifying the whole-file seal before
/// structural parsing when the file is a current-version snapshot.
pub fn load_store(path: impl AsRef<Path>) -> Result<Store, PersistError> {
    let bytes = fs::read(path)?;
    if is_current_version(&bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION) {
        tix_invariants::try_snapshot_sealed(SNAPSHOT_MAGIC, &bytes)
            .map_err(|_| PersistError::Store(SnapshotError::Corrupt("broken whole-file seal")))?;
    }
    Ok(Store::load_snapshot(bytes.as_slice())?)
}

/// Save an index snapshot to `path` atomically and durably.
pub fn save_index(index: &InvertedIndex, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let mut bytes = Vec::new();
    index.save_snapshot(&mut bytes)?;
    tix_invariants::check! {
        tix_invariants::assert_snapshot_sealed(INDEX_SNAPSHOT_MAGIC, &bytes)
    }
    atomic_write(path, |w| w.write_all(&bytes).map_err(PersistError::Io))
}

/// Load an index snapshot from `path`, verifying the whole-file seal
/// before structural parsing when the file is a current-version snapshot.
pub fn load_index(path: impl AsRef<Path>) -> Result<InvertedIndex, PersistError> {
    let bytes = fs::read(path)?;
    if is_current_version(&bytes, INDEX_SNAPSHOT_MAGIC, INDEX_SNAPSHOT_VERSION) {
        tix_invariants::try_snapshot_sealed(INDEX_SNAPSHOT_MAGIC, &bytes).map_err(|_| {
            PersistError::Index(IndexSnapshotError::Corrupt("broken whole-file seal"))
        })?;
    }
    Ok(InvertedIndex::load_snapshot(bytes.as_slice())?)
}

/// Save an index as a compressed v3 pack (`TIXPAK`) atomically and
/// durably. The pack loader ([`tix_pack::PackIndex::open`]) verifies its
/// own seal, so like [`save_index`] we assert the bytes we just produced
/// would pass that gate.
pub fn save_index_v3(index: &InvertedIndex, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let bytes = tix_pack::pack_bytes(index)?;
    tix_invariants::check! { tix_invariants::assert_snapshot_sealed(PACK_MAGIC, &bytes) }
    atomic_write(path, |w| w.write_all(&bytes).map_err(PersistError::Io))
}

impl Database {
    /// Open a database from a store snapshot on disk. No index is loaded;
    /// call [`Database::load_index_from`] or [`Database::build_index`].
    pub fn open(path: impl AsRef<Path>) -> Result<Database, PersistError> {
        let store = load_store(path)?;
        let mut db = Database::new();
        *db.store_mut() = store;
        Ok(db)
    }

    /// Save the store to `path` atomically and durably
    /// (see [`save_store`]).
    pub fn save_store_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save_store(self.store(), path)
    }

    /// Save the index sidecar to `path` atomically and durably, in the v3
    /// pack format (see [`save_index_v3`]). A pack-backed index is written
    /// back verbatim — its bytes are already a sealed pack. Errors with
    /// [`PersistError::NoIndex`] if no index has been built.
    pub fn save_index_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        if let Some(index) = self.mem_index() {
            save_index_v3(index, path)
        } else if let Some(pack) = self.pack_index() {
            let bytes = pack.as_bytes();
            atomic_write(path, |w| w.write_all(bytes).map_err(PersistError::Io))
        } else {
            Err(PersistError::NoIndex)
        }
    }

    /// Load an index sidecar from `path` and install it (bumps the
    /// generation). Sniffs the magic: `TIXPAK` files are installed *by
    /// reference* (postings decode lazily, per term, on first access);
    /// v2 `TIXIDX` snapshots load eagerly as before. The caller is
    /// responsible for the sidecar matching the loaded store — on
    /// corruption, rebuild with [`Database::build_index`].
    pub fn load_index_from(&mut self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let bytes = fs::read(path)?;
        if bytes.starts_with(PACK_MAGIC) {
            let pack = PackIndex::from_bytes(bytes)?;
            self.set_pack_index(pack);
            return Ok(());
        }
        if is_current_version(&bytes, INDEX_SNAPSHOT_MAGIC, INDEX_SNAPSHOT_VERSION) {
            tix_invariants::try_snapshot_sealed(INDEX_SNAPSHOT_MAGIC, &bytes).map_err(|_| {
                PersistError::Index(IndexSnapshotError::Corrupt("broken whole-file seal"))
            })?;
        }
        let index = InvertedIndex::load_snapshot(bytes.as_slice())?;
        self.set_index(index);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tix-db-persist-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.load(
            "a.xml",
            "<article><sec><p>rust xml database systems</p></sec></article>",
        )
        .unwrap();
        db.build_index();
        db
    }

    #[test]
    fn store_and_index_roundtrip_through_disk() {
        let dir = tmp_dir("roundtrip");
        let snap = dir.join("db.tix");
        let idx = dir.join("db.tix.idx");
        let db = sample_db();
        db.save_store_to(&snap).unwrap();
        db.save_index_to(&idx).unwrap();

        let mut loaded = Database::open(&snap).unwrap();
        loaded.load_index_from(&idx).unwrap();
        assert_eq!(db.store().stats(), loaded.store().stats());
        assert_eq!(db.index().postings("rust"), loaded.index().postings("rust"));
    }

    #[test]
    fn save_index_without_index_is_refused() {
        let mut db = Database::new();
        db.load("a.xml", "<a>x</a>").unwrap();
        let err = db
            .save_index_to(tmp_dir("noindex").join("x.idx"))
            .unwrap_err();
        assert!(matches!(err, PersistError::NoIndex));
    }

    #[test]
    fn corrupt_store_file_is_rejected_by_the_seal_gate() {
        let dir = tmp_dir("corrupt-store");
        let snap = dir.join("db.tix");
        sample_db().save_store_to(&snap).unwrap();
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&snap, &bytes).unwrap();
        let err = Database::open(&snap).unwrap_err();
        assert!(
            matches!(err, PersistError::Store(SnapshotError::Corrupt(_))),
            "{err:?}"
        );
    }

    #[test]
    fn corrupt_index_file_is_rejected_by_the_seal_gate() {
        let dir = tmp_dir("corrupt-index");
        let idx = dir.join("db.idx");
        sample_db().save_index_to(&idx).unwrap();
        let mut bytes = fs::read(&idx).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&idx, &bytes).unwrap();
        let mut db = sample_db();
        let err = db.load_index_from(&idx).unwrap_err();
        assert!(
            matches!(err, PersistError::Index(IndexSnapshotError::Corrupt(_))),
            "{err:?}"
        );
    }

    #[test]
    fn missing_file_surfaces_as_io_not_found() {
        let err = Database::open(tmp_dir("missing").join("nope.tix")).unwrap_err();
        match err {
            PersistError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }
}
