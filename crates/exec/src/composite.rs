//! The **Composite** baselines (Sec. 6.1): TermJoin's functionality built
//! from standard operators, exactly as the paper's operator expression
//!
//! ```text
//!   σ_P(C) = ⋃_i γ_i(σ_{P_i}(C))
//! ```
//!
//! * [`comp1`] evaluates the expression directly: per-term index scan →
//!   **ancestor expansion** (one materialized witness record per
//!   (occurrence, ancestor) pair) → sort-based grouping → k-way union.
//!   The materialized intermediate result grows as `frequency × depth`,
//!   which is why Comp1 scales super-linearly in Table 1.
//! * [`comp2`] pushes structural joins down, "as advised by recent
//!   studies": per term, a stack-tree structural join of the **entire
//!   element list** (the ancestor side has no tag constraint — the `ad*`
//!   unit can be any element) against the postings. The full-element scan
//!   per term makes its cost large but nearly flat in the term frequency.
//!
//! Both produce results identical to TermJoin (differential-tested),
//! slower — the whole point of Table 1/2 in the paper.

use tix_index::IndexReader;
use tix_store::{NodeRef, Store};

use crate::scored::{ScoredNode, TermHit};
use crate::structural::structural_join_count;
use crate::termjoin::{count_nonzero_children, TermJoinScorer};

/// A materialized "witness" record flowing between Comp1's standard
/// operators — the tree-at-a-time record shape a TIMBER-style engine
/// pipelines, with per-record heap allocations and all.
struct WitnessRecord {
    node: NodeRef,
    counters: Vec<u32>,
    hits: Vec<TermHit>,
}

/// Comp1: the direct standard-operator composition.
pub fn comp1<S: TermJoinScorer>(
    store: &Store,
    index: &dyn IndexReader,
    terms: &[&str],
    scorer: &S,
) -> Vec<ScoredNode> {
    let keep_detail = scorer.needs_detail();
    let n = terms.len();
    // One grouped, sorted stream per term (the γ_i(σ_{P_i}(C)) legs).
    let mut legs: Vec<Vec<WitnessRecord>> = Vec::with_capacity(n);
    for (t, term) in terms.iter().enumerate() {
        // σ_{P_i}: index scan + ancestor expansion, materializing one
        // record per (occurrence, ancestor) pair.
        let mut expanded: Vec<WitnessRecord> = Vec::new();
        for posting in index.postings(term) {
            let text = posting.node_ref();
            let mut cursor = store.parent(text);
            while let Some(anc) = cursor {
                let mut counters = vec![0u32; n];
                if let Some(slot) = counters.get_mut(t) {
                    *slot = 1;
                }
                let hits = if keep_detail {
                    vec![TermHit {
                        node: posting.node,
                        offset: posting.offset,
                        term: t as u16,
                    }]
                } else {
                    Vec::new()
                };
                expanded.push(WitnessRecord {
                    node: anc,
                    counters,
                    hits,
                });
                cursor = store.parent(anc);
            }
        }
        // γ_i: sort-based grouping on node id.
        expanded.sort_by_key(|r| r.node);
        let mut grouped: Vec<WitnessRecord> = Vec::new();
        for record in expanded {
            match grouped.last_mut() {
                Some(last) if last.node == record.node => {
                    for (a, b) in last.counters.iter_mut().zip(&record.counters) {
                        *a += b;
                    }
                    last.hits.extend_from_slice(&record.hits);
                }
                _ => grouped.push(record),
            }
        }
        legs.push(grouped);
    }
    // ⋃: k-way merge-union on node id, then score.
    union_and_score(store, legs, scorer, keep_detail)
}

/// Comp2: structural joins pushed down. Per term, a stack-based structural
/// join of the full element list against the term's text nodes yields
/// grouped per-ancestor counts without the quadratic expansion — but every
/// term pays a full scan of the element list.
pub fn comp2<S: TermJoinScorer>(
    store: &Store,
    index: &dyn IndexReader,
    terms: &[&str],
    scorer: &S,
) -> Vec<ScoredNode> {
    let keep_detail = scorer.needs_detail();
    let n = terms.len();
    let mut legs: Vec<Vec<WitnessRecord>> = Vec::with_capacity(n);
    for (t, term) in terms.iter().enumerate() {
        let postings = index.postings(term);
        let text_nodes: Vec<NodeRef> = postings.iter().map(|p| p.node_ref()).collect();
        // The ancestor side: EVERY element in the database, scanned in
        // document order (the pattern's ad* node has no tag constraint).
        let all_elements = store.doc_ids().flat_map(|d| store.elements_of(d));
        let mut counted = structural_join_count(store, all_elements, &text_nodes);
        counted.sort_by_key(|&(node, _)| node);
        let grouped = counted
            .into_iter()
            .map(|(node, count)| {
                let mut counters = vec![0u32; n];
                if let Some(slot) = counters.get_mut(t) {
                    *slot = count;
                }
                let hits = if keep_detail {
                    // Recover this ancestor's hits from the posting range.
                    let end = store.end_key(node);
                    let lo = postings.partition_point(|p| (p.doc, p.node) < (node.doc, node.node));
                    let hi = postings.partition_point(|p| (p.doc, p.node) <= (node.doc, end));
                    postings
                        .get(lo..hi)
                        .unwrap_or(&[])
                        .iter()
                        .map(|p| TermHit {
                            node: p.node,
                            offset: p.offset,
                            term: t as u16,
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                WitnessRecord {
                    node,
                    counters,
                    hits,
                }
            })
            .collect();
        legs.push(grouped);
    }
    union_and_score(store, legs, scorer, keep_detail)
}

/// k-way union of per-term grouped legs (each sorted by node), combining
/// counters and hit buffers, then scoring each node.
fn union_and_score<S: TermJoinScorer>(
    store: &Store,
    legs: Vec<Vec<WitnessRecord>>,
    scorer: &S,
    keep_detail: bool,
) -> Vec<ScoredNode> {
    let n_terms = legs.len();
    let mut cursors = vec![0usize; n_terms];
    let mut out = Vec::new();
    loop {
        // Find the smallest node across leg heads.
        let mut min: Option<NodeRef> = None;
        for (leg, &c) in legs.iter().zip(&cursors) {
            if let Some(record) = leg.get(c) {
                min = Some(match min {
                    Some(m) if m <= record.node => m,
                    _ => record.node,
                });
            }
        }
        let Some(node) = min else { break };
        let mut counters = vec![0u32; n_terms];
        let mut hits: Vec<TermHit> = Vec::new();
        for (leg, cursor) in legs.iter().zip(cursors.iter_mut()) {
            if let Some(record) = leg.get(*cursor) {
                if record.node == node {
                    for (a, b) in counters.iter_mut().zip(&record.counters) {
                        *a += b;
                    }
                    hits.extend_from_slice(&record.hits);
                    *cursor += 1;
                }
            }
        }
        let nonzero = if keep_detail {
            count_nonzero_children(store, node, hits.iter().map(|h| h.node))
        } else {
            0
        };
        let score = scorer.score(store, node, &counters, &hits, nonzero);
        out.push(ScoredNode::new(node, score));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scored::{results_equal, sort_by_node};
    use crate::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin};
    use tix_index::InvertedIndex;

    fn fixture() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        store
            .load_str(
                "a.xml",
                "<a><b>x y</b><c><d>x q</d><e>y z</e></c><f>z x</f></a>",
            )
            .unwrap();
        store
            .load_str("b.xml", "<a><b>q</b><c>x y x</c></a>")
            .unwrap();
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    #[test]
    fn comp1_agrees_with_termjoin_simple() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::new(vec![0.8, 0.6]);
        let c1 = sort_by_node(comp1(&store, &index, &["x", "y"], &scorer));
        let tj = sort_by_node(TermJoin::new(&store, &index, &["x", "y"], &scorer).run());
        assert!(results_equal(&c1, &tj, 1e-9), "\nc1={c1:?}\ntj={tj:?}");
    }

    #[test]
    fn comp2_agrees_with_termjoin_simple() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::new(vec![0.8, 0.6]);
        let c2 = sort_by_node(comp2(&store, &index, &["x", "y"], &scorer));
        let tj = sort_by_node(TermJoin::new(&store, &index, &["x", "y"], &scorer).run());
        assert!(results_equal(&c2, &tj, 1e-9), "\nc2={c2:?}\ntj={tj:?}");
    }

    #[test]
    fn comp1_agrees_with_termjoin_complex() {
        let (store, index) = fixture();
        let scorer = ComplexScorer::uniform(ChildCountMode::Index);
        let c1 = sort_by_node(comp1(&store, &index, &["x", "y", "z"], &scorer));
        let tj = sort_by_node(TermJoin::new(&store, &index, &["x", "y", "z"], &scorer).run());
        assert!(results_equal(&c1, &tj, 1e-9), "\nc1={c1:?}\ntj={tj:?}");
    }

    #[test]
    fn comp2_agrees_with_termjoin_complex() {
        let (store, index) = fixture();
        let scorer = ComplexScorer::uniform(ChildCountMode::Index);
        let c2 = sort_by_node(comp2(&store, &index, &["x", "y", "z"], &scorer));
        let tj = sort_by_node(TermJoin::new(&store, &index, &["x", "y", "z"], &scorer).run());
        assert!(results_equal(&c2, &tj, 1e-9), "\nc2={c2:?}\ntj={tj:?}");
    }

    #[test]
    fn empty_result_for_absent_terms() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        assert!(comp1(&store, &index, &["nosuch"], &scorer).is_empty());
        assert!(comp2(&store, &index, &["nosuch"], &scorer).is_empty());
    }
}
