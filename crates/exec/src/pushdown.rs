//! **Threshold pushdown**: a WAND-style early-exit driver for the
//! TermJoin → Pick → top-k pipeline (`Threshold … stop after k` pushed
//! into the access method, Sec. 5.3 meets §4.2).
//!
//! The driver scans the query terms' posting lists **one document at a
//! time**, in document order, running the full per-document pipeline
//! (TermJoin → document-order sort → Pick → optional value threshold) and
//! feeding survivors into a deterministic [`TopK`] accumulator. After each
//! document it computes `bound = scorer.max_score_bound(remaining)` over
//! the postings of *not-yet-scanned* documents and stops as soon as
//!
//! * the accumulator holds `k` entries and the k-th score **strictly**
//!   exceeds `bound` (no unseen node can enter or even tie), or
//! * a value threshold `min` is present and `bound ≤ min` (no unseen node
//!   survives the strict `score > min` filter).
//!
//! ## Why this is byte-identical to the full scan
//!
//! Every stage is document-local: TermJoin's ancestor stack drains at
//! document boundaries, and Pick's containment hierarchy never spans
//! documents (the same facts that make [`crate::parallel`]'s
//! document-partitioned execution *exactly* equal to sequential
//! execution). So the concatenation of per-document pipeline outputs *is*
//! the sequential pipeline's stream, element for element, bit for bit.
//! The accumulator's total order (score, then arrival) makes offering an
//! element that scores strictly below the k-th retained score a no-op —
//! and the §4.2 bound proves every skipped element is such an element —
//! so stopping early cannot change the retained set, its tie-breaks, or
//! its emitted order. The exit condition itself is guarded by
//! [`tix_invariants::assert_topk_early_exit_safe`] under
//! `debug_assertions` / `check-invariants`.
//!
//! ## Block-max skipping (v3 indexes)
//!
//! When the index representation carries per-block skip metadata
//! ([`tix_index::BlockSummary`], produced by the `tix-pack` v3 format),
//! the driver additionally runs a true WAND skip discipline:
//!
//! * **per-document skip** — before running the pipeline on a candidate
//!   document, bound its best possible score by the document's per-term
//!   run lengths (`scorer.max_score_bound(&runs)`); if the accumulator is
//!   full and the k-th score strictly exceeds that bound (or a `min`
//!   threshold does, non-strictly), the document's postings are *skipped*
//!   — consumed off the cursors but never joined, scored, or pushed. The
//!   same strictly-below-k-th no-op argument proves byte-identity.
//! * **tightened tail bound** — the §4.2 exit bound uses, per term,
//!   `min(remaining, suffix-max over unscanned blocks of max_doc_count)`
//!   instead of raw `remaining`. Any unseen document intersects only
//!   unscanned blocks, and a block's `max_doc_count` bounds the *whole
//!   document* posting count of every document intersecting it, so the
//!   tightened vector still dominates every unseen node's counter vector
//!   componentwise — the §4.2 invariant is checked against the tightened
//!   bound, same as before.
//!
//! Both disciplines only *remove* work whose results provably cannot
//! appear in the output, so all byte-identity guarantees above carry
//! over verbatim; the differential proptests in `crates/pack/tests/`
//! hold the two index representations to that bar.

use tix_index::{BlockSummary, IndexReader, Posting};
use tix_store::{DocId, Store};

use crate::pick::{pick_stream, PickParams};
use crate::scored::{sort_by_node, ScoredNode};
use crate::termjoin::{TermJoin, TermJoinScorer};
use crate::topk::TopK;

/// A pushdown run's results plus the scan accounting the planner bench
/// and the EXPLAIN rendering report.
#[derive(Debug, Clone, PartialEq)]
pub struct PushdownRun {
    /// Top-k results, best first — byte-identical to the full pipeline
    /// `top_k(min_score(pick_stream(sort_by_node(term_join(…)))), k)`.
    pub results: Vec<ScoredNode>,
    /// Postings fed through the join/score pipeline before the exit
    /// condition held.
    pub postings_scanned: u64,
    /// Postings consumed off the cursors but never joined or scored,
    /// because the per-document block-max bound proved the document
    /// could not contribute (0 without block metadata).
    pub postings_skipped: u64,
    /// Postings the full-scan pipeline would consume.
    pub postings_total: u64,
}

impl PushdownRun {
    /// Did the §4.2 bound prove the tail unreachable before the scan
    /// finished?
    pub fn early_exit(&self) -> bool {
        self.postings_scanned.saturating_add(self.postings_skipped) < self.postings_total
    }
}

/// Run the pushed-down pipeline over `terms`. `pick` is the optional Pick
/// stage (skipped entirely when `None`); `min` is the optional value
/// threshold (keep `score > min`, applied after Pick); `k` bounds the
/// result count. `cancelled` is polled on entry, before every document,
/// and before the final sort; a `true` poll aborts with `None`.
#[allow(clippy::too_many_arguments)] // mirrors the full pipeline's stage list
pub fn search_topk<S: TermJoinScorer>(
    store: &Store,
    index: &dyn IndexReader,
    terms: &[&str],
    scorer: &S,
    pick: Option<&PickParams>,
    k: usize,
    min: Option<f64>,
    cancelled: &dyn Fn() -> bool,
) -> Option<PushdownRun> {
    let lists: Vec<&[Posting]> = terms.iter().map(|t| index.postings(t)).collect();
    let blocks: Vec<Option<&[BlockSummary]>> =
        terms.iter().map(|t| index.block_summaries(t)).collect();
    search_topk_on_lists_with_blocks(store, &lists, &blocks, scorer, pick, k, min, cancelled)
}

/// Per-term skip state over the v3 block metadata: the first block not
/// yet fully consumed, plus the suffix maximum of `max_doc_count` from
/// each block position to the end of the list.
struct BlockCursor<'a> {
    /// Cumulative postings through each block (`ends[j]` = postings in
    /// blocks `0..=j`), so the block holding the scan cursor is found by
    /// advancing while `consumed >= ends[pos]`.
    ends: Vec<u64>,
    /// `suffix_max[j]` = max `max_doc_count` over blocks `j..`;
    /// `suffix_max[len] = 0` (term exhausted).
    suffix_max: Vec<u32>,
    summaries: &'a [BlockSummary],
    pos: usize,
}

impl<'a> BlockCursor<'a> {
    fn new(summaries: &'a [BlockSummary]) -> Self {
        let mut ends = Vec::with_capacity(summaries.len());
        let mut cum = 0u64;
        for b in summaries {
            cum = cum.saturating_add(u64::from(b.postings));
            ends.push(cum);
        }
        let mut suffix_max = vec![0u32; summaries.len() + 1];
        for (j, b) in summaries.iter().enumerate().rev() {
            let tail = suffix_max.get(j + 1).copied().unwrap_or(0);
            if let Some(slot) = suffix_max.get_mut(j) {
                *slot = tail.max(b.max_doc_count);
            }
        }
        BlockCursor {
            ends,
            suffix_max,
            summaries,
            pos: 0,
        }
    }

    /// Tightest sound per-term counter cap for documents past the scan
    /// cursor (`consumed` postings already sliced off this term's list):
    /// every unseen document intersects only blocks at or after the
    /// cursor's block, and each such block's `max_doc_count` bounds the
    /// whole-document posting count of every document intersecting it.
    fn cap(&mut self, consumed: u64) -> u32 {
        while self.pos < self.summaries.len()
            && self.ends.get(self.pos).is_some_and(|&end| consumed >= end)
        {
            self.pos += 1;
        }
        self.suffix_max.get(self.pos).copied().unwrap_or(0)
    }
}

/// [`search_topk`] over explicit posting-list slices (same order as the
/// query terms) — the testable core, with no block metadata (so no
/// per-document skipping; the §4.2 tail exit alone).
pub fn search_topk_on_lists<S: TermJoinScorer>(
    store: &Store,
    lists: &[&[Posting]],
    scorer: &S,
    pick: Option<&PickParams>,
    k: usize,
    min: Option<f64>,
    cancelled: &dyn Fn() -> bool,
) -> Option<PushdownRun> {
    let blocks = vec![None; lists.len()];
    search_topk_on_lists_with_blocks(store, lists, &blocks, scorer, pick, k, min, cancelled)
}

/// [`search_topk`] over explicit posting-list slices plus optional
/// per-term block metadata (same order as the query terms). Terms whose
/// entry is `Some` contribute tightened tail bounds; if *any* term has
/// metadata the per-document skip discipline is enabled (it is sound
/// regardless — run lengths come from the lists themselves — but gating
/// it keeps v2 scan accounting unchanged for baseline comparison).
#[allow(clippy::too_many_arguments)] // mirrors the full pipeline's stage list
pub fn search_topk_on_lists_with_blocks<S: TermJoinScorer>(
    store: &Store,
    lists: &[&[Posting]],
    blocks: &[Option<&[BlockSummary]>],
    scorer: &S,
    pick: Option<&PickParams>,
    k: usize,
    min: Option<f64>,
    cancelled: &dyn Fn() -> bool,
) -> Option<PushdownRun> {
    if cancelled() {
        return None;
    }
    let postings_total: u64 = lists
        .iter()
        .map(|l| u64::try_from(l.len()).unwrap_or(u64::MAX))
        .sum();
    let mut cursors = vec![0usize; lists.len()];
    // Per-term counts of postings in not-yet-scanned documents; saturating
    // to u32::MAX only loosens (never tightens) the bound.
    let mut remaining: Vec<u32> = lists
        .iter()
        .map(|l| u32::try_from(l.len()).unwrap_or(u32::MAX))
        .collect();
    let mut block_cursors: Vec<Option<BlockCursor>> =
        blocks.iter().map(|b| b.map(BlockCursor::new)).collect();
    let blockmax = block_cursors.iter().any(|b| b.is_some());
    let mut acc = TopK::new(k);
    let mut scanned: u64 = 0;
    let mut skipped: u64 = 0;
    loop {
        // The smallest document id any list still holds.
        let mut next_doc: Option<DocId> = None;
        for (list, &cursor) in lists.iter().zip(&cursors) {
            if let Some(p) = list.get(cursor) {
                next_doc = Some(match next_doc {
                    Some(d) if d <= p.doc => d,
                    _ => p.doc,
                });
            }
        }
        let Some(doc) = next_doc else { break };
        if cancelled() {
            return None;
        }
        // Slice each list's run of postings for `doc` off its front.
        let mut doc_lists: Vec<&[Posting]> = Vec::with_capacity(lists.len());
        let mut runs: Vec<u32> = Vec::with_capacity(lists.len());
        let mut doc_postings: u64 = 0;
        for ((list, cursor), rem) in lists.iter().zip(&mut cursors).zip(&mut remaining) {
            let tail = list.get(*cursor..).unwrap_or(&[]);
            let run = tail.partition_point(|p| p.doc <= doc);
            doc_lists.push(tail.get(..run).unwrap_or(&[]));
            *cursor += run;
            let run32 = u32::try_from(run).unwrap_or(u32::MAX);
            *rem = rem.saturating_sub(run32);
            runs.push(run32);
            doc_postings += u64::try_from(run).unwrap_or(u64::MAX);
        }
        // Per-document skip: any node in this document has a counter
        // vector componentwise ≤ the run lengths, so the scorer's bound
        // over the runs dominates every score the document could produce.
        // A full accumulator whose k-th score strictly exceeds it makes
        // every push a no-op; a `min` threshold at or above it fails the
        // strict `score > min` filter. Either way the document cannot
        // change the output, so its postings are skipped unjoined.
        let mut skip_doc = false;
        if blockmax {
            let doc_bound = scorer.max_score_bound(&runs);
            if let Some(kth) = acc.kth_score() {
                if kth > doc_bound {
                    tix_invariants::check! {
                        tix_invariants::assert_topk_early_exit_safe(kth, doc_bound);
                    }
                    skip_doc = true;
                }
            }
            if let Some(m) = min {
                if doc_bound <= m {
                    skip_doc = true;
                }
            }
        }
        if skip_doc {
            skipped += doc_postings;
        } else {
            scanned += doc_postings;
            // The full pipeline, restricted to this document.
            // Document-local stages make the concatenation over documents
            // equal the global stream (see module docs).
            let joined = sort_by_node(TermJoin::with_lists(store, doc_lists, scorer).run());
            let survivors = match pick {
                Some(p) => pick_stream(store, &joined, p),
                None => joined,
            };
            for survivor in survivors {
                let passes = match min {
                    Some(m) => survivor.score > m,
                    None => true,
                };
                if passes {
                    acc.push(survivor);
                }
            }
        }
        // §4.2 exit checks against the unscanned suffix, tightened per
        // term by the block suffix maxima when metadata is present.
        let bound = if blockmax {
            let tightened: Vec<u32> = remaining
                .iter()
                .zip(&mut block_cursors)
                .zip(&cursors)
                .map(|((&rem, bc), &cursor)| match bc {
                    Some(bc) => rem.min(bc.cap(u64::try_from(cursor).unwrap_or(u64::MAX))),
                    None => rem,
                })
                .collect();
            scorer.max_score_bound(&tightened)
        } else {
            scorer.max_score_bound(&remaining)
        };
        if let Some(kth) = acc.kth_score() {
            if kth > bound {
                tix_invariants::check! {
                    tix_invariants::assert_topk_early_exit_safe(kth, bound);
                }
                break;
            }
        }
        if let Some(m) = min {
            // Strict filter: nothing scoring ≤ bound ≤ min survives it.
            if bound <= m {
                break;
            }
        }
    }
    if cancelled() {
        return None;
    }
    Some(PushdownRun {
        results: acc.into_sorted(),
        postings_scanned: scanned,
        postings_skipped: skipped,
        postings_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{pick_stream_parallel, term_join_parallel};
    use crate::termjoin::{ChildCountMode, ComplexScorer, IdfScorer, SimpleScorer};
    use crate::topk;
    use tix_index::InvertedIndex;

    /// Many small documents with skewed term frequencies, so top-k exits
    /// have a real tail to skip.
    fn fixture() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        for i in 0..40u32 {
            // Earlier documents are denser in "x", so the best results
            // live early in document order and the bound closes fast.
            let hits = 40 - i;
            let mut body = String::from("<doc><sec><p>");
            for _ in 0..hits {
                body.push_str("x ");
            }
            body.push_str("</p></sec><sec><p>y filler</p></sec></doc>");
            store.load_str(&format!("d{i}.xml"), &body).unwrap();
        }
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    fn full_pipeline<S: TermJoinScorer>(
        store: &Store,
        index: &dyn IndexReader,
        terms: &[&str],
        scorer: &S,
        pick: Option<&PickParams>,
        k: usize,
        min: Option<f64>,
    ) -> Vec<ScoredNode> {
        let joined = sort_by_node(term_join_parallel(store, index, terms, scorer, 1));
        let picked = match pick {
            Some(p) => pick_stream_parallel(store, &joined, p, 1),
            None => joined,
        };
        let filtered = match min {
            Some(m) => topk::min_score(picked, m),
            None => picked,
        };
        topk::top_k(filtered, k)
    }

    #[test]
    fn matches_full_pipeline_and_exits_early() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let pick = PickParams::paper();
        let run = search_topk(
            &store,
            &index,
            &["x", "y"],
            &scorer,
            Some(&pick),
            3,
            None,
            &|| false,
        )
        .unwrap();
        let full = full_pipeline(&store, &index, &["x", "y"], &scorer, Some(&pick), 3, None);
        assert_eq!(run.results, full);
        assert!(run.early_exit(), "k=3 over 40 docs must not scan the tail");
        assert!(run.postings_scanned < run.postings_total);
    }

    #[test]
    fn every_k_matches_full_pipeline() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::paper();
        let pick = PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        };
        for k in [0, 1, 2, 5, 17, 1000] {
            let run = search_topk(
                &store,
                &index,
                &["x", "y"],
                &scorer,
                Some(&pick),
                k,
                None,
                &|| false,
            )
            .unwrap();
            let full = full_pipeline(&store, &index, &["x", "y"], &scorer, Some(&pick), k, None);
            assert_eq!(run.results, full, "k={k}");
        }
    }

    #[test]
    fn min_score_exit_matches_filter() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let pick = PickParams::paper();
        for min in [0.5, 10.0, 1e9] {
            let run = search_topk(
                &store,
                &index,
                &["x"],
                &scorer,
                Some(&pick),
                1000,
                Some(min),
                &|| false,
            )
            .unwrap();
            let full = full_pipeline(
                &store,
                &index,
                &["x"],
                &scorer,
                Some(&pick),
                1000,
                Some(min),
            );
            assert_eq!(run.results, full, "min={min}");
        }
    }

    #[test]
    fn complex_and_idf_scorers_match() {
        let (store, index) = fixture();
        let pick = PickParams::paper();
        let complex = ComplexScorer::uniform(ChildCountMode::Index);
        let run = search_topk(
            &store,
            &index,
            &["x", "y"],
            &complex,
            Some(&pick),
            4,
            None,
            &|| false,
        )
        .unwrap();
        let full = full_pipeline(&store, &index, &["x", "y"], &complex, Some(&pick), 4, None);
        assert_eq!(run.results, full);

        let idf = IdfScorer::new(&index, store.doc_count(), &["x", "y"]);
        let run = search_topk(
            &store,
            &index,
            &["x", "y"],
            &idf,
            Some(&pick),
            4,
            None,
            &|| false,
        )
        .unwrap();
        let full = full_pipeline(&store, &index, &["x", "y"], &idf, Some(&pick), 4, None);
        assert_eq!(run.results, full);
    }

    #[test]
    fn unknown_terms_and_empty_query() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let pick = PickParams::paper();
        let run = search_topk(
            &store,
            &index,
            &["nosuch"],
            &scorer,
            Some(&pick),
            5,
            None,
            &|| false,
        )
        .unwrap();
        assert!(run.results.is_empty());
        assert_eq!(run.postings_total, 0);
        assert!(!run.early_exit());
        let run = search_topk(&store, &index, &[], &scorer, Some(&pick), 5, None, &|| {
            false
        })
        .unwrap();
        assert!(run.results.is_empty());
    }

    #[test]
    fn cancellation_polls_and_aborts() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let pick = PickParams::paper();
        assert!(search_topk(
            &store,
            &index,
            &["x"],
            &scorer,
            Some(&pick),
            3,
            None,
            &|| true
        )
        .is_none());
        let polls = std::cell::Cell::new(0u32);
        let late = search_topk(
            &store,
            &index,
            &["x"],
            &scorer,
            Some(&pick),
            3,
            None,
            &|| {
                polls.set(polls.get() + 1);
                polls.get() >= 2
            },
        );
        assert!(late.is_none());
        assert!(polls.get() >= 2);
    }

    #[test]
    fn no_pick_stage_matches_full_pipeline() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let run = search_topk(&store, &index, &["x", "y"], &scorer, None, 3, None, &|| {
            false
        })
        .unwrap();
        let full = full_pipeline(&store, &index, &["x", "y"], &scorer, None, 3, None);
        assert_eq!(run.results, full);
        assert!(run.early_exit());
    }

    /// Build sound block metadata for a posting list, the same statistic
    /// the v3 pack writer persists: chunk into `block` postings, and for
    /// each chunk take the max over intersecting documents of that
    /// document's *whole-list* posting count.
    fn summarize(list: &[Posting], block: usize) -> Vec<BlockSummary> {
        let mut totals: Vec<(u32, u32)> = Vec::new();
        for p in list {
            match totals.last_mut() {
                Some(t) if t.0 == p.doc.0 => t.1 += 1,
                _ => totals.push((p.doc.0, 1)),
            }
        }
        list.chunks(block)
            .map(|chunk| {
                let first = chunk.first().map(|p| p.doc.0).unwrap_or(0);
                let last = chunk.last().map(|p| p.doc.0).unwrap_or(0);
                let lo = totals.partition_point(|t| t.0 < first);
                let hi = totals.partition_point(|t| t.0 <= last);
                let max = totals
                    .get(lo..hi)
                    .unwrap_or(&[])
                    .iter()
                    .map(|t| t.1)
                    .max()
                    .unwrap_or(0);
                BlockSummary {
                    first_doc: first,
                    last_doc: last,
                    postings: u32::try_from(chunk.len()).unwrap_or(u32::MAX),
                    max_doc_count: max,
                }
            })
            .collect()
    }

    #[test]
    fn block_metadata_skips_documents_and_stays_byte_identical() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let pick = PickParams::paper();
        let terms = ["x", "y"];
        let lists: Vec<&[Posting]> = terms.iter().map(|t| index.postings(t)).collect();
        let summaries: Vec<Vec<BlockSummary>> = lists.iter().map(|l| summarize(l, 8)).collect();
        let blocks: Vec<Option<&[BlockSummary]>> =
            summaries.iter().map(|s| Some(s.as_slice())).collect();
        for k in [1, 2, 3, 5, 17] {
            let with = search_topk_on_lists_with_blocks(
                &store,
                &lists,
                &blocks,
                &scorer,
                Some(&pick),
                k,
                None,
                &|| false,
            )
            .unwrap();
            let without =
                search_topk_on_lists(&store, &lists, &scorer, Some(&pick), k, None, &|| false)
                    .unwrap();
            assert_eq!(with.results, without.results, "k={k}");
            assert!(
                with.postings_scanned <= without.postings_scanned,
                "k={k}: block metadata must never scan more ({} vs {})",
                with.postings_scanned,
                without.postings_scanned,
            );
        }
        // Small k over the skewed fixture must actually skip documents.
        let with = search_topk_on_lists_with_blocks(
            &store,
            &lists,
            &blocks,
            &scorer,
            Some(&pick),
            2,
            None,
            &|| false,
        )
        .unwrap();
        assert!(
            with.postings_skipped > 0,
            "skewed fixture with k=2 must skip whole documents"
        );
    }

    #[test]
    fn block_metadata_min_threshold_matches_filter() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let pick = PickParams::paper();
        let lists: Vec<&[Posting]> = [index.postings("x")].to_vec();
        let summaries = summarize(lists.first().unwrap(), 4);
        let blocks = [Some(summaries.as_slice())];
        for min in [0.5, 10.0, 1e9] {
            let with = search_topk_on_lists_with_blocks(
                &store,
                &lists,
                &blocks,
                &scorer,
                Some(&pick),
                1000,
                Some(min),
                &|| false,
            )
            .unwrap();
            let without = search_topk_on_lists(
                &store,
                &lists,
                &scorer,
                Some(&pick),
                1000,
                Some(min),
                &|| false,
            )
            .unwrap();
            assert_eq!(with.results, without.results, "min={min}");
        }
    }

    #[test]
    fn unbounded_scorer_disables_early_exit() {
        struct NoBound;
        impl TermJoinScorer for NoBound {
            fn needs_detail(&self) -> bool {
                false
            }
            fn score(
                &self,
                _store: &Store,
                _node: tix_store::NodeRef,
                counters: &[u32],
                _detail: &[crate::scored::TermHit],
                _nonzero: u32,
            ) -> f64 {
                counters.iter().map(|&c| f64::from(c)).sum()
            }
        }
        let (store, index) = fixture();
        let pick = PickParams::paper();
        let run = search_topk(
            &store,
            &index,
            &["x"],
            &NoBound,
            Some(&pick),
            1,
            None,
            &|| false,
        )
        .unwrap();
        assert!(!run.early_exit(), "INFINITY bound must never exit early");
        assert_eq!(run.postings_scanned, run.postings_total);
    }
}
