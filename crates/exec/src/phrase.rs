//! The **PhraseFinder** access method (Sec. 5.1.2) and its Comp3 baseline.
//!
//! A phrase like "information retrieval" is only matched by text nodes in
//! which the terms occur *adjacent and in order*. PhraseFinder exploits the
//! index's word offsets to verify adjacency **during** the posting-list
//! intersection; Comp3 (the baseline of Table 5) intersects first,
//! materializes every candidate text node containing all terms, and then
//! re-reads each candidate's text from the store to check the phrase — the
//! "extra work done at the filter level" the paper measures.

use tix_core::scoring::count_f64;
use tix_index::IndexReader;
use tix_store::{NodeRef, Store};

use crate::scored::ScoredNode;

/// A text node containing the phrase, with its occurrence count.
pub type PhraseMatch = ScoredNode;

/// PhraseFinder: merge the per-term posting lists by text node; for nodes
/// containing all terms, verify in-order adjacency with word offsets
/// during the intersection itself. Returns one [`ScoredNode`] per matching
/// text node, scored by occurrence count.
pub fn phrase_finder(
    _store: &Store,
    index: &dyn IndexReader,
    phrase_terms: &[&str],
) -> Vec<PhraseMatch> {
    let k = phrase_terms.len();
    assert!(k >= 2, "a phrase has at least two terms");
    let lists: Vec<&[tix_index::Posting]> =
        phrase_terms.iter().map(|t| index.postings(t)).collect();
    phrase_finder_on_lists(&lists)
}

/// The PhraseFinder core over posting-list slices (one per phrase term, in
/// phrase order). [`phrase_finder`] is this over the full index lists; the
/// document-partitioned parallel driver calls it per document chunk.
pub fn phrase_finder_on_lists(lists: &[&[tix_index::Posting]]) -> Vec<PhraseMatch> {
    let k = lists.len();
    assert!(k >= 2, "a phrase has at least two terms");
    if lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    // Pair each list with its cursor so the zipper below never indexes.
    let mut zipped: Vec<(usize, &[tix_index::Posting])> =
        lists.iter().map(|&list| (0usize, list)).collect();
    let mut out = Vec::new();
    // Zipper: advance every cursor to a common (doc, node).
    'outer: while let Some(first) = zipped.first().and_then(|&(c, list)| list.get(c).copied()) {
        let mut target = (first.doc, first.node);
        let mut stable = 0;
        while stable < k {
            for (cursor, list) in zipped.iter_mut() {
                while let Some(p) = list.get(*cursor) {
                    if (p.doc, p.node) < target {
                        *cursor += 1;
                    } else {
                        break;
                    }
                }
                match list.get(*cursor) {
                    None => break 'outer,
                    Some(p) if (p.doc, p.node) > target => {
                        target = (p.doc, p.node);
                        stable = 0;
                    }
                    Some(_) => stable += 1,
                }
            }
        }
        // All lists sit on `target`: verify adjacency with offsets.
        let count = count_adjacent_runs(&zipped, target);
        if count > 0 {
            out.push(ScoredNode::new(
                NodeRef::new(target.0, target.1),
                count_f64(count),
            ));
        }
        // Move every cursor past this node.
        for (cursor, list) in zipped.iter_mut() {
            while let Some(p) = list.get(*cursor) {
                if (p.doc, p.node) == target {
                    *cursor += 1;
                } else {
                    break;
                }
            }
        }
    }
    out
}

/// Within one text node, count positions where term 0's offset `o` is
/// followed by term 1 at `o+1`, term 2 at `o+2`, … (in-order adjacency).
fn count_adjacent_runs(
    zipped: &[(usize, &[tix_index::Posting])],
    target: (tix_store::DocId, tix_store::NodeIdx),
) -> usize {
    // Collect each term's offsets within the node (lists are offset-sorted).
    let offsets: Vec<Vec<u32>> = zipped
        .iter()
        .map(|&(c, list)| {
            list.get(c..)
                .unwrap_or(&[])
                .iter()
                .take_while(|p| (p.doc, p.node) == target)
                .map(|p| p.offset)
                .collect()
        })
        .collect();
    let Some((first, rest)) = offsets.split_first() else {
        return 0;
    };
    first
        .iter()
        .filter(|&&start| {
            rest.iter().enumerate().all(|(i, list)| {
                u32::try_from(i + 1).is_ok_and(|step| list.binary_search(&(start + step)).is_ok())
            })
        })
        .count()
}

/// Comp3: the intersect-then-filter baseline. The intersection produces
/// every text node containing all terms (in any arrangement); a separate
/// filter then fetches the node's text from the store, re-tokenizes it,
/// and scans for the phrase.
pub fn comp3(store: &Store, index: &dyn IndexReader, phrase_terms: &[&str]) -> Vec<PhraseMatch> {
    let k = phrase_terms.len();
    assert!(k >= 2, "a phrase has at least two terms");
    // Step 1: per-term text-node id lists.
    let node_lists: Vec<Vec<NodeRef>> = phrase_terms
        .iter()
        .map(|t| {
            let mut nodes: Vec<NodeRef> = index.postings(t).iter().map(|p| p.node_ref()).collect();
            nodes.dedup();
            nodes
        })
        .collect();
    // Step 2: k-way sorted intersection (materialized candidate list).
    let Some((first_nodes, rest_lists)) = node_lists.split_first() else {
        return Vec::new();
    };
    let mut candidates: Vec<NodeRef> = first_nodes.clone();
    for list in rest_lists {
        let mut kept = Vec::with_capacity(candidates.len().min(list.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while let (Some(&a), Some(&b)) = (candidates.get(i), list.get(j)) {
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    kept.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        candidates = kept;
    }
    // Step 3: the filter — fetch, re-tokenize, and scan each candidate.
    let lowered: Vec<String> = phrase_terms.iter().map(|t| t.to_lowercase()).collect();
    candidates
        .into_iter()
        .filter_map(|node| {
            let tokens = tix_index::terms(store.text(node));
            let count = tokens
                .windows(k)
                .filter(|w| w.iter().zip(&lowered).all(|(a, b)| a == b))
                .count();
            (count > 0).then(|| ScoredNode::new(node, count_f64(count)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scored::{results_equal, sort_by_node};
    use tix_index::InvertedIndex;
    use tix_store::{DocId, NodeIdx};

    fn fixture() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<r>\
                 <p>information retrieval systems</p>\
                 <p>retrieval information</p>\
                 <p>some information about retrieval</p>\
                 <p>information retrieval and information retrieval</p>\
                 <p>nothing relevant</p>\
                 </r>",
            )
            .unwrap();
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    fn tn(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeIdx(i))
    }

    #[test]
    fn finds_only_ordered_adjacent() {
        let (store, index) = fixture();
        let found = sort_by_node(phrase_finder(&store, &index, &["information", "retrieval"]));
        // Text nodes: p1 text = 2 (1 occurrence), p4 text = 8 (2 occurrences).
        assert_eq!(found.len(), 2);
        assert_eq!(found[0], ScoredNode::new(tn(2), 1.0));
        assert_eq!(found[1], ScoredNode::new(tn(8), 2.0));
    }

    #[test]
    fn comp3_agrees() {
        let (store, index) = fixture();
        let a = sort_by_node(phrase_finder(&store, &index, &["information", "retrieval"]));
        let b = sort_by_node(comp3(&store, &index, &["information", "retrieval"]));
        assert!(results_equal(&a, &b, 1e-12), "\npf={a:?}\nc3={b:?}");
    }

    #[test]
    fn three_term_phrase() {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<r><p>fast xml database engine</p><p>xml fast database</p></r>",
            )
            .unwrap();
        let index = InvertedIndex::build(&store);
        let terms = ["fast", "xml", "database"];
        let a = sort_by_node(phrase_finder(&store, &index, &terms));
        let b = sort_by_node(comp3(&store, &index, &terms));
        assert_eq!(a.len(), 1);
        assert!(results_equal(&a, &b, 1e-12));
    }

    #[test]
    fn absent_term_empty() {
        let (store, index) = fixture();
        assert!(phrase_finder(&store, &index, &["information", "nosuch"]).is_empty());
        assert!(comp3(&store, &index, &["information", "nosuch"]).is_empty());
    }

    #[test]
    fn repeated_term_phrase() {
        let mut store = Store::new();
        store
            .load_str("t.xml", "<r><p>very very fast</p><p>very fast</p></r>")
            .unwrap();
        let index = InvertedIndex::build(&store);
        let terms = ["very", "very"];
        let a = sort_by_node(phrase_finder(&store, &index, &terms));
        let b = sort_by_node(comp3(&store, &index, &terms));
        assert!(results_equal(&a, &b, 1e-12), "\npf={a:?}\nc3={b:?}");
        assert_eq!(a.len(), 1); // only the first paragraph has "very very"
    }
}

/// Score every ancestor element by the phrase occurrences in its subtree —
/// the paper's "Counts of phrase occurrences are then used to generate
/// appropriate score values". A single stack pass over the (document-
/// ordered) phrase matches, exactly like TermJoin but with one implicit
/// "term" whose per-node weight is the match count.
pub fn score_ancestors_of_phrases(store: &Store, matches: &[PhraseMatch]) -> Vec<ScoredNode> {
    let mut out = Vec::new();
    // Stack frames: (element, end key, accumulated phrase count).
    let mut stack: Vec<(NodeRef, u32, f64)> = Vec::new();
    let pop = |stack: &mut Vec<(NodeRef, u32, f64)>, out: &mut Vec<ScoredNode>| {
        let Some((node, _, count)) = stack.pop() else {
            return;
        };
        if let Some(parent) = stack.last_mut() {
            parent.2 += count;
        }
        out.push(ScoredNode::new(node, count));
    };
    for m in matches {
        // A match is always a text node, which is never a document root;
        // skip rather than panic if handed something else.
        let Some(anchor) = store.parent(m.node) else {
            continue;
        };
        while let Some(&(top, end, _)) = stack.last() {
            if top.doc == anchor.doc && top.node <= anchor.node && anchor.node.as_u32() <= end {
                break;
            }
            pop(&mut stack, &mut out);
        }
        if stack.last().map(|f| f.0) != Some(anchor) {
            let stop = stack.last().map(|f| f.0);
            let mut chain = vec![anchor];
            let mut cursor = anchor;
            while let Some(parent) = store.parent(cursor) {
                if Some(parent) == stop {
                    break;
                }
                chain.push(parent);
                cursor = parent;
            }
            for node in chain.into_iter().rev() {
                stack.push((node, store.end_key(node).as_u32(), 0.0));
            }
        }
        // Same loop invariant as TermJoin's Fig. 11 stack: one contiguous
        // ancestor chain, outer frames covering inner ones.
        tix_invariants::check! {
            tix_invariants::assert_stack_ancestor_chain(stack.len(), |anc, desc| {
                // lint:allow(no-slice-index): anc/desc < stack.len() by the try_ contract
                let ((a, a_end, _), (d, _, _)) = (stack[anc], stack[desc]);
                a.doc == d.doc && a.node <= d.node && d.node.as_u32() <= a_end
            });
        }
        if let Some(top) = stack.last_mut() {
            top.2 += m.score;
        }
    }
    while !stack.is_empty() {
        pop(&mut stack, &mut out);
    }
    out
}

#[cfg(test)]
mod ancestor_tests {
    use super::*;
    use crate::scored::sort_by_node;
    use tix_index::InvertedIndex;
    use tix_store::{DocId, NodeIdx};

    #[test]
    fn ancestors_accumulate_phrase_counts() {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<a><s><p>ir search</p><p>ir search and ir search</p></s><s><p>nothing</p></s></a>",
            )
            .unwrap();
        let index = InvertedIndex::build(&store);
        let matches = phrase_finder(&store, &index, &["ir", "search"]);
        let scored = sort_by_node(score_ancestors_of_phrases(&store, &matches));
        // a=0, s=1, p=2, p=4 — all carry counts; second s has none.
        let get = |i: u32| {
            scored
                .iter()
                .find(|s| s.node == tix_store::NodeRef::new(DocId(0), NodeIdx(i)))
                .map(|s| s.score)
        };
        assert_eq!(get(0), Some(3.0)); // a
        assert_eq!(get(1), Some(3.0)); // first s
        assert_eq!(get(2), Some(1.0)); // first p
        assert_eq!(get(4), Some(2.0)); // second p
        assert_eq!(get(6), None); // second s has no phrase
    }

    #[test]
    fn empty_matches_empty_output() {
        let store = Store::new();
        assert!(score_ancestors_of_phrases(&store, &[]).is_empty());
    }
}
