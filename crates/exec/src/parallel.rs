//! Document-partitioned parallel variants of the access methods.
//!
//! TermJoin, PhraseFinder, and Pick are all single merge passes over
//! streams ordered by `(doc, node, offset)`, and none of them carries any
//! state across a document boundary: TermJoin's ancestor stack fully
//! drains before the first posting of the next document is absorbed,
//! PhraseFinder's zipper only equates postings with equal `(doc, node)`,
//! and Pick's covers check requires equal `doc`. Splitting the inputs at
//! document boundaries, evaluating each chunk independently, and
//! concatenating the per-chunk outputs in document order therefore yields
//! **exactly** the sequential output — same nodes, same order, bit-
//! identical `f64` scores — at every thread count. The equivalence tests
//! in `tests/parallel_equivalence.rs` enforce this with `==`, not an
//! epsilon.
//!
//! Work is split into more chunks than workers (so documents of uneven
//! size balance) and chunk results are stitched back in input order by
//! [`tix_parallel::parallel_map`].

use tix_index::{IndexReader, Posting};
use tix_store::{DocId, Store};

use crate::phrase::{phrase_finder_on_lists, PhraseMatch};
use crate::pick::{pick_stream, PickParams};
use crate::scored::ScoredNode;
use crate::termjoin::{TermJoin, TermJoinScorer};

/// Chunks per worker: oversplitting lets the work-stealing map balance
/// documents of uneven size without affecting the (deterministic) output.
const CHUNKS_PER_WORKER: usize = 4;

/// [`TermJoin`] over `terms`, fanned out over `threads` workers by
/// document chunk. Output is identical to
/// `TermJoin::new(store, index, terms, scorer).run()` for any `threads`;
/// `threads <= 1` runs the sequential algorithm on the calling thread.
pub fn term_join_parallel<S: TermJoinScorer>(
    store: &Store,
    index: &dyn IndexReader,
    terms: &[&str],
    scorer: &S,
    threads: usize,
) -> Vec<ScoredNode> {
    let lists: Vec<&[Posting]> = terms.iter().map(|t| index.postings(t)).collect();
    if threads <= 1 {
        return TermJoin::with_lists(store, lists, scorer).run();
    }
    let chunks = doc_chunks(store, &lists, threads);
    let results = tix_parallel::parallel_map(&chunks, threads, |chunk| {
        TermJoin::with_lists(store, chunk.clone(), scorer).run()
    });
    results.into_iter().flatten().collect()
}

/// [`crate::phrase::phrase_finder`] fanned out over `threads` workers by
/// document chunk; identical output for any `threads`.
pub fn phrase_finder_parallel(
    store: &Store,
    index: &dyn IndexReader,
    phrase_terms: &[&str],
    threads: usize,
) -> Vec<PhraseMatch> {
    assert!(phrase_terms.len() >= 2, "a phrase has at least two terms");
    let lists: Vec<&[Posting]> = phrase_terms.iter().map(|t| index.postings(t)).collect();
    if threads <= 1 {
        return phrase_finder_on_lists(&lists);
    }
    let chunks = doc_chunks(store, &lists, threads);
    let results =
        tix_parallel::parallel_map(&chunks, threads, |chunk| phrase_finder_on_lists(chunk));
    results.into_iter().flatten().collect()
}

/// [`pick_stream`] fanned out over `threads` workers by document chunk;
/// identical output for any `threads`. The containment hierarchy Pick
/// reconstructs never spans documents, so the scored stream splits cleanly
/// at document boundaries.
pub fn pick_stream_parallel(
    store: &Store,
    scored: &[ScoredNode],
    params: &PickParams,
    threads: usize,
) -> Vec<ScoredNode> {
    if threads <= 1 {
        return pick_stream(store, scored, params);
    }
    // Segment the stream at document boundaries, then group segments.
    let mut starts: Vec<usize> = Vec::new();
    let mut prev: Option<DocId> = None;
    for (i, s) in scored.iter().enumerate() {
        if prev != Some(s.node.doc) {
            starts.push(i);
            prev = Some(s.node.doc);
        }
    }
    let groups = tix_parallel::chunk_ranges(starts.len(), threads * CHUNKS_PER_WORKER);
    let chunks: Vec<&[ScoredNode]> = groups
        .into_iter()
        .filter_map(|g| {
            let &lo = starts.get(g.start)?;
            let hi = starts.get(g.end).copied().unwrap_or(scored.len());
            scored.get(lo..hi)
        })
        .collect();
    let results =
        tix_parallel::parallel_map(&chunks, threads, |chunk| pick_stream(store, chunk, params));
    results.into_iter().flatten().collect()
}

/// Split the posting lists at document boundaries into chunk-local list
/// vectors, one entry per document chunk, in document order. Chunks
/// partition the store's documents, so concatenating per-chunk outputs
/// reproduces the sequential stream.
fn doc_chunks<'a>(
    store: &Store,
    lists: &[&'a [Posting]],
    threads: usize,
) -> Vec<Vec<&'a [Posting]>> {
    let docs: Vec<DocId> = store.doc_ids().collect();
    tix_parallel::chunk_ranges(docs.len(), threads * CHUNKS_PER_WORKER)
        .into_iter()
        .map(|range| {
            let lo = docs.get(range.start).copied();
            let hi = docs.get(range.end).copied();
            lists
                .iter()
                .map(|list| {
                    let a = lo.map_or(list.len(), |lo| list.partition_point(|p| p.doc < lo));
                    let b = hi.map_or(list.len(), |hi| list.partition_point(|p| p.doc < hi));
                    list.get(a..b).unwrap_or(&[])
                })
                .collect()
        })
        .collect()
}
