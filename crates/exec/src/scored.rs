//! Shared record types flowing between access methods.

use tix_store::{NodeIdx, NodeRef};

/// A scored element — the unit every score-generating access method emits
/// and every score-utilizing method consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredNode {
    /// The element.
    pub node: NodeRef,
    /// Its relevance score.
    pub score: f64,
}

impl ScoredNode {
    /// Build from parts.
    pub fn new(node: NodeRef, score: f64) -> Self {
        ScoredNode { node, score }
    }
}

/// One term occurrence retained for complex scoring (the paper's
/// "BufferAndList" kept per stack entry under `if (!s)` in Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TermHit {
    /// The text node containing the occurrence (within the scored node's
    /// document).
    pub node: NodeIdx,
    /// Document-wide word offset of the occurrence.
    pub offset: u32,
    /// Which query term this hit belongs to (index into the query's term
    /// list).
    pub term: u16,
}

/// Sort scored nodes into document order (canonical form for differential
/// comparisons between access methods).
pub fn sort_by_node(mut nodes: Vec<ScoredNode>) -> Vec<ScoredNode> {
    nodes.sort_by_key(|s| s.node);
    nodes
}

/// Assert-style helper: true when two result sets contain the same nodes
/// with scores equal to within `eps`.
pub fn results_equal(a: &[ScoredNode], b: &[ScoredNode], eps: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.node == y.node && (x.score - y.score).abs() <= eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::DocId;

    fn sn(doc: u32, node: u32, score: f64) -> ScoredNode {
        ScoredNode::new(NodeRef::new(DocId(doc), NodeIdx(node)), score)
    }

    #[test]
    fn sort_is_document_order() {
        let sorted = sort_by_node(vec![sn(1, 0, 1.0), sn(0, 5, 2.0), sn(0, 2, 3.0)]);
        let keys: Vec<(u32, u32)> = sorted
            .iter()
            .map(|s| (s.node.doc.0, s.node.node.0))
            .collect();
        assert_eq!(keys, [(0, 2), (0, 5), (1, 0)]);
    }

    #[test]
    fn equality_with_epsilon() {
        let a = vec![sn(0, 1, 1.0)];
        let b = vec![sn(0, 1, 1.0 + 1e-12)];
        assert!(results_equal(&a, &b, 1e-9));
        let c = vec![sn(0, 1, 1.1)];
        assert!(!results_equal(&a, &c, 1e-9));
        let d = vec![sn(0, 2, 1.0)];
        assert!(!results_equal(&a, &d, 1e-9));
        assert!(!results_equal(&a, &[], 1e-9));
    }
}
