//! # tix-exec
//!
//! The physical access methods of the TIX paper (Sec. 5): how IR-style
//! scoring is evaluated *fast* inside a set-oriented, pipelined query
//! engine.
//!
//! ## Score-generating methods (Sec. 5.1)
//!
//! * [`termjoin::TermJoin`] — the paper's headline contribution: a
//!   stack-based single merge pass over per-term posting lists that scores
//!   **every ancestor element** by the term occurrences in its subtree
//!   (Fig. 11). Works with a [`termjoin::SimpleScorer`] or a
//!   [`termjoin::ComplexScorer`]; the latter's child-count access is what
//!   the *Enhanced TermJoin* variant accelerates through the store's
//!   child-count index ([`termjoin::ChildCountMode`]).
//! * [`phrase::phrase_finder`] — verifies phrase adjacency with word
//!   offsets *during* posting intersection (Sec. 5.1.2).
//!
//! ## Baselines (Sec. 6)
//!
//! * [`composite::comp1`] — the same functionality composed from standard
//!   operators: per-term index scan → ancestor expansion → sort-group →
//!   union (the paper's `Comp1`).
//! * [`composite::comp2`] — structural joins pushed down: per term, a
//!   stack-tree structural join of the **full element list** against the
//!   postings (`Comp2`).
//! * [`meet::generalized_meet`] — the Meet operator of Schmidt et al.,
//!   generalized to emit all ancestors with per-term occurrence counts.
//! * [`phrase::comp3`] — intersect-then-filter phrase baseline (`Comp3`).
//!
//! ## Score-modifying methods (Sec. 5.2)
//!
//! * [`modify::scored_value_join`] / [`modify::scored_union`] — the paper's
//!   Examples 5.1 and 5.2: standard value-join and set-union access methods
//!   extended with weighted score combination.
//!
//! ## Score-utilizing methods (Sec. 5.3)
//!
//! * [`pick::pick_stream`] — the stack-based Pick access method (Fig. 12),
//!   evaluating parent/child redundancy elimination in one blocking pass
//!   over a document-ordered scored-node stream.
//! * [`topk`] — Threshold evaluation: streaming min-score filtering and
//!   heap-based top-k (the techniques referenced from [8, 5]), with a
//!   deterministic arrival-order tie-break.
//! * [`pushdown`] — `Threshold … stop after k` pushed into TermJoin: a
//!   WAND-style document-at-a-time driver that stops scanning postings as
//!   soon as the §4.2 score bound proves the unscanned tail cannot change
//!   the top-k result; byte-identical to the full pipeline.
//!
//! ## Parallel execution
//!
//! * [`parallel`] — document-partitioned parallel variants of TermJoin,
//!   PhraseFinder, and Pick. Outputs are bit-identical to the sequential
//!   methods at every thread count (see that module's docs for why).
//!
//! ## Testing discipline
//!
//! The score-generating and score-utilizing access methods — TermJoin
//! (simple and complex scoring, both child-count modes), PhraseFinder, and
//! Pick — are differential-tested against independent implementations:
//! TermJoin against the `Comp1`/`Comp2` compositions and Generalized Meet,
//! PhraseFinder against `Comp3`, and Pick against the algebra-level
//! reference in `tix_core::ops::pick`, on both fixed corpora and
//! property-generated random collections (`tests/proptest_diff.rs`,
//! `tests/proptest_corpus_diff.rs`). The parallel variants are additionally
//! required to match the sequential ones exactly
//! (`tests/parallel_equivalence.rs`). The score-modifying methods
//! ([`modify`]) are covered by example-level tests only.

pub mod composite;
pub mod meet;
pub mod modify;
pub mod parallel;
pub mod phrase;
pub mod pick;
pub mod pushdown;
pub mod scored;
pub mod stream;
pub mod structural;
pub mod termjoin;
pub mod topk;

pub use scored::{ScoredNode, TermHit};
pub use stream::ScoredStreamExt;
pub use termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin, TermJoinScorer};
