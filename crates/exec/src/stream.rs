//! Pull-based pipelining over scored-node streams.
//!
//! The paper's setting is "a set-oriented, **pipelined**, database-style
//! query evaluation engine" — operators pull records from their children
//! one at a time. [`TermJoin`](crate::termjoin::TermJoin) is already a
//! Rust `Iterator`; this module adds the score-utilizing stages so whole
//! plans compose without materialization, plus explicit notes on which
//! operators *must* block (Pick, rank-Threshold).

use std::collections::VecDeque;

use tix_store::Store;

use crate::pick::PickParams;
use crate::scored::ScoredNode;

/// Extension adapters over any scored-node iterator.
pub trait ScoredStreamExt: Iterator<Item = ScoredNode> + Sized {
    /// Streaming value threshold: keep nodes scoring strictly above `min`
    /// (non-blocking — the paper's Threshold-by-V "can be directly
    /// expressed … as a selection on the score attribute").
    fn min_score(self, min: f64) -> MinScoreStream<Self> {
        MinScoreStream { inner: self, min }
    }

    /// Blocking top-k by score (rank threshold). Consumes the input on the
    /// first `next()` — rank conditions need global knowledge (Sec. 3.3.1).
    fn top_k(self, k: usize) -> TopKStream {
        TopKStream {
            drained: crate::topk::top_k(self, k).into(),
        }
    }

    /// Blocking Pick: parent/child redundancy elimination (Sec. 5.3). The
    /// input must arrive in document order. "The algorithm presented here
    /// is blocking" — the whole input is consumed before the first output.
    fn pick(self, store: &Store, params: PickParams) -> PickStream {
        let input: Vec<ScoredNode> = self.collect();
        PickStream {
            drained: crate::pick::pick_stream(store, &input, &params).into(),
        }
    }
}

impl<I: Iterator<Item = ScoredNode>> ScoredStreamExt for I {}

/// See [`ScoredStreamExt::min_score`].
pub struct MinScoreStream<I> {
    inner: I,
    min: f64,
}

impl<I: Iterator<Item = ScoredNode>> Iterator for MinScoreStream<I> {
    type Item = ScoredNode;

    fn next(&mut self) -> Option<ScoredNode> {
        self.inner.by_ref().find(|s| s.score > self.min)
    }
}

/// See [`ScoredStreamExt::top_k`].
pub struct TopKStream {
    drained: VecDeque<ScoredNode>,
}

impl Iterator for TopKStream {
    type Item = ScoredNode;

    fn next(&mut self) -> Option<ScoredNode> {
        self.drained.pop_front()
    }
}

/// See [`ScoredStreamExt::pick`].
pub struct PickStream {
    drained: VecDeque<ScoredNode>,
}

impl Iterator for PickStream {
    type Item = ScoredNode;

    fn next(&mut self) -> Option<ScoredNode> {
        self.drained.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scored::sort_by_node;
    use crate::termjoin::{SimpleScorer, TermJoin};
    use tix_index::InvertedIndex;

    #[test]
    fn full_pipeline_composes() {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<a><sec><p>x x x</p><p>x</p></sec><sec><p>y</p></sec></a>",
            )
            .unwrap();
        let index = InvertedIndex::build(&store);
        let scorer = SimpleScorer::uniform();
        // TermJoin → sort to document order → Pick → min_score → top_k.
        let scored = sort_by_node(TermJoin::new(&store, &index, &["x"], &scorer).run());
        let results: Vec<ScoredNode> = scored
            .into_iter()
            .pick(
                &store,
                PickParams {
                    relevance_threshold: 1.0,
                    fraction: 0.5,
                },
            )
            .min_score(0.5)
            .top_k(2)
            .collect();
        assert!(!results.is_empty());
        assert!(results.len() <= 2);
        assert!(results.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn min_score_is_lazy() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><p>z</p></a>").unwrap();
        let nodes = vec![
            ScoredNode::new(
                tix_store::NodeRef::new(tix_store::DocId(0), tix_store::NodeIdx(0)),
                1.0,
            ),
            ScoredNode::new(
                tix_store::NodeRef::new(tix_store::DocId(0), tix_store::NodeIdx(1)),
                3.0,
            ),
        ];
        let mut stream = nodes.into_iter().min_score(2.0);
        assert_eq!(stream.next().map(|s| s.score), Some(3.0));
        assert_eq!(stream.next(), None);
    }
}
