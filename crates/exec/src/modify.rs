//! Score-**modifying** access methods (Sec. 5.2 of the paper).
//!
//! "Access methods for standard operators can be extended in a
//! straightforward way to manipulate scores." The paper gives two worked
//! examples, both implemented here over document-ordered scored-node sets:
//!
//! * **Example 5.1 — scored value join**: `A ⋈_{c,w1,w2} B` keeps pairs
//!   satisfying a join condition and scores each output
//!   `f(w1·s_A, w2·s_B)`;
//! * **Example 5.2 — scored set union**: `A ∪_{w1,w2} B` merges two scored
//!   sets, combining the scores of nodes present in both and optionally
//!   boosting them (the paper: "give more weight to x that belongs to both
//!   A and B").

use tix_store::NodeRef;

use crate::scored::ScoredNode;

/// How two weighted scores combine in the scored union / value join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Combine {
    /// `w1·sA + w2·sB` — the paper's "weighted addition of the two scores".
    WeightedSum,
    /// Like `WeightedSum`, but multiplied by `boost` when the node/pair has
    /// support from **both** inputs — the paper's "give more weight to x
    /// that belongs to both A and B".
    BothBoosted {
        /// Multiplier applied when both sides contributed.
        boost: f64,
    },
    /// `max(w1·sA, w2·sB)`.
    Max,
}

impl Combine {
    fn apply(self, a: Option<f64>, b: Option<f64>, w1: f64, w2: f64) -> f64 {
        let sa = a.map(|s| w1 * s);
        let sb = b.map(|s| w2 * s);
        let sum = sa.unwrap_or(0.0) + sb.unwrap_or(0.0);
        match self {
            Combine::WeightedSum => sum,
            Combine::BothBoosted { boost } => {
                if sa.is_some() && sb.is_some() {
                    sum * boost
                } else {
                    sum
                }
            }
            Combine::Max => sa
                .unwrap_or(f64::NEG_INFINITY)
                .max(sb.unwrap_or(f64::NEG_INFINITY)),
        }
    }
}

/// Example 5.2: scored set union of two document-ordered scored-node sets.
///
/// A node in both inputs gets `combine(w1·sA, w2·sB)`; a node in one input
/// keeps its (weighted) score — "sA or sB can be a zero since we may have
/// the input witness tree be in only one input".
pub fn scored_union(
    a: &[ScoredNode],
    b: &[ScoredNode],
    w1: f64,
    w2: f64,
    combine: Combine,
) -> Vec<ScoredNode> {
    // Example 5.2 precondition: both inputs are unique and document-ordered.
    tix_invariants::check! {
        tix_invariants::assert_stream_sorted_unique(a.len(), |i| {
            // lint:allow(no-slice-index): i < a.len() by the try_ contract
            let s = &a[i];
            (s.node.doc.0, s.node.node.as_u32())
        });
        tix_invariants::assert_stream_sorted_unique(b.len(), |i| {
            // lint:allow(no-slice-index): i < b.len() by the try_ contract
            let s = &b[i];
            (s.node.doc.0, s.node.node.as_u32())
        });
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) if x.node == y.node => {
                out.push(ScoredNode::new(
                    x.node,
                    combine.apply(Some(x.score), Some(y.score), w1, w2),
                ));
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x.node < y.node => {
                out.push(ScoredNode::new(
                    x.node,
                    combine.apply(Some(x.score), None, w1, w2),
                ));
                i += 1;
            }
            (Some(_), Some(y)) => {
                out.push(ScoredNode::new(
                    y.node,
                    combine.apply(None, Some(y.score), w1, w2),
                ));
                j += 1;
            }
            (Some(x), None) => {
                out.push(ScoredNode::new(
                    x.node,
                    combine.apply(Some(x.score), None, w1, w2),
                ));
                i += 1;
            }
            (None, Some(y)) => {
                out.push(ScoredNode::new(
                    y.node,
                    combine.apply(None, Some(y.score), w1, w2),
                ));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// One output of the scored value join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinedPair {
    /// The node from `A`.
    pub left: NodeRef,
    /// The node from `B`.
    pub right: NodeRef,
    /// The combined score `f(w1·sA, w2·sB)`.
    pub score: f64,
}

/// Example 5.1: scored value join. Every pair `(x ∈ A, y ∈ B)` with
/// `condition(x, y)` is emitted, scored `combine(w1·sA, w2·sB)`.
///
/// The condition is arbitrary ("a possible IR value join condition is a
/// similarity condition"); pass a closure over the store / index as
/// needed.
pub fn scored_value_join(
    a: &[ScoredNode],
    b: &[ScoredNode],
    w1: f64,
    w2: f64,
    combine: Combine,
    mut condition: impl FnMut(&ScoredNode, &ScoredNode) -> bool,
) -> Vec<JoinedPair> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            if condition(x, y) {
                out.push(JoinedPair {
                    left: x.node,
                    right: y.node,
                    score: combine.apply(Some(x.score), Some(y.score), w1, w2),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::{DocId, NodeIdx};

    fn sn(doc: u32, node: u32, score: f64) -> ScoredNode {
        ScoredNode::new(NodeRef::new(DocId(doc), NodeIdx(node)), score)
    }

    #[test]
    fn union_weighted_sum() {
        let a = vec![sn(0, 1, 1.0), sn(0, 3, 2.0)];
        let b = vec![sn(0, 3, 4.0), sn(0, 5, 1.0)];
        let u = scored_union(&a, &b, 0.5, 0.25, Combine::WeightedSum);
        assert_eq!(u.len(), 3);
        assert_eq!(u[0], sn(0, 1, 0.5));
        assert_eq!(u[1], sn(0, 3, 2.0)); // 0.5·2 + 0.25·4
        assert_eq!(u[2], sn(0, 5, 0.25));
    }

    #[test]
    fn union_both_boosted() {
        let a = vec![sn(0, 1, 1.0), sn(0, 2, 1.0)];
        let b = vec![sn(0, 2, 1.0)];
        let u = scored_union(&a, &b, 1.0, 1.0, Combine::BothBoosted { boost: 2.0 });
        // Node 1: only A → 1.0. Node 2: both → (1+1)·2 = 4.
        assert_eq!(u[0].score, 1.0);
        assert_eq!(u[1].score, 4.0);
    }

    #[test]
    fn union_max() {
        let a = vec![sn(0, 1, 3.0)];
        let b = vec![sn(0, 1, 5.0)];
        let u = scored_union(&a, &b, 1.0, 0.5, Combine::Max);
        assert_eq!(u[0].score, 3.0); // max(3, 2.5)
    }

    #[test]
    fn union_preserves_document_order() {
        let a = vec![sn(0, 2, 1.0), sn(1, 0, 1.0)];
        let b = vec![sn(0, 5, 1.0), sn(1, 1, 1.0)];
        let u = scored_union(&a, &b, 1.0, 1.0, Combine::WeightedSum);
        assert!(u.windows(2).all(|w| w[0].node < w[1].node));
    }

    #[test]
    fn union_with_empty_side() {
        let a = vec![sn(0, 1, 2.0)];
        let u = scored_union(&a, &[], 2.0, 1.0, Combine::WeightedSum);
        assert_eq!(u, vec![sn(0, 1, 4.0)]);
        let u2 = scored_union(&[], &a, 1.0, 2.0, Combine::WeightedSum);
        assert_eq!(u2, vec![sn(0, 1, 4.0)]);
    }

    #[test]
    fn value_join_condition_and_score() {
        let a = vec![sn(0, 1, 1.0), sn(0, 2, 2.0)];
        let b = vec![sn(1, 1, 3.0), sn(1, 2, 1.0)];
        // Join condition: equal node indexes (stand-in for a similarity
        // predicate).
        let joined = scored_value_join(&a, &b, 1.0, 1.0, Combine::WeightedSum, |x, y| {
            x.node.node == y.node.node
        });
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].score, 4.0); // 1 + 3
        assert_eq!(joined[1].score, 3.0); // 2 + 1
    }

    #[test]
    fn value_join_empty_when_no_pairs() {
        let a = vec![sn(0, 1, 1.0)];
        let b = vec![sn(1, 1, 3.0)];
        let joined = scored_value_join(&a, &b, 1.0, 1.0, Combine::WeightedSum, |_, _| false);
        assert!(joined.is_empty());
    }
}
